"""CPU/GPU roofline baselines."""

import pytest

from repro.baselines import TITAN_XP, XEON_E5_2697V3, kernel_flops, kernel_traffic_bytes
from repro.gnn import barabasi_albert
from repro.kernels import make_gemm_job, make_spmm_job, make_vadd_job
from repro.memories import DEFAULT_SPECS


@pytest.fixture(scope="module")
def jobs():
    adjacency = barabasi_albert(300, 8, seed=4)
    return {
        "spmm": make_spmm_job("s", adjacency, 256, DEFAULT_SPECS),
        "gemm": make_gemm_job("g", 300, 128, 256, DEFAULT_SPECS),
        "vadd": make_vadd_job("v", 300 * 256, DEFAULT_SPECS, vector_width=256),
    }


class TestWorkModels:
    def test_flops(self, jobs):
        assert kernel_flops(jobs["gemm"]) == 2 * 300 * 128 * 256
        assert kernel_flops(jobs["spmm"]) == 2 * jobs["spmm"].tags["macs"]
        assert kernel_flops(jobs["vadd"]) == 300 * 256

    def test_traffic_positive(self, jobs):
        for job in jobs.values():
            assert kernel_traffic_bytes(job) > 0

    def test_spmm_traffic_gathers_feature_rows(self, jobs):
        nnz = jobs["spmm"].tags["nnz"]
        assert kernel_traffic_bytes(jobs["spmm"]) >= nnz * 256 * 2

    def test_untagged_job_rejected(self, jobs):
        from repro.core import Job

        bare = Job(
            job_id="x", kernel="odd",
            profiles=jobs["gemm"].profiles,
        )
        with pytest.raises(ValueError):
            kernel_flops(bare)
        with pytest.raises(ValueError):
            kernel_traffic_bytes(bare)


class TestDevices:
    def test_gpu_outruns_cpu_on_kernels(self, jobs):
        for job in jobs.values():
            assert TITAN_XP.kernel_time(job) < XEON_E5_2697V3.kernel_time(job)

    def test_cpu_has_no_transfer(self, jobs):
        assert XEON_E5_2697V3.transfer_time(jobs["spmm"]) == 0.0

    def test_gpu_transfer_respects_residency(self, jobs):
        # Resident GEMM inputs/weights mean no fresh PCIe bytes.
        from repro.kernels import make_gemm_job

        resident = make_gemm_job(
            "gr", 300, 128, 256, DEFAULT_SPECS,
            resident_inputs=True, resident_weights=True,
        )
        assert TITAN_XP.transfer_time(resident) == 0.0
        assert TITAN_XP.transfer_time(jobs["gemm"]) > 0.0

    def test_batch_time_bounded_by_components(self, jobs):
        batch = list(jobs.values())
        compute = sum(TITAN_XP.kernel_time(j) for j in batch)
        transfer = sum(TITAN_XP.transfer_time(j) for j in batch)
        total = TITAN_XP.batch_time(batch)
        assert total >= max(compute, transfer)
        assert total <= compute + transfer

    def test_batch_energy_positive_and_scales(self, jobs):
        batch = list(jobs.values())
        assert TITAN_XP.batch_energy_j(batch) > 0
        assert TITAN_XP.batch_energy_j(batch * 2) > TITAN_XP.batch_energy_j(batch)

    def test_transfer_bound_gnn_batches(self, jobs):
        """The paper's Fig. 12 regime: GNN batches on the GPU move
        significant PCIe traffic relative to kernel time."""
        spmm = jobs["spmm"]
        assert TITAN_XP.transfer_time(spmm) > 0.2 * TITAN_XP.kernel_time(spmm)
