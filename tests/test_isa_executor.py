"""Functional DFG execution: reference semantics for every kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import APPLICATIONS
from repro.isa import DFG, FixedPointFormat, Op, execute_dfg


def lanes(*values):
    return np.asarray(values, dtype=np.int64)


class TestBasicOps:
    def run_binary(self, op, a, b, **kwargs):
        d = DFG("k")
        d.input("a")
        d.input("b")
        d.node("out", op, "a", "b")
        d.output("out")
        return execute_dfg(d, {"a": lanes(*a), "b": lanes(*b)}, **kwargs)["out"]

    def test_add_wraps(self):
        out = self.run_binary(Op.ADD, [1, 0xFFFF], [2, 1])
        assert list(out) == [3, 0]

    def test_sub_wraps(self):
        out = self.run_binary(Op.SUB, [5, 0], [3, 1])
        assert list(out) == [2, 0xFFFF]

    def test_mul_div(self):
        assert list(self.run_binary(Op.MUL, [7, 300], [6, 300])) == [
            42,
            (300 * 300) & 0xFFFF,
        ]
        assert list(self.run_binary(Op.DIV, [42, 7], [6, 0])) == [7, 7]  # div0 -> /1

    def test_cmp_and_select(self):
        d = DFG("sel")
        d.input("x")
        d.input("y")
        c = d.node("c", Op.CMP, "x", "y")
        d.node("out", Op.SELECT, c, "x")
        d.output("out")
        out = execute_dfg(d, {"x": lanes(5, 1), "y": lanes(3, 4)})["out"]
        assert list(out) == [5, 0]  # kept where x >= y, zeroed otherwise

    def test_bitwise_and_shifts(self):
        assert list(self.run_binary(Op.XOR, [0b1100], [0b1010])) == [0b0110]
        assert list(self.run_binary(Op.SHL, [1], [4])) == [16]
        assert list(self.run_binary(Op.SHR, [16], [4])) == [1]
        rot = self.run_binary(Op.ROTL, [0x8001], [1])
        assert list(rot) == [0x0003]

    def test_mac_chain_semantics(self):
        d = DFG("dot")
        d.input("x")
        d.input("w")
        acc = d.node("m0", Op.MAC, "x", "w")
        acc = d.node("m1", Op.MAC, acc, "w")
        d.output(acc)
        out = execute_dfg(d, {"x": lanes(3), "w": lanes(5)})[acc]
        assert list(out) == [3 * 5 * 5]

    def test_reduce_add(self):
        d = DFG("r")
        d.input("x")
        d.node("out", Op.REDUCE_ADD, "x")
        d.output("out")
        out = execute_dfg(d, {"x": lanes(1, 2, 3)})["out"]
        assert list(out) == [6, 6, 6]

    def test_missing_input_rejected(self):
        d = DFG("k")
        d.input("x")
        d.node("out", Op.MOV, "x")
        d.output("out")
        with pytest.raises(ValueError):
            execute_dfg(d, {})

    def test_mismatched_lanes_rejected(self):
        d = DFG("k")
        d.input("a")
        d.input("b")
        d.node("out", Op.ADD, "a", "b")
        d.output("out")
        with pytest.raises(ValueError):
            execute_dfg(d, {"a": lanes(1, 2), "b": lanes(1)})


class TestFixedPoint:
    def test_exp2_q88(self):
        fmt = FixedPointFormat(16, 8)
        d = DFG("e")
        d.input("x")
        d.node("out", Op.EXP2, "x")
        d.output("out")
        # exp2(3.0) = 8.0 -> 8 * 256 in Q8.8.
        out = execute_dfg(d, {"x": lanes(3 * 256)}, fmt=fmt)["out"]
        assert out[0] == 8 * 256

    def test_sqrt_and_recip(self):
        fmt = FixedPointFormat(16, 8)
        d = DFG("s")
        d.input("x")
        s = d.node("s", Op.SQRT, "x")
        d.node("out", Op.RECIP, s)
        d.output("out")
        # x = 4.0 -> sqrt 2.0 -> recip 0.5.
        out = execute_dfg(d, {"x": lanes(4 * 256)}, fmt=fmt)["out"]
        assert out[0] == pytest.approx(128, abs=2)

    def test_saturation(self):
        fmt = FixedPointFormat(16, 8)
        d = DFG("e")
        d.input("x")
        d.node("out", Op.EXP2, "x")
        d.output("out")
        out = execute_dfg(d, {"x": lanes(50 * 256)}, fmt=fmt)["out"]
        assert out[0] == fmt.mask  # saturates instead of wrapping

    def test_format_validation(self):
        with pytest.raises(ValueError):
            FixedPointFormat(16, 16)


class TestApplicationKernels:
    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_every_table2_kernel_executes(self, name):
        """All Table II kernels run end-to-end on random lanes and
        produce in-range outputs."""
        dfg = APPLICATIONS[name].kernel()
        rng = np.random.default_rng(7)
        inputs = {
            arg: rng.integers(1, 1 << 12, size=16) for arg in dfg.inputs
        }
        outputs = execute_dfg(dfg, inputs)
        assert set(outputs) == set(dfg.outputs)
        for values in outputs.values():
            assert values.shape == (16,)
            assert values.min() >= 0 and values.max() <= 0xFFFF

    def test_db_scan_predicate_is_correct(self):
        """Value-level check of one whole kernel: the DB full-scan
        range predicate."""
        dfg = APPLICATIONS["db_scan"].kernel()
        values = lanes(10, 50, 100, 200)
        out = execute_dfg(
            dfg,
            {"value": values, "lo": lanes(40, 40, 40, 40), "hi": lanes(150, 150, 150, 150)},
        )[dfg.outputs[0]]
        # In-range rows keep their value, others are zeroed.
        assert list(out) == [0, 50, 100, 0]


@settings(max_examples=30, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=0xFFFF),
    b=st.integers(min_value=0, max_value=0xFFFF),
)
def test_integer_ops_match_python_semantics(a, b):
    d = DFG("mix")
    d.input("a")
    d.input("b")
    d.node("s", Op.ADD, "a", "b")
    d.node("m", Op.MUL, "a", "b")
    d.node("x", Op.XOR, "a", "b")
    for out in ("s", "m", "x"):
        d.output(out)
    outputs = execute_dfg(d, {"a": lanes(a), "b": lanes(b)})
    assert outputs["s"][0] == (a + b) & 0xFFFF
    assert outputs["m"][0] == (a * b) & 0xFFFF
    assert outputs["x"][0] == a ^ b
