"""Event-driven dispatcher: lifecycle, contention, energy, errors."""

import pytest

from repro.core import (
    Dispatcher,
    DispatchError,
    Job,
    JobPerfProfile,
    MLIMPSystem,
)
from repro.core.scheduler.base import Dispatch, DispatchPolicy, ResourceView
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec
from repro.sim import DDR4Config, EnergyCategory, Phase


def spec(kind=MemoryKind.SRAM, arrays=32, fill_gbps=100.0) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"t-{kind.value}",
        geometry=ArrayGeometry(64, 64),
        num_arrays=arrays,
        alus_per_array=64,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=4,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=fill_gbps,
        copy_bandwidth_gbps=100.0,
        max_outstanding_jobs=2,
    )


def job(job_id="j", unit=4, t_compute=1e-4, fill_bytes=1e4, kind=MemoryKind.SRAM) -> Job:
    return Job(
        job_id=job_id,
        kernel="app",
        profiles={
            kind: JobPerfProfile(
                unit_arrays=unit,
                t_load=1e-6,
                t_replica_unit=1e-7,
                t_compute_unit=t_compute,
                waves_unit=4,
                fill_bytes=fill_bytes,
                compute_energy_j=2e-9,
            )
        },
    )


class StaticPolicy(DispatchPolicy):
    """Dispatches a fixed list as soon as resources allow."""

    def __init__(self, dispatches: list[Dispatch]):
        self._queue = list(dispatches)

    def pending(self) -> int:
        return len(self._queue)

    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        out = []
        for d in list(self._queue):
            if view.can_place(d.kind, d.arrays):
                out.append(d)
                self._queue.remove(d)
                view.free_slots[d.kind] -= 1
                view.largest_free_run[d.kind] -= d.arrays
        return out


def make_system(*specs_) -> MLIMPSystem:
    return MLIMPSystem(specs={s.kind: s for s in specs_})


class TestLifecycle:
    def test_single_job_phases(self):
        system = make_system(spec())
        j = job()
        result = Dispatcher(system).run(
            StaticPolicy([Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4)])
        )
        record = result.records["j"]
        assert record.dispatched_at == 0.0
        assert record.fill_done_at > 0
        assert record.finished_at > record.fill_done_at
        phases = {r.phase for r in result.trace.records}
        assert Phase.FILL in phases and Phase.COMPUTE in phases

    def test_total_time_consistent_with_profile(self):
        """Uncontended run time matches the job's analytic profile."""
        system = make_system(spec())
        j = job(fill_bytes=0.0)
        result = Dispatcher(system).run(
            StaticPolicy([Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4)])
        )
        profile = j.profile(MemoryKind.SRAM)
        expected = profile.compute_time(4) + profile.t_load
        # Fill with zero bytes costs only DDR4 latency.
        assert result.makespan == pytest.approx(expected + 60e-9, rel=0.05)

    def test_replication_phase_recorded(self):
        system = make_system(spec())
        j = job()
        result = Dispatcher(system).run(
            StaticPolicy([Dispatch(job=j, kind=MemoryKind.SRAM, arrays=8)])
        )
        assert any(r.phase is Phase.REPLICATE for r in result.trace.records)

    def test_slot_limit_serialises(self):
        system = make_system(spec())  # 2 slots
        jobs = [job(f"j{i}") for i in range(4)]
        result = Dispatcher(system).run(
            StaticPolicy(
                [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
            )
        )
        starts = sorted(r.dispatched_at for r in result.records.values())
        assert starts[2] > 0.0  # third job had to wait for a slot

    def test_array_capacity_serialises(self):
        system = make_system(spec(arrays=8))
        jobs = [job(f"j{i}", unit=6) for i in range(2)]
        result = Dispatcher(system).run(
            StaticPolicy(
                [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=6) for j in jobs]
            )
        )
        starts = sorted(r.dispatched_at for r in result.records.values())
        assert starts[1] > 0.0  # only 8 arrays: jobs cannot overlap

    def test_dram_bypasses_pipe(self):
        """In-DRAM fills are internal row moves; the shared DDR4 pipe
        carries no bytes."""
        system = make_system(spec(kind=MemoryKind.DRAM))
        j = job(kind=MemoryKind.DRAM, fill_bytes=1e6)
        result = Dispatcher(system).run(
            StaticPolicy([Dispatch(job=j, kind=MemoryKind.DRAM, arrays=4)])
        )
        assert result.energy.get(EnergyCategory.OFFCHIP, "ddr4") == 0.0
        assert result.energy.get(EnergyCategory.FILL, "dram") > 0.0

    def test_fill_contention_slows_jobs(self):
        """Two concurrent fills share DDR4 bandwidth."""
        ddr4 = DDR4Config(channels=1, channel_bandwidth_gbps=1.0)
        system = make_system(spec())
        big = 1e6  # 1 MB at 1 GB/s = 1 ms alone
        solo = Dispatcher(system, ddr4).run(
            StaticPolicy([Dispatch(job=job("a", fill_bytes=big), kind=MemoryKind.SRAM, arrays=4)])
        )
        duo = Dispatcher(system, ddr4).run(
            StaticPolicy(
                [
                    Dispatch(job=job("a", fill_bytes=big), kind=MemoryKind.SRAM, arrays=4),
                    Dispatch(job=job("b", fill_bytes=big), kind=MemoryKind.SRAM, arrays=4),
                ]
            )
        )
        assert duo.records["a"].fill_done_at > 1.8 * solo.records["a"].fill_done_at


class TestEnergy:
    def test_energy_categories_populated(self):
        system = make_system(spec())
        j = job()
        result = Dispatcher(system).run(
            StaticPolicy([Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4)])
        )
        assert result.energy.get(EnergyCategory.COMPUTE, "sram") == pytest.approx(2e-9)
        assert result.energy.get(EnergyCategory.FILL, "sram") > 0
        assert result.energy.get(EnergyCategory.OFFCHIP, "ddr4") > 0

    def test_replication_energy_charged(self):
        system = make_system(spec())
        j = job()
        result = Dispatcher(system).run(
            StaticPolicy([Dispatch(job=j, kind=MemoryKind.SRAM, arrays=8)])
        )
        assert result.energy.get(EnergyCategory.REPLICATION, "sram") > 0


class TestErrors:
    def test_oversized_dispatch_rejected(self):
        system = make_system(spec(arrays=8))
        j = job(unit=4)
        with pytest.raises(DispatchError):
            Dispatcher(system).run(
                StaticPolicy([Dispatch(job=j, kind=MemoryKind.SRAM, arrays=9)])
            )

    def test_deadlock_detected(self):
        class StuckPolicy(DispatchPolicy):
            def pending(self):
                return 1

            def next_dispatches(self, view):
                return []

        system = make_system(spec())
        with pytest.raises(DispatchError):
            Dispatcher(system).run(StuckPolicy())

    def test_double_dispatch_rejected(self):
        system = make_system(spec())
        j = job()
        with pytest.raises(DispatchError):
            Dispatcher(system).run(
                StaticPolicy(
                    [
                        Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4),
                        Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4),
                    ]
                )
            )


class TestSlotEnforcement:
    def test_oversubscribed_slots_rejected(self):
        """A policy that ignores the view's free slots must be caught:
        the device has 2 job slots, the policy hands over 3 jobs."""

        class GreedyPolicy(DispatchPolicy):
            def __init__(self, dispatches):
                self._queue = list(dispatches)

            def pending(self):
                return len(self._queue)

            def next_dispatches(self, view):
                out, self._queue = self._queue, []
                return out

        system = make_system(spec())  # max_outstanding_jobs=2
        jobs = [job(f"j{i}") for i in range(3)]
        with pytest.raises(DispatchError, match="over-subscribed"):
            Dispatcher(system).run(
                GreedyPolicy(
                    [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
                )
            )

    def test_full_slot_occupancy_allowed(self):
        """Exactly filling both slots is fine."""
        system = make_system(spec())
        jobs = [job(f"j{i}") for i in range(2)]
        result = Dispatcher(system).run(
            StaticPolicy(
                [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
            )
        )
        assert len(result.records) == 2


class TestTailLatency:
    def _result_with_latencies(self, latencies):
        from repro.core.dispatcher import DispatchResult, JobRecord
        from repro.sim import EnergyLedger
        from repro.sim.trace import ExecutionTrace

        records = {
            f"j{i}": JobRecord(
                job_id=f"j{i}",
                kind=MemoryKind.SRAM,
                arrays=1,
                dispatched_at=0.0,
                finished_at=latency,
            )
            for i, latency in enumerate(latencies)
        }
        return DispatchResult(
            makespan=max(latencies),
            trace=ExecutionTrace(),
            energy=EnergyLedger(),
            records=records,
        )

    def test_nearest_rank_pinned(self):
        """100 known latencies 0.001..0.100: p50 = 0.050, p99 = 0.099.

        The old int(q*n) indexing returned 0.051 and the maximum here.
        """
        latencies = [i / 1000 for i in range(1, 101)]
        result = self._result_with_latencies(latencies)
        assert result.tail_latency(0.50) == pytest.approx(0.050)
        assert result.tail_latency(0.99) == pytest.approx(0.099)
        assert result.tail_latency(1.00) == pytest.approx(0.100)

    def test_small_samples(self):
        result = self._result_with_latencies([3.0, 1.0, 2.0])
        assert result.tail_latency(0.50) == pytest.approx(2.0)
        assert result.tail_latency(0.99) == pytest.approx(3.0)
        # A tiny quantile returns the minimum, never an invalid index.
        assert result.tail_latency(0.01) == pytest.approx(1.0)

    def test_invalid_quantile_rejected(self):
        result = self._result_with_latencies([1.0])
        with pytest.raises(ValueError):
            result.tail_latency(0.0)
        with pytest.raises(ValueError):
            result.tail_latency(1.5)


class TestObservability:
    def test_metrics_and_decisions_populated(self):
        system = make_system(spec())
        jobs = [job(f"j{i}") for i in range(3)]
        result = Dispatcher(system).run(
            StaticPolicy(
                [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
            )
        )
        assert result.metrics.counters["jobs.dispatched"].value == 3
        assert result.metrics.counters["jobs.completed"].value == 3
        slots = result.metrics.gauges["sram.slots_in_use"]
        assert slots.max_value <= 2  # never above the slot limit
        assert slots.value == 0  # everything drained by the end
        assert result.metrics.gauges["ddr4.active_transfers"].value == 0
        assert len(result.decisions) == 3
        assert all(d.actual_time is not None for d in result.decisions)

    def test_report_from_real_run(self):
        system = make_system(spec())
        jobs = [job(f"j{i}") for i in range(4)]
        result = Dispatcher(system).run(
            StaticPolicy(
                [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
            )
        )
        report = result.report()
        dev = report.devices["sram"]
        assert 0.0 < dev.utilisation <= 1.0
        assert dev.jobs == 4
        assert dev.busy_time <= result.makespan * (1 + 1e-9)
        # StaticPolicy dispatches carry no predictions.
        assert report.predictor is None


class TestResultMetrics:
    def test_latency_statistics(self):
        system = make_system(spec())
        jobs = [job(f"j{i}", t_compute=1e-4 * (i + 1)) for i in range(3)]
        result = Dispatcher(system).run(
            StaticPolicy(
                [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
            )
        )
        assert result.mean_latency() > 0
        assert result.tail_latency(0.99) >= result.mean_latency()
        assert len(result.jobs_on(MemoryKind.SRAM)) == 3

    def test_empty_result(self):
        system = make_system(spec())
        result = Dispatcher(system).run(StaticPolicy([]))
        assert result.mean_latency() == 0.0
        assert result.tail_latency() == 0.0
