"""Job profiles and the ground-truth timing model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Job, JobPerfProfile
from repro.memories import MemoryKind


def profile(**overrides) -> JobPerfProfile:
    params = dict(
        unit_arrays=10,
        t_load=1e-6,
        t_replica_unit=2e-7,
        t_compute_unit=1e-5,
        waves_unit=20,
        overhead_delta=0.05,
        fill_bytes=1000.0,
        compute_energy_j=1e-9,
    )
    params.update(overrides)
    return JobPerfProfile(**params)


class TestProfile:
    def test_unit_allocation_times(self):
        p = profile()
        assert p.load_time(10) == pytest.approx(1e-6)
        assert p.compute_time(10) == pytest.approx(1e-5)
        assert p.total_time(10) == pytest.approx(1.1e-5)

    def test_replicas_floor_to_unit_multiples(self):
        p = profile()
        assert p.replicas(10) == 1
        assert p.replicas(19) == 1  # fractional replicas are waste
        assert p.replicas(20) == 2
        assert p.replicas(1000) == 20  # capped at waves_unit

    def test_compute_speedup_with_replicas(self):
        p = profile()
        t1 = p.compute_time(10)
        t2 = p.compute_time(20)
        # Two replicas halve the waves, modulo the sync overhead.
        assert t2 == pytest.approx(t1 / 2 * 2**0.05)

    def test_replication_adds_load_time(self):
        p = profile()
        assert p.load_time(20) == pytest.approx(1e-6 + 2e-7)
        assert p.load_time(40) == pytest.approx(1e-6 + 3 * 2e-7)

    def test_n_iter_multiplies_everything(self):
        p1 = profile(n_iter=1)
        p3 = profile(n_iter=3)
        assert p3.total_time(10) == pytest.approx(3 * p1.total_time(10))

    def test_below_unit_allocation_rejected(self):
        with pytest.raises(ValueError):
            profile().total_time(9)

    def test_useful_max(self):
        assert profile().useful_max_arrays() == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            profile(unit_arrays=0)
        with pytest.raises(ValueError):
            profile(waves_unit=0)
        with pytest.raises(ValueError):
            profile(overhead_delta=-0.1)
        with pytest.raises(ValueError):
            profile(t_load=-1.0)
        with pytest.raises(ValueError):
            profile(n_iter=0)


class TestJob:
    def make_job(self) -> Job:
        return Job(
            job_id="j",
            kernel="spmm",
            profiles={
                MemoryKind.SRAM: profile(t_compute_unit=1e-5),
                MemoryKind.RERAM: profile(t_compute_unit=3e-5),
            },
        )

    def test_profile_lookup(self):
        job = self.make_job()
        assert job.profile(MemoryKind.SRAM).t_compute_unit == 1e-5
        with pytest.raises(KeyError):
            job.profile(MemoryKind.DRAM)

    def test_true_time(self):
        job = self.make_job()
        assert job.true_time(MemoryKind.SRAM, 10) == pytest.approx(1.1e-5)

    def test_best_memory(self):
        job = self.make_job()
        best = job.best_memory({MemoryKind.SRAM: 10, MemoryKind.RERAM: 10})
        assert best is MemoryKind.SRAM
        # With a big ReRAM allocation and tiny SRAM, preference flips
        # only if ReRAM actually gets faster -- verify consistency.
        allocations = {MemoryKind.SRAM: 10, MemoryKind.RERAM: 200}
        best2 = job.best_memory(allocations)
        t_sram = job.true_time(MemoryKind.SRAM, 10)
        t_reram = job.true_time(MemoryKind.RERAM, 200)
        assert (best2 is MemoryKind.RERAM) == (t_reram < t_sram)

    def test_best_memory_ignores_unsupported(self):
        job = self.make_job()
        assert job.best_memory({MemoryKind.SRAM: 10, MemoryKind.DRAM: 99}) is (
            MemoryKind.SRAM
        )
        with pytest.raises(ValueError):
            job.best_memory({MemoryKind.DRAM: 10})

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id="x", kernel="gemm", profiles={})

    def test_supported_memories(self):
        assert set(self.make_job().supported_memories()) == {
            MemoryKind.SRAM,
            MemoryKind.RERAM,
        }


@settings(max_examples=100, deadline=None)
@given(
    unit=st.integers(min_value=1, max_value=50),
    waves=st.integers(min_value=1, max_value=100),
    factor=st.integers(min_value=1, max_value=30),
)
def test_more_arrays_never_slow_compute_property(unit, waves, factor):
    """Monotonicity: granting whole extra replicas never increases
    compute time (the delta overhead never dominates a halving)."""
    p = JobPerfProfile(
        unit_arrays=unit,
        t_load=0.0,
        t_replica_unit=0.0,
        t_compute_unit=1.0,
        waves_unit=waves,
        overhead_delta=0.05,
    )
    times = [p.compute_time(r * unit) for r in range(1, factor + 1)]
    for a, b in zip(times, times[1:]):
        assert b <= a * 1.0001
