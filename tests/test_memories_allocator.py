"""Scratchpad allocator: first-fit, coalescing, and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memories import (
    AllocationError,
    ArrayGeometry,
    MemoryKind,
    MemorySpec,
    ScratchpadAllocator,
)


def make_spec(num_arrays: int = 64) -> MemorySpec:
    return MemorySpec(
        kind=MemoryKind.SRAM,
        name="test",
        geometry=ArrayGeometry(rows=16, cols=16),
        num_arrays=num_arrays,
        alus_per_array=16,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=2,
        pack_limit=4,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=10.0,
        copy_bandwidth_gbps=10.0,
    )


class TestAllocate:
    def test_simple_allocate_free(self):
        alloc = ScratchpadAllocator(make_spec())
        a = alloc.allocate(10)
        assert a.arrays == 10
        assert alloc.free_arrays == 54
        alloc.free(a)
        assert alloc.free_arrays == 64

    def test_allocation_exposes_bytes_and_alus(self):
        alloc = ScratchpadAllocator(make_spec())
        a = alloc.allocate(4)
        assert a.bytes == 4 * (16 * 16 // 8)
        assert a.alus == 4 * 16

    def test_exhaustion_raises(self):
        alloc = ScratchpadAllocator(make_spec(8))
        alloc.allocate(8)
        with pytest.raises(AllocationError):
            alloc.allocate(1)

    def test_zero_allocation_rejected(self):
        alloc = ScratchpadAllocator(make_spec())
        with pytest.raises(ValueError):
            alloc.allocate(0)

    def test_double_free_raises(self):
        alloc = ScratchpadAllocator(make_spec())
        a = alloc.allocate(2)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)

    def test_allocate_bytes_rounds_to_arrays(self):
        spec = make_spec()
        alloc = ScratchpadAllocator(spec)
        a = alloc.allocate_bytes(spec.geometry.bytes * 3 + 1)
        assert a.arrays == 4

    def test_fragmentation_blocks_contiguous_requests(self):
        alloc = ScratchpadAllocator(make_spec(10))
        first = alloc.allocate(4)
        middle = alloc.allocate(2)
        alloc.allocate(4)
        alloc.free(first)
        alloc.free(middle)  # coalesces with the first run -> 6 free
        assert alloc.largest_free_run == 6
        assert alloc.allocate(6).arrays == 6

    def test_coalescing_merges_all_neighbours(self):
        alloc = ScratchpadAllocator(make_spec(12))
        a = alloc.allocate(4)
        b = alloc.allocate(4)
        c = alloc.allocate(4)
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)
        assert alloc.largest_free_run == 12
        assert alloc.free_arrays == 12

    def test_reserved_fraction(self):
        alloc = ScratchpadAllocator(make_spec(100), reserved_fraction=0.25)
        assert alloc.total_arrays == 75
        with pytest.raises(AllocationError):
            alloc.allocate(76)

    def test_invalid_reservation(self):
        with pytest.raises(ValueError):
            ScratchpadAllocator(make_spec(), reserved_fraction=1.0)

    def test_reset_clears_everything(self):
        alloc = ScratchpadAllocator(make_spec(16))
        alloc.allocate(5)
        alloc.allocate(5)
        alloc.reset()
        assert alloc.free_arrays == 16
        assert alloc.live_allocations == 0

    def test_utilisation(self):
        alloc = ScratchpadAllocator(make_spec(10))
        assert alloc.utilisation() == 0.0
        alloc.allocate(5)
        assert alloc.utilisation() == pytest.approx(0.5)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=20)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=40,
    )
)
def test_allocator_conservation_property(ops):
    """Free + used always equals total; free never exceeds total."""
    alloc = ScratchpadAllocator(make_spec(64))
    live = []
    for action, value in ops:
        if action == "alloc":
            try:
                live.append(alloc.allocate(value))
            except AllocationError:
                assert alloc.largest_free_run < value
        elif live:
            allocation = live.pop(value % len(live))
            alloc.free(allocation)
        assert alloc.free_arrays + alloc.used_arrays == alloc.total_arrays
        assert 0 <= alloc.free_arrays <= alloc.total_arrays
        assert alloc.used_arrays == sum(a.arrays for a in live)
    for allocation in live:
        alloc.free(allocation)
    assert alloc.free_arrays == alloc.total_arrays
    assert alloc.largest_free_run == alloc.total_arrays
