"""Performance predictors: oracle, noisy, two-stage MLP, naive metric."""

import numpy as np
import pytest

from repro.core import (
    MLPPredictor,
    NaiveThresholdClassifier,
    NoisyPredictor,
    OraclePredictor,
    naive_metric,
)
from repro.gnn import NeighborSampler, extract_metadata, generate
from repro.kernels import make_gemm_job, make_spmm_job
from repro.memories import DEFAULT_SPECS, MemoryKind
from repro.ml import r2_score, relative_rmse


@pytest.fixture(scope="module")
def spmm_jobs():
    """A density-diverse SpMM job population.

    The paper's full 3-hop subgraphs of ogbl-citation2 span orders of
    magnitude in density; fanout-capped sampling on the scaled analog
    compresses that spread, so we restore it by mixing fanout levels.
    """
    graph = generate("collab")
    rng = np.random.default_rng(1)
    jobs = []
    i = 0
    for fanout in ((5, 4, 3), (15, 10, 5), (40, 30, 20), None):
        sampler = NeighborSampler(
            graph, hops=3, fanout=fanout, max_nodes=600, seed=7
        )
        for query in rng.choice(graph.num_nodes, size=24, replace=False):
            sub = sampler.sample(int(query))
            md = extract_metadata(sub, 128)
            jobs.append(
                make_spmm_job(f"s{i}", sub.graph, 128, DEFAULT_SPECS, metadata=md)
            )
            i += 1
    rng.shuffle(jobs)
    return jobs


@pytest.fixture(scope="module")
def trained(spmm_jobs):
    predictor = MLPPredictor(epochs=200, seed=0)
    predictor.train(spmm_jobs[:64])
    return predictor


class TestOracle:
    def test_oracle_matches_truth(self, spmm_jobs):
        oracle = OraclePredictor()
        job = spmm_jobs[0]
        est = oracle.estimate(job, MemoryKind.SRAM)
        assert est.t_compute_unit == job.profile(MemoryKind.SRAM).t_compute_unit
        assert est.unit_arrays == job.profile(MemoryKind.SRAM).unit_arrays

    def test_oracle_estimate_equals_ground_truth_curve(self, spmm_jobs):
        """The oracle's planning curve IS the discrete truth (paper:
        "returns the accurate cycle counts")."""
        job = spmm_jobs[0]
        profile = job.profile(MemoryKind.SRAM)
        est = OraclePredictor().estimate(job, MemoryKind.SRAM)
        for replicas in (1, 2, 4):
            arrays = replicas * profile.unit_arrays
            assert est.total_time(arrays) == profile.total_time(arrays)


class TestNoisy:
    def test_zero_sigma_is_transparent(self, spmm_jobs):
        noisy = NoisyPredictor(OraclePredictor(), sigma=0.0)
        job = spmm_jobs[0]
        assert (
            noisy.estimate(job, MemoryKind.SRAM).t_compute_unit
            == OraclePredictor().estimate(job, MemoryKind.SRAM).t_compute_unit
        )

    def test_noise_is_deterministic_per_job(self, spmm_jobs):
        noisy = NoisyPredictor(OraclePredictor(), sigma=0.5, seed=3)
        job = spmm_jobs[0]
        a = noisy.estimate(job, MemoryKind.SRAM).t_compute_unit
        b = noisy.estimate(job, MemoryKind.SRAM).t_compute_unit
        assert a == b

    def test_noise_differs_across_jobs_and_kinds(self, spmm_jobs):
        noisy = NoisyPredictor(OraclePredictor(), sigma=0.5, seed=3)
        job = spmm_jobs[0]
        truth = OraclePredictor()

        def factor(j, k):
            return noisy.estimate(j, k).t_compute_unit / truth.estimate(j, k).t_compute_unit

        assert factor(spmm_jobs[0], MemoryKind.SRAM) != factor(
            spmm_jobs[1], MemoryKind.SRAM
        )
        assert factor(job, MemoryKind.SRAM) != factor(job, MemoryKind.RERAM)

    def test_noise_magnitude_tracks_sigma(self, spmm_jobs):
        truth = OraclePredictor()
        for sigma in (0.1, 0.5):
            noisy = NoisyPredictor(truth, sigma=sigma, seed=0)
            logs = [
                np.log(
                    noisy.estimate(j, MemoryKind.SRAM).t_compute_unit
                    / truth.estimate(j, MemoryKind.SRAM).t_compute_unit
                )
                for j in spmm_jobs
            ]
            assert np.std(logs) == pytest.approx(sigma, rel=0.35)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoisyPredictor(OraclePredictor(), sigma=-0.1)


class TestMLPPredictor:
    def test_accuracy_on_held_out_jobs(self, trained, spmm_jobs):
        """Paper III-E: R^2 ~ 0.995, RMSE ~ 22% of mean cycles."""
        test = spmm_jobs[64:]
        truth = [j.profile(MemoryKind.SRAM).t_compute_unit for j in test]
        pred = [trained.predict_unit_compute(j, MemoryKind.SRAM) for j in test]
        assert r2_score(truth, pred) > 0.9
        assert relative_rmse(truth, pred) < 0.5

    def test_hw_stage_predicts(self, trained, spmm_jobs):
        test = spmm_jobs[64:]
        truth = [j.tags["h_w"][MemoryKind.RERAM] for j in test]
        pred = [trained.predict_hw(j, MemoryKind.RERAM) for j in test]
        assert r2_score(truth, pred) > 0.8

    def test_estimate_uses_prediction_for_spmm(self, trained, spmm_jobs):
        job = spmm_jobs[70]
        est = trained.estimate(job, MemoryKind.SRAM)
        assert est.t_compute_unit == pytest.approx(
            trained.predict_unit_compute(job, MemoryKind.SRAM)
        )

    def test_deterministic_kernels_fall_back_to_oracle(self, trained):
        gemm = make_gemm_job("g", 64, 128, 256, DEFAULT_SPECS)
        est = trained.estimate(gemm, MemoryKind.SRAM)
        assert est.t_compute_unit == gemm.profile(MemoryKind.SRAM).t_compute_unit

    def test_untrained_raises_on_spmm(self, spmm_jobs):
        """A forgotten train() call must not silently report
        oracle-grade accuracy on the jobs it claims to predict."""
        predictor = MLPPredictor()
        with pytest.raises(RuntimeError, match="untrained"):
            predictor.estimate(spmm_jobs[0], MemoryKind.SRAM)

    def test_untrained_still_oracle_for_deterministic_kernels(self):
        """Non-SpMM kernels are costed at compile time (III-E); the
        oracle path stays valid without training."""
        predictor = MLPPredictor()
        gemm = make_gemm_job("g", 8, 8, 8, DEFAULT_SPECS)
        est = predictor.estimate(gemm, MemoryKind.SRAM)
        assert est.t_compute_unit == gemm.profile(MemoryKind.SRAM).t_compute_unit

    def test_training_requires_enough_jobs(self, spmm_jobs):
        with pytest.raises(ValueError):
            MLPPredictor().train(spmm_jobs[:4])

    def test_jobs_without_tags_rejected(self, trained):
        gemm = make_gemm_job("g", 8, 8, 8, DEFAULT_SPECS)
        with pytest.raises(ValueError):
            trained.predict_unit_compute(gemm, MemoryKind.SRAM)

    def test_stage2_features_identical_at_train_and_inference(
        self, trained, spmm_jobs
    ):
        """Regression for the train/inference skew: stage-2 training
        rows and the inference-time feature vector must come from one
        pipeline -- same metadata transform, same (clamped) stage-1
        H_w -- or the cycle model sees a feature distribution at
        inference it never trained on."""
        for job in spmm_jobs[:4]:
            for kind in (MemoryKind.SRAM, MemoryKind.RERAM):
                train_row = trained._stage2_rows([job], kind)[0][0]
                inference_row = trained._stage2_features(job, kind)
                assert np.array_equal(train_row, inference_row)
                # The H_w feature is the clamped public stage-1 value.
                assert inference_row[-1] == trained.predict_hw(job, kind)
                assert inference_row[-1] >= 0.0

    def test_estimates_always_finite_and_positive(self, trained, spmm_jobs):
        """Regression for the unbounded exp: even a pathological
        extrapolation must never hand the scheduler inf/0/NaN."""
        job = spmm_jobs[0]
        # Sanity on real jobs first.
        for j in spmm_jobs[64:80]:
            t = trained.predict_unit_compute(j, MemoryKind.SRAM)
            assert np.isfinite(t) and t > 0.0
        # Force an absurd log-domain prediction by blowing up the
        # cycle model's output bias; the clamp must contain it.
        model = trained._cycle_models[MemoryKind.SRAM]
        original = model._biases[-1].copy()
        try:
            model._biases[-1] = original + 1e6
            t = trained.predict_unit_compute(job, MemoryKind.SRAM)
            assert np.isfinite(t) and t > 0.0
            model._biases[-1] = original - 1e6
            t = trained.predict_unit_compute(job, MemoryKind.SRAM)
            assert np.isfinite(t) and t > 0.0
        finally:
            model._biases[-1] = original

    def test_clamp_bounds_derived_from_training_targets(
        self, trained, spmm_jobs
    ):
        from repro.core.predictor import LOG_CLAMP_MARGIN

        log_targets = np.log(
            [j.profile(MemoryKind.SRAM).t_compute_unit for j in spmm_jobs[:64]]
        )
        lo, hi = trained._log_bounds[MemoryKind.SRAM]
        assert lo == pytest.approx(log_targets.min() - LOG_CLAMP_MARGIN)
        assert hi == pytest.approx(log_targets.max() + LOG_CLAMP_MARGIN)


class TestMLPPredictorLifecycle:
    def test_save_load_estimates_byte_identical(
        self, trained, spmm_jobs, tmp_path
    ):
        path = trained.save(tmp_path / "pred.json")
        clone = MLPPredictor.load(path)
        for job in spmm_jobs[64:72]:
            for kind in (MemoryKind.SRAM, MemoryKind.RERAM, MemoryKind.DRAM):
                assert (
                    clone.estimate(job, kind).t_compute_unit
                    == trained.estimate(job, kind).t_compute_unit
                )

    def test_save_twice_byte_identical(self, trained, tmp_path):
        a = trained.save(tmp_path / "a.json")
        b = trained.save(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="artifact"):
            MLPPredictor.load(path)

    def test_untrained_round_trip(self, spmm_jobs, tmp_path):
        """An untrained artifact reloads as untrained -- and still
        refuses to estimate SpMM jobs."""
        path = MLPPredictor().save(tmp_path / "empty.json")
        clone = MLPPredictor.load(path)
        with pytest.raises(RuntimeError, match="untrained"):
            clone.estimate(spmm_jobs[0], MemoryKind.SRAM)

    def test_partial_fit_improves_untrained_kind_coverage(self, spmm_jobs):
        predictor = MLPPredictor(epochs=120, seed=0)
        predictor.train(spmm_jobs[:32])
        before = [
            predictor.predict_unit_compute(j, MemoryKind.SRAM)
            for j in spmm_jobs[64:]
        ]
        predictor.partial_fit(spmm_jobs[32:64])
        after = [
            predictor.predict_unit_compute(j, MemoryKind.SRAM)
            for j in spmm_jobs[64:]
        ]
        truth = [j.profile(MemoryKind.SRAM).t_compute_unit for j in spmm_jobs[64:]]
        # The warm-start update must keep the model healthy (finite,
        # positive, still accurate) after absorbing the second batch.
        assert all(np.isfinite(after)) and all(t > 0 for t in after)
        assert relative_rmse(truth, after) < 0.6
        assert before != after  # the update actually moved the model

    def test_partial_fit_on_untrained_delegates_to_train(self, spmm_jobs):
        a = MLPPredictor(epochs=60, seed=3).partial_fit(spmm_jobs[:32])
        b = MLPPredictor(epochs=60, seed=3).train(spmm_jobs[:32])
        job = spmm_jobs[40]
        assert a.predict_unit_compute(
            job, MemoryKind.SRAM
        ) == b.predict_unit_compute(job, MemoryKind.SRAM)


@pytest.fixture(scope="module")
def density_spread_jobs():
    """Jobs spanning the full density range of Figure 10.

    Within one sparse mother graph the nnz/H_w metric stays on the
    SRAM side of the crossover (which is why the paper finds ogbl-ddi
    poor on SRAM but ogbl-collab fine there); the Figure 10 spread
    comes from subgraphs covering orders of magnitude in density, so
    the population here is drawn from mother graphs of varying
    attachment density.
    """
    from repro.gnn import barabasi_albert

    jobs = []
    for m in (2, 8, 30, 80, 150):
        graph = barabasi_albert(400, m, seed=m)
        sampler = NeighborSampler(graph, hops=2, fanout=(20, 10), seed=m)
        for i, query in enumerate((3, 77, 200, 333)):
            sub = sampler.sample(query)
            md = extract_metadata(sub, 128)
            jobs.append(
                make_spmm_job(
                    f"d{m}-{i}", sub.graph, 128, DEFAULT_SPECS, metadata=md
                )
            )
    return jobs


class TestNaiveMetric:
    def test_metric_is_nnz_over_hw(self, spmm_jobs):
        job = spmm_jobs[0]
        expected = job.tags["nnz"] / job.tags["h_w"][MemoryKind.RERAM]
        assert naive_metric(job) == pytest.approx(expected)

    @staticmethod
    def _metrics_and_ratios(jobs):
        metrics = np.asarray([naive_metric(j) for j in jobs])
        ratios = np.asarray(
            [
                j.profile(MemoryKind.SRAM).t_compute_unit
                / max(j.profile(MemoryKind.RERAM).t_compute_unit, 1e-30)
                for j in jobs
            ]
        )
        return metrics, ratios

    def test_metric_correlates_with_preference(self, density_spread_jobs):
        """Figure 10: larger nnz/H_w favours ReRAM."""
        metrics, ratios = self._metrics_and_ratios(density_spread_jobs)
        correlation = np.corrcoef(metrics, np.log(ratios))[0, 1]
        assert correlation > 0.5

    def test_both_preferences_present(self, density_spread_jobs):
        _, ratios = self._metrics_and_ratios(density_spread_jobs)
        assert (ratios > 1).any()  # some jobs prefer ReRAM
        assert (ratios < 1).any()  # some prefer SRAM

    def test_threshold_classifier_beats_chance(self, density_spread_jobs):
        metrics, ratios = self._metrics_and_ratios(density_spread_jobs)
        labels = ratios > 1.0
        clf = NaiveThresholdClassifier().fit(metrics, labels)
        majority = max(labels.mean(), 1 - labels.mean())
        assert clf.accuracy(metrics, labels) >= majority

    def test_misclassified_borderline_jobs_exist(self, density_spread_jobs):
        """The paper's point: the naive metric roughly classifies but
        leaves borderline jobs wrong -- motivating the MLP."""
        metrics, ratios = self._metrics_and_ratios(density_spread_jobs)
        labels = ratios > 1.0
        clf = NaiveThresholdClassifier().fit(metrics, labels)
        assert clf.accuracy(metrics, labels) < 1.0

    def test_classifier_validation(self):
        with pytest.raises(ValueError):
            NaiveThresholdClassifier().fit([], [])
