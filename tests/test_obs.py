"""Observability layer: metrics, decision log, trace analytics, export."""

import json

import pytest

from repro.obs import (
    Counter,
    DecisionLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunReport,
    bubbles,
    build_report,
    merged_intervals,
    nearest_rank,
    result_payload,
    write_results_json,
    write_trace_csv,
)
from repro.sim.trace import ExecutionTrace, Phase


class TestNearestRank:
    def test_textbook_example(self):
        # Classic nearest-rank example: 5 values, p30 -> 2nd value.
        values = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert nearest_rank(values, 0.30) == 20.0
        assert nearest_rank(values, 0.40) == 20.0
        assert nearest_rank(values, 0.50) == 35.0
        assert nearest_rank(values, 1.00) == 50.0

    def test_single_value(self):
        assert nearest_rank([7.0], 0.01) == 7.0
        assert nearest_rank([7.0], 1.0) == 7.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)


class TestCounter:
    def test_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_step_function_mean(self):
        gauge = Gauge("g")
        gauge.set(0.0, 2)  # 2 for [0, 1)
        gauge.set(1.0, 4)  # 4 for [1, 3)
        gauge.set(3.0, 0)
        # Over [0, 3]: (2*1 + 4*2) / 3
        assert gauge.time_weighted_mean() == pytest.approx(10 / 3)

    def test_horizon_extends_last_value(self):
        gauge = Gauge("g")
        gauge.set(0.0, 1)
        gauge.set(2.0, 3)
        # 1 for [0,2), 3 for [2,4): (2 + 6) / 4
        assert gauge.time_weighted_mean(horizon=4.0) == pytest.approx(2.0)

    def test_same_time_overwrites(self):
        gauge = Gauge("g")
        gauge.set(1.0, 5)
        gauge.set(1.0, 7)
        assert gauge.samples == [(1.0, 7.0)]
        assert gauge.value == 7.0

    def test_time_regression_rejected(self):
        gauge = Gauge("g")
        gauge.set(2.0, 1)
        with pytest.raises(ValueError):
            gauge.set(1.0, 1)

    def test_time_in_state(self):
        gauge = Gauge("g")
        gauge.set(0.0, 0)
        gauge.set(1.0, 2)
        gauge.set(4.0, 0)
        states = gauge.time_in_state(horizon=5.0)
        assert states[0.0] == pytest.approx(2.0)  # [0,1) and [4,5)
        assert states[2.0] == pytest.approx(3.0)  # [1,4)

    def test_empty_gauge(self):
        gauge = Gauge("g")
        assert gauge.value == 0.0
        assert gauge.max_value == 0.0
        assert gauge.time_weighted_mean() == 0.0
        assert gauge.time_in_state() == {}


class TestHistogram:
    def test_stats(self):
        hist = Histogram("h")
        for v in [3.0, 1.0, 2.0]:
            hist.observe(v)
        assert hist.count == 3
        assert hist.mean() == pytest.approx(2.0)
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 3.0


class TestMetricsRegistry:
    def test_lazy_creation_and_reuse(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("depth").set(0.0, 1)
        registry.gauge("depth").set(1.0, 0)
        registry.histogram("lat").observe(0.5)
        snap = registry.snapshot(horizon=2.0)
        assert snap["counters"]["jobs"] == 3
        assert snap["gauges"]["depth"]["samples"] == 2
        assert snap["gauges"]["depth"]["time_weighted_mean"] == pytest.approx(0.5)
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable


class TestDecisionLog:
    def test_record_and_complete(self):
        log = DecisionLog()
        log.record("j1", "sram", 4, 0.0, predicted_time=1.0, queue_depth=3)
        log.complete("j1", 2.0)
        (decision,) = log.decisions
        assert decision.resolved
        assert decision.absolute_error == pytest.approx(1.0)
        # Signed (actual - predicted) / actual: underestimate is positive.
        assert decision.relative_error == pytest.approx(0.5)

    def test_duplicate_record_rejected(self):
        log = DecisionLog()
        log.record("j1", "sram", 4, 0.0)
        with pytest.raises(ValueError):
            log.record("j1", "sram", 4, 0.0)

    def test_unknown_completion_rejected(self):
        with pytest.raises(KeyError):
            DecisionLog().complete("ghost", 1.0)

    def test_error_summary(self):
        log = DecisionLog()
        log.record("a", "sram", 4, 0.0, predicted_time=1.0)
        log.record("b", "sram", 4, 0.0, predicted_time=4.0)
        log.complete("a", 2.0)  # |rel err| 0.5 (underestimate)
        log.complete("b", 2.0)  # |rel err| 1.0 (overestimate)
        summary = log.error_summary()
        assert summary["count"] == 2
        assert summary["mean_abs_rel_error"] == pytest.approx(0.75)
        assert summary["max_abs_rel_error"] == pytest.approx(1.0)
        assert summary["mean_signed_rel_error"] == pytest.approx(-0.25)

    def test_no_predictions_yields_none(self):
        log = DecisionLog()
        log.record("a", "sram", 4, 0.0)  # no predicted_time
        log.complete("a", 1.0)
        assert log.error_summary() is None


def make_trace() -> ExecutionTrace:
    """Two devices; dev0 has one bubble of 1.0s between its jobs."""
    trace = ExecutionTrace()
    trace.record("a", "dev0", Phase.FILL, 0.0, 1.0, 4)
    trace.record("a", "dev0", Phase.COMPUTE, 1.0, 2.0, 4)
    trace.record("b", "dev0", Phase.COMPUTE, 3.0, 4.0, 4)
    trace.record("c", "dev1", Phase.COMPUTE, 0.0, 4.0, 8)
    return trace


class TestTraceAnalytics:
    def test_merged_intervals(self):
        trace = make_trace()
        assert merged_intervals(trace, "dev0") == [(0.0, 2.0), (3.0, 4.0)]
        assert merged_intervals(trace, "dev1") == [(0.0, 4.0)]

    def test_bubble_detection(self):
        trace = make_trace()
        count, total = bubbles(trace, "dev0")
        assert count == 1
        assert total == pytest.approx(1.0)
        assert bubbles(trace, "dev1") == (0, 0.0)

    def test_min_gap_filters_slivers(self):
        trace = ExecutionTrace()
        trace.record("a", "dev", Phase.COMPUTE, 0.0, 1.0)
        trace.record("b", "dev", Phase.COMPUTE, 1.0 + 1e-15, 2.0)
        assert bubbles(trace, "dev") == (0, 0.0)

    def test_report_string_renders(self):
        report = RunReport(
            scheduler="test", makespan=1.0, n_jobs=0, mean_latency=0.0,
            p99_latency=0.0,
        )
        text = str(report)
        assert "dispatch report" in text
        assert "predictor error: n/a" in text


class _FakeResult:
    """Duck-typed DispatchResult for build_report/export tests."""

    def __init__(self, trace):
        self.trace = trace
        self.records = {}
        self.scheduler_name = "fake"
        self.makespan = trace.makespan
        self.decisions = None
        self.metrics = None

    def mean_latency(self):
        return 0.0

    def tail_latency(self, q=0.99):
        return 0.0


class TestBuildReport:
    def test_device_numbers(self):
        report = build_report(_FakeResult(make_trace()))
        dev0 = report.devices["dev0"]
        assert dev0.busy_time == pytest.approx(3.0)
        assert dev0.utilisation == pytest.approx(3.0 / 4.0)
        assert dev0.bubble_count == 1
        assert dev0.bubble_time == pytest.approx(1.0)
        assert dev0.phase_seconds["fill"] == pytest.approx(1.0)
        assert dev0.phase_seconds["compute"] == pytest.approx(2.0)
        dev1 = report.devices["dev1"]
        assert dev1.utilisation == pytest.approx(1.0)
        assert report.predictor is None


class TestExport:
    def test_json_and_csv_roundtrip(self, tmp_path):
        result = _FakeResult(make_trace())

        class _Ledger:
            def total(self):
                return 0.0

        result.energy = _Ledger()
        payload = result_payload(result)
        assert payload["scheduler"] == "fake"
        assert len(payload["trace"]) == 4

        json_path = write_results_json(result, tmp_path / "runs.json")
        data = json.loads(json_path.read_text())
        assert len(data["runs"]) == 1
        assert data["runs"][0]["report"]["devices"]["dev0"]["bubble_count"] == 1

        csv_path = write_trace_csv([result, result], tmp_path / "trace.csv")
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("run,job_id,device,phase")
        assert len(lines) == 1 + 2 * 4  # header + 2 runs x 4 records
        assert lines[1].startswith("0,") and lines[5].startswith("1,")
