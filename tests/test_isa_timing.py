"""Per-target op timing and lowering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import LoweringError, Op, is_native, lower_op, native_ops, op_cycles
from repro.memories import MemoryKind


class TestNativeCosts:
    def test_sram_bit_serial_formulas(self):
        assert op_cycles(MemoryKind.SRAM, Op.ADD, 16) == 16
        assert op_cycles(MemoryKind.SRAM, Op.MUL, 16) == 302
        assert op_cycles(MemoryKind.SRAM, Op.MAC, 16) == 302

    def test_dram_is_5x_sram_arithmetic(self):
        for op in (Op.ADD, Op.MUL, Op.MAC, Op.SUB):
            assert op_cycles(MemoryKind.DRAM, op) == 5 * op_cycles(MemoryKind.SRAM, op)

    def test_reram_mac_is_8_cycles(self):
        assert op_cycles(MemoryKind.RERAM, Op.MAC, 16) == 8
        assert op_cycles(MemoryKind.RERAM, Op.MUL, 16) == 8

    def test_loads_and_stores_are_free_per_lane(self):
        # Data movement is priced by the memory-system model.
        for kind in MemoryKind:
            assert op_cycles(kind, Op.LOAD) == 0
            assert op_cycles(kind, Op.STORE) == 0

    def test_width_scales_bit_serial_ops(self):
        assert op_cycles(MemoryKind.SRAM, Op.ADD, 32) == 32
        assert op_cycles(MemoryKind.SRAM, Op.MUL, 32) == 32 * 32 + 3 * 32 - 2

    def test_reram_width_independent_peripherals(self):
        assert op_cycles(MemoryKind.RERAM, Op.SHL, 16) == op_cycles(
            MemoryKind.RERAM, Op.SHL, 32
        )

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            op_cycles(MemoryKind.SRAM, Op.ADD, 0)


class TestLowering:
    def test_exp2_not_native_on_bit_serial(self):
        assert not is_native(MemoryKind.SRAM, Op.EXP2)
        assert not is_native(MemoryKind.DRAM, Op.EXP2)

    def test_exp2_lowered_to_native_ops(self):
        bag = lower_op(MemoryKind.SRAM, Op.EXP2)
        assert all(is_native(MemoryKind.SRAM, op) for op in bag)
        assert bag[Op.MUL] >= 1

    def test_reram_exp2_uses_lut(self):
        bag = lower_op(MemoryKind.RERAM, Op.EXP2)
        assert bag[Op.LUT] == 1

    def test_reram_div_lowered_via_reciprocal(self):
        assert not is_native(MemoryKind.RERAM, Op.DIV)
        bag = lower_op(MemoryKind.RERAM, Op.DIV)
        assert bag[Op.MUL] >= 1
        assert bag[Op.LUT] >= 1

    def test_lowered_cost_equals_expansion_sum(self):
        bag = lower_op(MemoryKind.SRAM, Op.RECIP)
        total = sum(n * op_cycles(MemoryKind.SRAM, op) for op, n in bag.items())
        assert op_cycles(MemoryKind.SRAM, Op.RECIP) == total

    def test_native_op_lowers_to_itself(self):
        assert lower_op(MemoryKind.SRAM, Op.ADD) == {Op.ADD: 1}

    def test_load_lowers_to_nothing(self):
        assert lower_op(MemoryKind.DRAM, Op.LOAD) == {}

    def test_native_ops_listing(self):
        assert Op.MAC in native_ops(MemoryKind.RERAM)
        assert Op.EXP2 not in native_ops(MemoryKind.SRAM)


@given(op=st.sampled_from(list(Op)), kind=st.sampled_from(list(MemoryKind)))
def test_every_frontend_op_costable_everywhere(op, kind):
    """The common programming interface must cover the whole op set on
    every target (paper III-B1), either natively or via lowering."""
    cycles = op_cycles(kind, op)
    assert cycles >= 0
    if op not in (Op.LOAD, Op.STORE):
        assert cycles > 0


@given(op=st.sampled_from(list(Op)), kind=st.sampled_from(list(MemoryKind)))
def test_lowering_terminates_in_native_ops(op, kind):
    bag = lower_op(kind, op)
    for native_op in bag:
        assert is_native(kind, native_op)


def test_dram_bulk_bitwise_is_cheap_relative_to_its_arithmetic():
    """Ambit's design point: bitwise ops are far cheaper than composed
    arithmetic on DRAM."""
    bitwise = op_cycles(MemoryKind.DRAM, Op.AND)
    mul = op_cycles(MemoryKind.DRAM, Op.MUL)
    assert mul / bitwise > 20


class TestCycleCache:
    """The ``op_cycles`` memo must be a pure speedup: identical
    results cached, uncached and disabled."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        from repro.isa import timing

        timing.configure_cache(True)
        timing.clear_cache()
        yield
        timing.configure_cache(True)
        timing.clear_cache()

    def test_cached_values_match_uncached(self):
        from repro.isa import timing

        probes = [
            (MemoryKind.SRAM, Op.MUL, 16),
            (MemoryKind.DRAM, Op.ADD, 16),
            (MemoryKind.RERAM, Op.MAC, 16),
            (MemoryKind.SRAM, Op.MAX, 8),
        ]
        cached = [op_cycles(kind, op, bits) for kind, op, bits in probes]
        timing.configure_cache(False)
        uncached = [op_cycles(kind, op, bits) for kind, op, bits in probes]
        assert cached == uncached

    def test_hit_miss_accounting(self):
        from repro.isa import timing

        op_cycles(MemoryKind.SRAM, Op.MUL, 16)
        op_cycles(MemoryKind.SRAM, Op.MUL, 16)
        op_cycles(MemoryKind.SRAM, Op.ADD, 16)
        stats = timing.cache_stats()["timing.op_cycles"]
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["size"] == 2
        timing.clear_cache()
        stats = timing.cache_stats()["timing.op_cycles"]
        assert stats["size"] == 0 and stats["hits"] == 0

    def test_disabled_cache_stores_nothing(self):
        from repro.isa import timing

        timing.configure_cache(False)
        op_cycles(MemoryKind.SRAM, Op.MUL, 16)
        assert timing.cache_stats()["timing.op_cycles"]["size"] == 0


class TestBatchCycles:
    def test_iterable_matches_scalar_sum(self):
        from repro.isa.timing import batch_cycles

        ops = [Op.ADD] * 5 + [Op.MUL] * 3
        expected = 5 * op_cycles(MemoryKind.SRAM, Op.ADD, 16) + 3 * op_cycles(
            MemoryKind.SRAM, Op.MUL, 16
        )
        assert batch_cycles(MemoryKind.SRAM, ops) == expected

    def test_mapping_form(self):
        from repro.isa.timing import batch_cycles

        bag = {Op.ADD: 5, Op.MUL: 3}
        assert batch_cycles(MemoryKind.SRAM, bag) == batch_cycles(
            MemoryKind.SRAM, [Op.ADD] * 5 + [Op.MUL] * 3
        )

    def test_negative_count_rejected(self):
        from repro.isa.timing import batch_cycles

        with pytest.raises(ValueError):
            batch_cycles(MemoryKind.SRAM, {Op.ADD: -1})
