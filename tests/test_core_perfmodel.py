"""Scale-free estimates, knee allocation, beta fitting."""

import numpy as np
import pytest

from repro.core import (
    JobPerfProfile,
    ScaleFreeEstimate,
    allocation_grid,
    estimate_from_profile,
    fit_beta,
    knee_allocation,
    min_time_allocation,
)


def estimate(**overrides) -> ScaleFreeEstimate:
    params = dict(
        unit_arrays=8,
        t_load=1e-6,
        t_replica_unit=5e-8,
        t_compute_unit=1e-4,
        beta=0.92,
    )
    params.update(overrides)
    return ScaleFreeEstimate(**params)


class TestEstimate:
    def test_eq3_power_law(self):
        est = estimate()
        assert est.compute_time(8) == pytest.approx(1e-4)
        assert est.compute_time(16) == pytest.approx(1e-4 * 0.5**0.92)

    def test_eq2_replication_cost(self):
        est = estimate()
        assert est.load_time(8) == pytest.approx(1e-6)
        assert est.load_time(16) == pytest.approx(1e-6 + 5e-8)

    def test_eq1_total(self):
        est = estimate(n_iter=2)
        assert est.total_time(8) == pytest.approx(2 * (1e-6 + 1e-4))

    def test_max_useful_clamps(self):
        est = estimate(max_useful_arrays=16)
        assert est.compute_time(64) == est.compute_time(16)

    def test_below_unit_rejected(self):
        with pytest.raises(ValueError):
            estimate().total_time(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate(beta=0.0)
        with pytest.raises(ValueError):
            estimate(beta=1.5)
        with pytest.raises(ValueError):
            estimate(unit_arrays=0)

    def test_snap_to_replica(self):
        est = estimate()
        assert est.snap_to_replica(8) == 8
        assert est.snap_to_replica(15) == 8
        assert est.snap_to_replica(16) == 16
        assert est.snap_to_replica(7) == 8  # floor at the unit

    def test_snap_respects_max_useful(self):
        est = estimate(max_useful_arrays=24)
        assert est.snap_to_replica(64) == 24

    def test_invert_total_time(self):
        est = estimate()
        target = est.total_time(32)
        found = est.invert_total_time(target, 512)
        assert found <= 32
        assert est.total_time(found) <= target * 1.0001

    def test_invert_unreachable_returns_cap(self):
        est = estimate()
        assert est.invert_total_time(1e-12, 64) == 64

    def test_invert_trivial_target(self):
        est = estimate()
        assert est.invert_total_time(1.0, 64) == 8

    def test_invert_compute_time(self):
        est = estimate()
        arrays = est.invert_compute_time(est.t_compute_unit / 2)
        assert est.compute_time(arrays) <= est.t_compute_unit / 2 * 1.01


class TestEstimateFromProfile:
    def make_profile(self) -> JobPerfProfile:
        return JobPerfProfile(
            unit_arrays=8,
            t_load=1e-6,
            t_replica_unit=5e-8,
            t_compute_unit=1e-4,
            waves_unit=64,
        )

    def test_oracle_reads_true_unit_time(self):
        est = estimate_from_profile(self.make_profile())
        assert est.t_compute_unit == 1e-4
        assert est.max_useful_arrays == 8 * 64

    def test_predicted_time_overrides(self):
        est = estimate_from_profile(self.make_profile(), t_compute_unit=5e-4)
        assert est.t_compute_unit == 5e-4

    def test_estimate_tracks_truth_within_tolerance(self):
        """The smooth Eq. 3 model approximates the discrete truth well
        at replica multiples (this is why the paper's fit has high R^2)."""
        profile = self.make_profile()
        est = estimate_from_profile(profile)
        for replicas in (1, 2, 4, 8, 16):
            arrays = replicas * profile.unit_arrays
            truth = profile.compute_time(arrays)
            model = est.compute_time(arrays)
            assert model == pytest.approx(truth, rel=0.25)


class TestKnee:
    def test_grid_contains_only_replica_multiples(self):
        est = estimate()
        grid = allocation_grid(est, 100)
        assert all(g % est.unit_arrays == 0 for g in grid)
        assert grid[0] == est.unit_arrays

    def test_grid_single_point(self):
        est = estimate()
        assert list(allocation_grid(est, 8)) == [8]
        assert list(allocation_grid(est, 15)) == [8]

    def test_grid_validates_cap(self):
        with pytest.raises(ValueError):
            allocation_grid(estimate(), 4)

    def test_knee_below_min_time(self):
        """III-C3: the knee avoids the over-provisioning of the strict
        minimiser."""
        est = estimate(t_replica_unit=1e-9)  # nearly-free replication
        knee = knee_allocation(est, 4096)
        best = min_time_allocation(est, 4096)
        assert knee <= best

    def test_knee_never_worse_than_unit(self):
        est = estimate(t_replica_unit=1e-3)  # replication dominates
        knee = knee_allocation(est, 4096)
        assert est.total_time(knee) <= est.total_time(est.unit_arrays) * 1.0001

    def test_knee_is_replica_multiple(self):
        est = estimate()
        assert knee_allocation(est, 1000) % est.unit_arrays == 0

    def test_flat_curve_stays_at_unit(self):
        est = estimate(t_compute_unit=0.0)
        assert knee_allocation(est, 1000) == est.unit_arrays


class TestFitBeta:
    def test_recovers_exact_power_law(self):
        m = np.asarray([1, 2, 4, 8, 16], dtype=float)
        t = 3.0 * m**-0.9
        beta, r2 = fit_beta(m, t)
        assert beta == pytest.approx(0.9, abs=1e-6)
        assert r2 == pytest.approx(1.0)

    def test_fit_on_discrete_truth_is_tight(self):
        """The paper reports a median R^2 of 0.998 fitting the scale
        free model to measured SpMM scaling; our discrete ground truth
        fits comparably."""
        profile = JobPerfProfile(
            unit_arrays=8,
            t_load=0.0,
            t_replica_unit=0.0,
            t_compute_unit=1e-4,
            waves_unit=160,
        )
        replicas = np.asarray([1, 2, 3, 4, 6, 8, 12, 16])
        arrays = replicas * 8
        times = [profile.compute_time(int(a)) for a in arrays]
        beta, r2 = fit_beta(arrays, times)
        assert r2 > 0.99
        assert 0.8 < beta <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_beta([1], [1.0])
        with pytest.raises(ValueError):
            fit_beta([1, 2], [1.0, -1.0])
        with pytest.raises(ValueError):
            fit_beta([1, 2], [1.0])

    def test_duplicate_allocations_rejected(self):
        """All points at one allocation: the log-log line is
        underdetermined even though there are 'enough' samples."""
        with pytest.raises(ValueError, match="distinct allocations"):
            fit_beta([4, 4, 4], [1.0, 1.1, 0.9])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            fit_beta([1, 2], [1.0, float("nan")])
        with pytest.raises(ValueError, match="finite"):
            fit_beta([1, float("inf")], [1.0, 2.0])

    def test_shape_mismatch_message_names_shapes(self):
        with pytest.raises(ValueError, match=r"\(3,\) and \(2,\)"):
            fit_beta([1, 2, 3], [1.0, 2.0])

    def test_two_distinct_points_suffice(self):
        beta, r2 = fit_beta([2, 4], [1.0, 2.0 ** -0.7])
        assert beta == pytest.approx(0.7, abs=1e-9)
        assert r2 == pytest.approx(1.0)
