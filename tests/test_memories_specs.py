"""The Table III configuration must reproduce the published numbers."""

import math

import pytest

from repro.memories import (
    DEFAULT_SPECS,
    DRAM_SPEC,
    RERAM_SPEC,
    SRAM_SPEC,
    ArrayGeometry,
    MemoryKind,
    MemorySpec,
    bit_serial_add_cycles,
    bit_serial_mul_cycles,
)


class TestTableIII:
    def test_sram_alu_count(self):
        assert SRAM_SPEC.total_alus == 5120 * 256 == 1_310_720

    def test_dram_alu_count(self):
        assert DRAM_SPEC.total_alus == 1024 * 65536 == 67_108_864

    def test_reram_alu_count(self):
        assert RERAM_SPEC.total_alus == 86016 * 16 == 1_376_256

    def test_sram_mac_cycles_match_bit_serial_formula(self):
        # n^2 + 3n - 2 at n=16 -> 302 cycles (Table III).
        assert SRAM_SPEC.mac_cycles_2op == 302 == bit_serial_mul_cycles(16)

    def test_dram_mac_cycles(self):
        assert DRAM_SPEC.mac_cycles_2op == 1510

    def test_reram_mac_cycles(self):
        assert RERAM_SPEC.mac_cycles_2op == 8

    @pytest.mark.parametrize(
        "spec, mops2, mops4",
        [(SRAM_SPEC, 8.278, 2.070), (DRAM_SPEC, 0.199, 0.050), (RERAM_SPEC, 2.500, 2.500)],
    )
    def test_mac_mops_match_table(self, spec, mops2, mops4):
        assert spec.mac_mops(2) == pytest.approx(mops2, rel=1e-2)
        assert spec.mac_mops(4) == pytest.approx(mops4, rel=1e-2)

    def test_reram_capacity_is_336mb(self):
        # "We assume 336 MB ReRAM accelerator chip" (Section V-A).
        assert RERAM_SPEC.capacity_mb == pytest.approx(336, rel=0.01)

    def test_sram_capacity_is_half_llc(self):
        # Half of an 80 MB dual-socket LLC reserved for compute.
        assert SRAM_SPEC.capacity_mb == pytest.approx(40, rel=0.01)

    def test_dram_is_64gb_main_memory(self):
        assert DRAM_SPEC.capacity_bytes == 64 * (1 << 30)

    def test_dram_bank_count_matches_channel_config(self):
        # 4 channels x 1 rank x 16 chips x 16 banks (Section V-A).
        assert DRAM_SPEC.num_arrays == 4 * 1 * 16 * 16

    def test_max_outstanding_jobs_is_eight(self):
        for spec in DEFAULT_SPECS.values():
            assert spec.max_outstanding_jobs == 8

    def test_default_specs_cover_all_kinds(self):
        assert set(DEFAULT_SPECS) == set(MemoryKind)
        for kind, spec in DEFAULT_SPECS.items():
            assert spec.kind is kind


class TestMultiOperandScaling:
    def test_reram_flat_with_operand_count(self):
        assert RERAM_SPEC.mac_cycles(128) == RERAM_SPEC.mac_cycles(2)

    def test_reram_chains_beyond_crossbar_height(self):
        assert RERAM_SPEC.mac_cycles(256) == 2 * RERAM_SPEC.mac_cycles(128)

    def test_bit_serial_quadratic(self):
        assert SRAM_SPEC.mac_cycles(4) == pytest.approx(4 * SRAM_SPEC.mac_cycles(2))

    def test_single_operand_clamps_to_two(self):
        assert SRAM_SPEC.mac_cycles(1) == SRAM_SPEC.mac_cycles(2)

    def test_invalid_operand_count(self):
        with pytest.raises(ValueError):
            SRAM_SPEC.mac_cycles(0)


class TestSpecDerived:
    def test_seconds_conversion(self):
        assert SRAM_SPEC.seconds(2500e6) == pytest.approx(1.0)

    def test_arrays_for_bytes_rounds_up(self):
        per_array = SRAM_SPEC.geometry.bytes
        assert SRAM_SPEC.arrays_for_bytes(per_array + 1) == 2
        assert SRAM_SPEC.arrays_for_bytes(per_array) == 1
        assert SRAM_SPEC.arrays_for_bytes(0) == 0

    def test_fill_seconds_scales_with_write_cost(self):
        base = MemorySpec(
            kind=MemoryKind.SRAM,
            name="x",
            geometry=ArrayGeometry(16, 16),
            num_arrays=4,
            alus_per_array=16,
            clock_mhz=100.0,
            mac_cycles_2op=10,
            multi_operand_alpha=1.0,
            max_operands=2,
            pack_limit=1,
            energy_per_mac_pj=1.0,
            energy_per_bitop_pj=1.0,
            fill_bandwidth_gbps=1.0,
            copy_bandwidth_gbps=1.0,
            write_cost_factor=3.0,
        )
        assert base.fill_seconds(1e9) == pytest.approx(3.0)
        assert base.copy_seconds(1e9) == pytest.approx(1.0)

    def test_geometry_bits(self):
        geometry = ArrayGeometry(rows=128, cols=128, bits_per_cell=2)
        assert geometry.bits == 128 * 128 * 2
        assert geometry.bytes == geometry.bits // 8

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ArrayGeometry(rows=0, cols=8)
        with pytest.raises(ValueError):
            ArrayGeometry(rows=8, cols=8, bits_per_cell=0)

    def test_bit_serial_add_formula(self):
        assert bit_serial_add_cycles(16) == 16
        with pytest.raises(ValueError):
            bit_serial_add_cycles(0)

    def test_aggregate_throughput_ordering(self):
        # At 2-operand MACs all three devices land in the same order of
        # magnitude (paper V-B1: SRAM and ReRAM have "similar SIMD
        # width and average MAC throughput").
        aggregates = {k: s.aggregate_mac_gops(2) for k, s in DEFAULT_SPECS.items()}
        assert max(aggregates.values()) / min(aggregates.values()) < 5

    def test_reram_multi_operand_aggregate_wins(self):
        # With wide accumulations ReRAM's analog bitline sum dominates.
        assert RERAM_SPEC.aggregate_mac_gops(64) > SRAM_SPEC.aggregate_mac_gops(64)
        assert RERAM_SPEC.aggregate_mac_gops(64) > DRAM_SPEC.aggregate_mac_gops(64)
