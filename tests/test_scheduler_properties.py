"""Property-based scheduler invariants over random job batches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveScheduler,
    Dispatcher,
    GlobalScheduler,
    Job,
    JobPerfProfile,
    LJFScheduler,
    MLIMPSystem,
    OraclePredictor,
    oracle_makespan,
)
from repro.core.scheduler.globalsched import build_static_schedule
from repro.core.scheduler.adjustments import intra_queue_adjust
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec


def small_spec(kind: MemoryKind, arrays: int) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"p-{kind.value}",
        geometry=ArrayGeometry(32, 32),
        num_arrays=arrays,
        alus_per_array=32,
        clock_mhz=500.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=2,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=50.0,
        copy_bandwidth_gbps=50.0,
        max_outstanding_jobs=3,
    )


SYSTEM = MLIMPSystem(
    specs={
        MemoryKind.SRAM: small_spec(MemoryKind.SRAM, 24),
        MemoryKind.RERAM: small_spec(MemoryKind.RERAM, 48),
    }
)


def job_from_seed(i: int, seed: int) -> Job:
    rng = np.random.default_rng(seed * 1000 + i)
    profiles = {}
    for kind in SYSTEM.kinds:
        profiles[kind] = JobPerfProfile(
            unit_arrays=int(rng.integers(1, 9)),
            t_load=float(rng.uniform(0, 2e-6)),
            t_replica_unit=float(rng.uniform(0, 2e-7)),
            t_compute_unit=float(rng.uniform(1e-6, 5e-5)),
            waves_unit=int(rng.integers(1, 30)),
            fill_bytes=float(rng.uniform(0, 5e4)),
            compute_energy_j=1e-10,
        )
    return Job(job_id=f"h{i}", kernel="app", profiles=profiles)


@settings(max_examples=25, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=50),
    scheduler_name=st.sampled_from(["ljf", "adaptive", "global"]),
)
def test_every_scheduler_completes_every_job(n_jobs, seed, scheduler_name):
    """All jobs finish exactly once, the makespan covers every record,
    and the fluid oracle lower-bounds the result."""
    jobs = [job_from_seed(i, seed) for i in range(n_jobs)]
    scheduler = {
        "ljf": LJFScheduler(OraclePredictor()),
        "adaptive": AdaptiveScheduler(OraclePredictor()),
        "global": GlobalScheduler(OraclePredictor()),
    }[scheduler_name]
    result = Dispatcher(SYSTEM).run(scheduler.plan(jobs, SYSTEM))
    assert set(result.records) == {job.job_id for job in jobs}
    assert all(r.finished_at <= result.makespan + 1e-12 for r in result.records.values())
    bound = oracle_makespan(jobs, SYSTEM)
    assert result.makespan >= bound * 0.999


@settings(max_examples=25, deadline=None)
@given(
    n_jobs=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=50),
)
def test_static_schedule_respects_capacity(n_jobs, seed):
    """The offline plan never over-subscribes arrays or job slots at
    any planned instant, and plans every job exactly once."""
    jobs = [job_from_seed(i, seed) for i in range(n_jobs)]
    scheduler = AdaptiveScheduler(OraclePredictor())
    queues = scheduler.build_queues(jobs, SYSTEM)
    queues = intra_queue_adjust(queues, SYSTEM)
    schedule = build_static_schedule(queues, SYSTEM)
    assert len(schedule) == n_jobs
    assert [s.planned_start for s in schedule] == sorted(
        s.planned_start for s in schedule
    )
    # Sweep the plan: active allocations within capacity at every
    # planned start instant (a start coinciding with an end reuses the
    # freed arrays, so the interval is half-open).
    for kind in SYSTEM.kinds:
        entries = [
            (s.planned_start, s.planned_start + s.entry.estimate.total_time(s.entry.arrays), s.entry.arrays)
            for s in schedule
            if s.entry.kind is kind
        ]
        for probe, _, _ in entries:
            active = sum(a for s, e, a in entries if s <= probe < e)
            assert active <= SYSTEM.arrays(kind)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40))
def test_intra_queue_conserves_feasibility(seed):
    """Algorithm 2 never drops a job, never goes below unit
    allocations, and never exceeds the device."""
    jobs = [job_from_seed(i, seed) for i in range(12)]
    scheduler = AdaptiveScheduler(OraclePredictor())
    queues = scheduler.build_queues(jobs, SYSTEM)
    adjusted = intra_queue_adjust(queues, SYSTEM)
    before = sorted(
        entry.job.job_id for q in queues.values() for entry in q
    )
    after = sorted(
        entry.job.job_id for q in adjusted.values() for entry in q
    )
    assert before == after
    for kind, queue in adjusted.items():
        for entry in queue:
            assert entry.arrays >= entry.estimate.unit_arrays
            assert entry.arrays <= SYSTEM.arrays(kind)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40))
def test_trace_array_occupancy_never_exceeds_device(seed):
    """At runtime, concurrently-held arrays stay within the device."""
    jobs = [job_from_seed(i, seed) for i in range(16)]
    result = Dispatcher(SYSTEM).run(
        AdaptiveScheduler(OraclePredictor()).plan(jobs, SYSTEM)
    )
    for kind in SYSTEM.kinds:
        intervals = [
            (r.dispatched_at, r.finished_at, r.arrays)
            for r in result.records.values()
            if r.kind is kind
        ]
        points = sorted({t for s, e, _ in intervals for t in (s, e)})
        for t in points:
            active = sum(a for s, e, a in intervals if s <= t < e)
            assert active <= SYSTEM.arrays(kind)
