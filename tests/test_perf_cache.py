"""Perf layer: memoised allocation searches and vectorised grid math.

The caches and the NumPy batch path must be *pure speedups* -- every
answer here is compared against the uncached / scalar reference across
a parameter sweep.
"""

import numpy as np
import pytest

from repro.core import perfmodel
from repro.core.job import JobPerfProfile
from repro.core.perfmodel import (
    ProfileEstimate,
    ScaleFreeEstimate,
    allocation_grid,
    knee_allocation,
    min_time_allocation,
)
from repro.core.scheduler.adjustments import PlannedJob
from repro.memories import MemoryKind


@pytest.fixture(autouse=True)
def _fresh_perf_layer():
    """Every test starts from (and leaves behind) the default config
    with empty caches -- the caches are process-global."""
    perfmodel.configure(cache_enabled=True, vectorised=True)
    perfmodel.clear_caches()
    yield
    perfmodel.configure(cache_enabled=True, vectorised=True)
    perfmodel.clear_caches()


def sweep_estimates() -> list:
    """A grid of estimates covering replication cost on/off, capped and
    uncapped useful allocations, and the discrete (profile-backed)
    estimate the oracle predictor uses."""
    estimates = []
    for unit in (1, 4, 9):
        for beta in (0.5, 0.92, 1.0):
            for t_rep in (0.0, 8e-4):
                for max_useful in (None, unit * 12):
                    estimates.append(
                        ScaleFreeEstimate(
                            unit_arrays=unit,
                            t_load=1e-4,
                            t_replica_unit=t_rep,
                            t_compute_unit=5e-3,
                            beta=beta,
                            max_useful_arrays=max_useful,
                        )
                    )
    for waves in (1, 7, 64):
        for delta in (0.0, 0.3):
            estimates.append(
                ProfileEstimate(
                    JobPerfProfile(
                        unit_arrays=4,
                        t_load=1e-4,
                        t_replica_unit=3e-5,
                        t_compute_unit=4e-3,
                        waves_unit=waves,
                        overhead_delta=delta,
                    )
                )
            )
    return estimates


class TestCacheCorrectness:
    def test_memoised_searches_equal_uncached_across_sweep(self):
        """The acceptance property: knee/min-time answers are identical
        with the memo on (first call = miss, second = hit) and off."""
        for est in sweep_estimates():
            for cap in (est.unit_arrays, 64, 501):
                if cap < est.unit_arrays:
                    continue
                perfmodel.configure(cache_enabled=False)
                knee_ref = knee_allocation(est, cap)
                min_ref = min_time_allocation(est, cap)
                perfmodel.configure(cache_enabled=True)
                assert knee_allocation(est, cap) == knee_ref  # miss
                assert knee_allocation(est, cap) == knee_ref  # hit
                assert min_time_allocation(est, cap) == min_ref
                assert min_time_allocation(est, cap) == min_ref

    def test_value_equal_estimates_share_cache_entries(self):
        """Frozen dataclasses hash by value, so two jobs with identical
        parameters hit the same entry."""
        a = ScaleFreeEstimate(
            unit_arrays=8, t_load=1e-6, t_replica_unit=5e-8,
            t_compute_unit=1e-4, beta=0.92,
        )
        b = ScaleFreeEstimate(
            unit_arrays=8, t_load=1e-6, t_replica_unit=5e-8,
            t_compute_unit=1e-4, beta=0.92,
        )
        assert a is not b
        knee_allocation(a, 1000)
        stats_before = perfmodel.cache_stats()["perfmodel.knee"]
        knee_allocation(b, 1000)
        stats_after = perfmodel.cache_stats()["perfmodel.knee"]
        assert stats_after["hits"] == stats_before["hits"] + 1
        assert stats_after["size"] == stats_before["size"]

    def test_cache_stats_and_clear(self):
        est = ScaleFreeEstimate(
            unit_arrays=8, t_load=1e-6, t_replica_unit=5e-8,
            t_compute_unit=1e-4, beta=0.92,
        )
        knee_allocation(est, 1000)
        knee_allocation(est, 1000)
        stats = perfmodel.cache_stats()["perfmodel.knee"]
        assert stats["misses"] >= 1 and stats["hits"] >= 1
        assert 0.0 < stats["hit_rate"] <= 1.0
        perfmodel.clear_caches()
        for entry in perfmodel.cache_stats().values():
            assert entry["size"] == 0
            assert entry["hits"] == 0 and entry["misses"] == 0

    def test_disabled_cache_stores_nothing(self):
        perfmodel.configure(cache_enabled=False)
        est = ScaleFreeEstimate(
            unit_arrays=8, t_load=1e-6, t_replica_unit=5e-8,
            t_compute_unit=1e-4, beta=0.92,
        )
        knee_allocation(est, 1000)
        knee_allocation(est, 1000)
        for entry in perfmodel.cache_stats().values():
            assert entry["size"] == 0

    def test_cached_grid_is_shared_and_readonly(self):
        est = ScaleFreeEstimate(
            unit_arrays=8, t_load=1e-6, t_replica_unit=5e-8,
            t_compute_unit=1e-4, beta=0.92,
        )
        grid = allocation_grid(est, 1000)
        again = allocation_grid(est, 1000)
        assert grid is again
        with pytest.raises(ValueError):
            grid[0] = 1


class TestVectorisedParity:
    def test_batch_total_time_matches_scalar(self):
        for est in sweep_estimates():
            grid = allocation_grid(est, 777)
            scalar = np.array([est.total_time(int(m)) for m in grid])
            batch = est.total_time_batch(grid)
            np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=0.0)

    def test_vectorised_and_scalar_searches_agree(self):
        for est in sweep_estimates():
            perfmodel.configure(cache_enabled=False, vectorised=False)
            knee_ref = knee_allocation(est, 900)
            min_ref = min_time_allocation(est, 900)
            perfmodel.configure(vectorised=True)
            assert knee_allocation(est, 900) == knee_ref
            assert min_time_allocation(est, 900) == min_ref

    def test_batch_rejects_below_unit_allocation(self):
        est = ScaleFreeEstimate(
            unit_arrays=8, t_load=1e-6, t_replica_unit=5e-8,
            t_compute_unit=1e-4, beta=0.92,
        )
        with pytest.raises(ValueError):
            est.total_time_batch([4])


class TestPlannedJobMemo:
    def _planned(self, arrays: int) -> PlannedJob:
        est = ScaleFreeEstimate(
            unit_arrays=8, t_load=1e-6, t_replica_unit=5e-8,
            t_compute_unit=1e-4, beta=0.92,
        )
        # est_time only reads .estimate and .arrays; no Job needed.
        return PlannedJob(job=None, kind=MemoryKind.SRAM, arrays=arrays, estimate=est)

    def test_memo_matches_direct_evaluation(self):
        pj = self._planned(16)
        assert pj.est_time == pj.estimate.total_time(16)
        assert pj.est_time == pj.estimate.total_time(16)
        assert "_est_time" in pj.__dict__

    def test_with_arrays_gets_a_fresh_memo(self):
        pj = self._planned(16)
        _ = pj.est_time
        bigger = pj.with_arrays(32)
        assert "_est_time" not in bigger.__dict__
        assert bigger.est_time == pj.estimate.total_time(32)

    def test_memo_disabled_with_cache_off(self):
        perfmodel.configure(cache_enabled=False)
        pj = self._planned(16)
        assert pj.est_time == pj.estimate.total_time(16)
        assert "_est_time" not in pj.__dict__


class TestMinTimeCacheOnFig10Sweep:
    """Regression gate for the dead ``perfmodel.min_time`` cache.

    The Fig. 10 sizing ablation is the one workload that calls
    :func:`min_time_allocation` in anger (``sizing="min"``).  Before
    the key normalisation fix, every lookup missed -- value-equal
    searches landed on distinct keys because non-timing profile fields
    (``fill_bytes``, ``compute_energy_j``, ``vector_width``) entered
    the key -- and the 0% hit rate went unnoticed because the cache is
    slow-but-correct.  Pin a real hit rate on the real sweep.
    """

    def test_fig10_sweep_produces_min_time_hits(self):
        from repro.harness.ablations import ablation_knee

        ablation_knee("collab")
        stats = perfmodel.cache_stats()["perfmodel.min_time"]
        lookups = stats["hits"] + stats["misses"]
        assert lookups > 0, "sweep never reached min_time_allocation"
        assert stats["hits"] > 0, "min_time cache is dead again (0% hit rate)"
        # Well clear of zero, well short of flaky: the collab sweep
        # measured ~54% when the key fix landed.
        assert stats["hit_rate"] > 0.25
