"""Data-parallel applications (Table II) and multiprogramming combos."""

import pytest

from repro.apps import APPLICATIONS, COMBOS, app, app_names, combo_jobs, make_app_jobs
from repro.core import Dispatcher, MLIMPSystem, OraclePredictor, AdaptiveScheduler
from repro.core.perfmodel import ProfileEstimate, knee_allocation
from repro.memories import DEFAULT_SPECS, MemoryKind


def preferred_memory(name: str) -> MemoryKind:
    job = make_app_jobs(app(name), DEFAULT_SPECS)[0]
    times = {}
    for kind, spec in DEFAULT_SPECS.items():
        profile = job.profile(kind)
        knee = knee_allocation(
            ProfileEstimate(profile), max(profile.unit_arrays, spec.num_arrays // 4)
        )
        times[kind] = profile.total_time(knee)
    return min(times, key=times.get)  # type: ignore[arg-type]


class TestLibrary:
    def test_table2_app_set(self):
        assert set(app_names()) == {
            "blackscholes", "fluidanimate", "streamcluster_a", "streamcluster_b",
            "backprop", "kmeans", "crypto", "db_bitmap", "db_scan", "bitap",
        }

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            app("doom")

    def test_kernels_build_and_validate(self):
        for spec in APPLICATIONS.values():
            dfg = spec.kernel()
            dfg.validate()
            assert len(dfg.operation_nodes()) > 0

    def test_job_generation(self):
        jobs = make_app_jobs(app("kmeans"), DEFAULT_SPECS, prefix="x/")
        assert len(jobs) == APPLICATIONS["kmeans"].num_jobs
        assert jobs[0].job_id.startswith("x/kmeans/")
        assert set(jobs[0].profiles) == set(MemoryKind)

    def test_streamcluster_two_input_sizes(self):
        a, b = APPLICATIONS["streamcluster_a"], APPLICATIONS["streamcluster_b"]
        assert b.total_elements > 4 * a.total_elements

    def test_invalid_app_spec(self):
        from repro.apps import AppSpec

        with pytest.raises(ValueError):
            AppSpec("x", "d", APPLICATIONS["kmeans"].kernel, 0, 1, 1)
        with pytest.raises(ValueError):
            AppSpec("x", "d", APPLICATIONS["kmeans"].kernel, 1, 1, 1, reuse_iterations=0)


class TestPreferences:
    """Figure 17's device-preference spread."""

    def test_transcendental_heavy_prefers_sram(self):
        assert preferred_memory("blackscholes") is MemoryKind.SRAM

    def test_bulk_bitwise_prefers_dram(self):
        assert preferred_memory("db_bitmap") is MemoryKind.DRAM
        assert preferred_memory("bitap") is MemoryKind.DRAM
        assert preferred_memory("crypto") is MemoryKind.DRAM

    def test_dot_product_prefers_reram(self):
        assert preferred_memory("streamcluster_b") is MemoryKind.RERAM
        assert preferred_memory("backprop") is MemoryKind.RERAM

    def test_all_three_memories_preferred_by_someone(self):
        prefs = {preferred_memory(name) for name in app_names()}
        assert prefs == set(MemoryKind)

    def test_large_working_sets_iterate_on_small_memories(self):
        job = make_app_jobs(app("db_scan"), DEFAULT_SPECS)[0]
        # The multi-GB table does not fit the 40 MB cache in one pass.
        assert job.profile(MemoryKind.SRAM).n_iter > 1
        assert job.profile(MemoryKind.DRAM).n_iter == 1


class TestCombos:
    def test_table2_combo_columns(self):
        assert set(COMBOS) == set("ABCDEFG")
        for members in COMBOS.values():
            assert len(members) == 4

    def test_combo_jobs_counts(self):
        jobs = combo_jobs("A", DEFAULT_SPECS)
        expected = sum(APPLICATIONS[m].num_jobs for m in COMBOS["A"])
        assert len(jobs) == expected

    def test_unknown_combo(self):
        with pytest.raises(KeyError):
            combo_jobs("Z", DEFAULT_SPECS)

    def test_combo_schedules_end_to_end(self):
        system = MLIMPSystem(specs=DEFAULT_SPECS)
        jobs = combo_jobs("G", DEFAULT_SPECS)
        result = Dispatcher(system).run(
            AdaptiveScheduler(OraclePredictor()).plan(jobs, system)
        )
        assert len(result.records) == len(jobs)

    def test_mlimp_beats_single_layers(self):
        """Figure 18's claim on one combo."""
        predictor = OraclePredictor()
        times = {}
        for kinds in ([MemoryKind.SRAM], [MemoryKind.DRAM], list(MemoryKind)):
            specs = {k: DEFAULT_SPECS[k] for k in kinds}
            system = MLIMPSystem(specs=specs)
            jobs = combo_jobs("D", specs)
            from repro.core import GlobalScheduler

            result = Dispatcher(system).run(
                GlobalScheduler(predictor).plan(jobs, system)
            )
            times[tuple(kinds)] = result.makespan
        all_kinds = tuple(MemoryKind)
        assert times[all_kinds] < times[(MemoryKind.SRAM,)]
        assert times[all_kinds] < times[(MemoryKind.DRAM,)]
