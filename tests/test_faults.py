"""Unit tests for the fault-injection subsystem (repro.faults).

Plan data model and JSON round-trips, injector health/wear state
machine, the dispatcher's degraded-mode paths on small deterministic
systems, and the runtime/report/export integration.  The seeded
end-to-end invariants live in ``tests/test_properties_faults.py``.
"""

import json

import pytest

from repro.core import Dispatcher, DispatchError, Job, JobPerfProfile, MLIMPSystem
from repro.core.runtime import MLIMPRuntime
from repro.core.scheduler.base import Dispatch, DispatchPolicy, ResourceView
from repro.faults import (
    DeviceHealth,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec
from repro.memories.endurance import WearTracker
from repro.obs import build_report, result_payload


def spec(kind=MemoryKind.SRAM, arrays=32, slots=2) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"f-{kind.value}",
        geometry=ArrayGeometry(64, 64),
        num_arrays=arrays,
        alus_per_array=64,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=4,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=100.0,
        copy_bandwidth_gbps=100.0,
        max_outstanding_jobs=slots,
    )


def job(job_id="j", kinds=(MemoryKind.SRAM,), t_compute=1e-4, fill_bytes=1e4) -> Job:
    return Job(
        job_id=job_id,
        kernel="app",
        profiles={
            kind: JobPerfProfile(
                unit_arrays=4,
                t_load=1e-6,
                t_replica_unit=1e-7,
                t_compute_unit=t_compute,
                waves_unit=4,
                fill_bytes=fill_bytes,
                compute_energy_j=2e-9,
            )
            for kind in kinds
        },
    )


class StaticPolicy(DispatchPolicy):
    def __init__(self, dispatches: list[Dispatch]):
        self._queue = list(dispatches)

    def pending(self) -> int:
        return len(self._queue)

    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        out = []
        for d in list(self._queue):
            if view.can_place(d.kind, d.arrays):
                out.append(d)
                self._queue.remove(d)
                view.free_slots[d.kind] -= 1
                view.largest_free_run[d.kind] -= d.arrays
        return out


def make_system(*specs_) -> MLIMPSystem:
    return MLIMPSystem(specs={s.kind: s for s in specs_})


TWO_DEVICE = (MemoryKind.SRAM, MemoryKind.DRAM)


def run_two_device(jobs, plan, slots=2):
    system = make_system(
        spec(MemoryKind.SRAM, slots=slots), spec(MemoryKind.DRAM, slots=slots)
    )
    policy = StaticPolicy(
        [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
    )
    return Dispatcher(system).run(policy, faults=plan)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind=FaultKind.STALL, device=MemoryKind.SRAM, time=1.0)
        with pytest.raises(ValueError):
            FaultEvent(
                kind=FaultKind.DERATE, device=MemoryKind.SRAM, factor=0.0
            )
        with pytest.raises(ValueError):
            FaultEvent(
                kind=FaultKind.DERATE, device=MemoryKind.SRAM, factor=1.5
            )
        with pytest.raises(ValueError):
            FaultEvent(kind=FaultKind.WEAROUT, device=MemoryKind.SRAM)
        with pytest.raises(ValueError):
            FaultEvent(kind=FaultKind.FAIL, device=MemoryKind.SRAM, time=-1.0)

    def test_round_trip_each_kind(self):
        events = [
            FaultEvent(
                kind=FaultKind.STALL,
                device=MemoryKind.SRAM,
                time=1e-4,
                duration=2e-4,
                reason="hiccup",
            ),
            FaultEvent(
                kind=FaultKind.DERATE,
                device=MemoryKind.DRAM,
                time=3e-4,
                factor=0.5,
            ),
            FaultEvent(kind=FaultKind.FAIL, device=MemoryKind.RERAM, time=4e-4),
            FaultEvent(
                kind=FaultKind.WEAROUT,
                device=MemoryKind.RERAM,
                threshold_bytes=1e6,
            ),
        ]
        for event in events:
            assert FaultEvent.from_dict(event.as_dict()) == event
        assert [e.timed for e in events] == [True, True, True, False]


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.random(
            3, [MemoryKind.SRAM, MemoryKind.DRAM], horizon_s=1e-3, n_events=5
        )
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded == plan
        assert FaultPlan.from_dict(json.loads(path.read_text())) == plan

    def test_random_is_seed_deterministic(self):
        devices = [MemoryKind.SRAM, MemoryKind.DRAM, MemoryKind.RERAM]
        a = FaultPlan.random(11, devices, horizon_s=1e-3)
        b = FaultPlan.random(11, devices, horizon_s=1e-3)
        assert a == b
        assert a != FaultPlan.random(12, devices, horizon_s=1e-3)

    def test_random_leaves_a_survivor(self):
        devices = [MemoryKind.SRAM, MemoryKind.DRAM]
        for seed in range(30):
            plan = FaultPlan.random(seed, devices, horizon_s=1e-3, n_events=6)
            failed = {
                e.device for e in plan.events if e.kind is FaultKind.FAIL
            }
            assert len(failed) < len(devices)

    def test_timed_events_sorted_and_empty_plan(self):
        plan = FaultPlan.random(5, [MemoryKind.SRAM], horizon_s=1e-3, n_events=4)
        times = [e.time for e in plan.timed_events()]
        assert times == sorted(times)
        assert not FaultPlan.empty()
        assert len(FaultPlan.empty()) == 0

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        policy = RetryPolicy(base_backoff_s=1e-6, multiplier=3.0, max_attempts=4)
        assert RetryPolicy.from_dict(policy.as_dict()) == policy


class TestFaultInjector:
    def _injector(self, *events) -> FaultInjector:
        plan = FaultPlan(events=tuple(events))
        return FaultInjector(plan, [MemoryKind.SRAM, MemoryKind.DRAM])

    def test_stall_extends_not_shortens(self):
        inj = self._injector()
        long = FaultEvent(
            kind=FaultKind.STALL, device=MemoryKind.SRAM, time=0.0, duration=5.0
        )
        short = FaultEvent(
            kind=FaultKind.STALL, device=MemoryKind.SRAM, time=0.0, duration=1.0
        )
        assert inj.apply(long, now=0.0)
        assert inj.apply(short, now=2.0)
        health = inj.health[MemoryKind.SRAM]
        assert health.stalled_until == 5.0
        assert health.stalled(4.9) and not health.stalled(5.0)
        assert not health.usable(4.9) and health.usable(5.0)

    def test_faults_against_a_dead_device_are_moot(self):
        inj = self._injector()
        fail = FaultEvent(kind=FaultKind.FAIL, device=MemoryKind.SRAM, time=0.0)
        assert inj.apply(fail, now=1.0)
        again = FaultEvent(
            kind=FaultKind.DERATE, device=MemoryKind.SRAM, factor=0.5
        )
        assert not inj.apply(again, now=2.0)
        assert len(inj.fired) == 1
        assert inj.dead_kinds() == [MemoryKind.SRAM]
        assert inj.alive_kinds() == [MemoryKind.DRAM]

    def test_derate_scales_time(self):
        inj = self._injector()
        inj.apply(
            FaultEvent(kind=FaultKind.DERATE, device=MemoryKind.SRAM, factor=0.25),
            now=0.0,
        )
        assert inj.time_scale(MemoryKind.SRAM) == 4.0
        assert inj.time_scale(MemoryKind.DRAM) == 1.0

    def test_wearout_triggers_once_at_threshold(self):
        wear = FaultEvent(
            kind=FaultKind.WEAROUT, device=MemoryKind.SRAM, threshold_bytes=100.0
        )
        inj = self._injector(wear)
        assert inj.record_fill(MemoryKind.SRAM, 60.0) is None
        fired = inj.record_fill(MemoryKind.SRAM, 60.0)
        assert fired is wear
        inj.apply(fired, now=1.0)
        # The device is dead; further traffic cannot re-trigger.
        assert inj.record_fill(MemoryKind.SRAM, 1e9) is None

    def test_summary_shape(self):
        inj = self._injector()
        summary = inj.summary()
        assert summary["plan_size"] == 0
        assert set(summary["devices"]) == {"sram", "dram"}
        assert DeviceHealth().as_dict()["alive"] is True


class TestDispatcherDegradation:
    def test_stall_aborts_and_retries(self):
        jobs = [job("a"), job("b")]
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.STALL,
                    device=MemoryKind.SRAM,
                    time=5e-5,
                    duration=1e-4,
                ),
            ),
            retry=RetryPolicy(base_backoff_s=1e-5),
        )
        result = run_two_device(jobs, plan)
        assert set(result.records) == {"a", "b"}
        assert not result.failed_jobs
        assert result.metrics.counter("jobs.retried").value >= 1
        # Wall-clock work was redone: the stall pushed completion out.
        assert result.makespan > 1.5e-4

    def test_fail_without_alternative_fails_jobs(self):
        jobs = [job("a"), job("b")]
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.FAIL, device=MemoryKind.SRAM, time=5e-5
                ),
            )
        )
        system = make_system(spec(MemoryKind.SRAM))
        policy = StaticPolicy(
            [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
        )
        result = Dispatcher(system).run(policy, faults=plan)
        assert set(result.failed_jobs) == {"a", "b"}
        assert not result.records
        assert result.metrics.counter("jobs.failed").value == 2

    def test_fail_migrates_to_survivor(self):
        jobs = [job(f"j{i}", kinds=TWO_DEVICE) for i in range(3)]
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.FAIL, device=MemoryKind.SRAM, time=5e-5
                ),
            )
        )
        result = run_two_device(jobs, plan, slots=3)
        assert set(result.records) == {"j0", "j1", "j2"}
        assert not result.failed_jobs
        assert result.metrics.counter("jobs.requeued").value >= 1
        assert result.metrics.counter("jobs.requeued.sram").value >= 1
        migrated = [r for r in result.records.values() if r.kind is MemoryKind.DRAM]
        assert migrated and all(r.attempts >= 1 for r in migrated)

    def test_requeued_job_parks_on_a_full_device(self):
        # Four jobs in flight on SRAM, but the survivor (DRAM) has only
        # two job slots: when SRAM dies the overflow must park and
        # drain as slots free up, not crash the dispatcher.
        system = make_system(
            spec(MemoryKind.SRAM, slots=4), spec(MemoryKind.DRAM, slots=2)
        )
        jobs = [job(f"j{i}", kinds=TWO_DEVICE) for i in range(4)]
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.FAIL, device=MemoryKind.SRAM, time=5e-5
                ),
            )
        )
        policy = StaticPolicy(
            [Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4) for j in jobs]
        )
        result = Dispatcher(system).run(policy, faults=plan)
        assert set(result.records) == {f"j{i}" for i in range(4)}
        assert not result.failed_jobs
        assert all(r.kind is MemoryKind.DRAM for r in result.records.values())
        assert result.metrics.counter("jobs.requeued").value == 4

    def test_legacy_policy_on_a_dead_device_deadlocks(self):
        # A policy with no device_lost re-pointing keeps queueing jobs
        # for the dead device; the dispatcher still flags that as a
        # dead-lock instead of hanging.
        jobs = [job(f"j{i}", kinds=TWO_DEVICE) for i in range(5)]
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.FAIL, device=MemoryKind.SRAM, time=5e-5
                ),
            )
        )
        with pytest.raises(DispatchError, match="dead-locked"):
            run_two_device(jobs, plan, slots=2)

    def test_derate_slows_the_device(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.DERATE,
                    device=MemoryKind.SRAM,
                    time=0.0,
                    factor=0.5,
                ),
            )
        )
        slowed = run_two_device([job("a")], plan)
        nominal = run_two_device([job("a")], FaultPlan.empty())
        assert slowed.makespan > nominal.makespan * 1.5
        assert slowed.fault_summary["devices"]["sram"]["derate"] == 0.5

    def test_wearout_kills_device_mid_run(self):
        # Each job fills 1e4 bytes; the threshold trips inside job 2.
        jobs = [job(f"j{i}", kinds=TWO_DEVICE) for i in range(3)]
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.WEAROUT,
                    device=MemoryKind.SRAM,
                    threshold_bytes=2.5e4,
                ),
            )
        )
        result = run_two_device(jobs, plan, slots=1)
        assert set(result.records) == {"j0", "j1", "j2"}
        assert not result.failed_jobs
        assert not result.fault_summary["devices"]["sram"]["alive"]

    def test_without_faults_double_dispatch_still_raises(self):
        system = make_system(spec(MemoryKind.SRAM))
        j = job("a")
        policy = StaticPolicy(
            [
                Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4),
                Dispatch(job=j, kind=MemoryKind.SRAM, arrays=4),
            ]
        )
        with pytest.raises(DispatchError):
            Dispatcher(system).run(policy)


class TestWearBridge:
    def test_wearout_event_from_tracker(self):
        tracker = WearTracker(spec=spec(MemoryKind.RERAM), endurance_writes=1.0)
        budget = tracker.total_cell_writes_budget
        tracker.record_bytes(budget * 0.75)
        event = tracker.wearout_event()
        assert event.kind is FaultKind.WEAROUT
        assert event.device is MemoryKind.RERAM
        assert event.threshold_bytes == pytest.approx(budget * 0.25)
        assert "endurance" in event.reason

    def test_worn_out_tracker_dies_on_first_write(self):
        tracker = WearTracker(spec=spec(MemoryKind.RERAM), endurance_writes=1.0)
        tracker.record_bytes(tracker.total_cell_writes_budget * 2)
        assert tracker.remaining_bytes() == 0.0
        assert tracker.wearout_event().threshold_bytes == 1.0
        with pytest.raises(ValueError):
            tracker.remaining_bytes(reserve_fraction=1.0)


class TestRuntimeAndReport:
    def _runtime_result(self, plan):
        system = make_system(
            spec(MemoryKind.SRAM), spec(MemoryKind.DRAM, arrays=64)
        )
        runtime = MLIMPRuntime(system, scheduler="ljf")
        runtime.submit_many(
            [job(f"j{i}", kinds=TWO_DEVICE) for i in range(4)]
        )
        return runtime.run(label="unit", faults=plan, fault_baseline=True)

    def test_fault_baseline_and_report_section(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.STALL,
                    device=MemoryKind.SRAM,
                    time=5e-5,
                    duration=1e-4,
                ),
            )
        )
        result = self._runtime_result(plan)
        assert result.fault_free_makespan is not None
        assert result.makespan >= result.fault_free_makespan
        report = build_report(result)
        assert report.degradation is not None
        assert report.degradation["fault_free_makespan"] == result.fault_free_makespan
        assert report.degradation["makespan_overhead"] >= 0.0
        assert "degraded mode" in str(report)
        assert "makespan vs fault-free" in str(report)

    def test_empty_plan_skips_baseline_and_section(self):
        result = self._runtime_result(FaultPlan.empty())
        assert result.fault_free_makespan is None
        assert result.fault_summary is None
        report = build_report(result)
        assert report.degradation is None
        assert "degraded mode" not in str(report)

    def test_export_payload_carries_fault_fields(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.FAIL, device=MemoryKind.SRAM, time=5e-5
                ),
            )
        )
        payload = result_payload(self._runtime_result(plan))
        assert payload["faults"]["plan_size"] == 1
        assert set(payload["faults"]["devices"]) == {"sram", "dram"}
        assert payload["failed_jobs"] == {}
        assert json.dumps(payload)  # JSON-serialisable end to end
