"""Properties of the exact branch-and-bound reference scheduler.

The solver is verification infrastructure (the optgap oracle), so it
gets the strongest checks in the repo: the returned optimum must be a
pure function of the *instance* -- invariant to input permutation and
bit-identical with all pruning disabled -- and must agree with closed
forms computed by independent arithmetic on degenerate shapes.
"""

import itertools
import math
import random

import pytest

from repro.core import Dispatcher, Job, JobPerfProfile, MLIMPSystem
from repro.core.scheduler.exact import (
    DEFAULT_NODE_BUDGET,
    ExactScheduler,
    ExactSolverError,
    solve_exact,
)
from repro.core.scheduler.globalsched import ScheduledEntry
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec


def tiny_spec(kind: MemoryKind, arrays: int, slots: int = 2) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"exact-{kind.value}",
        geometry=ArrayGeometry(64, 64),
        num_arrays=arrays,
        alus_per_array=64,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=4,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=100.0,
        copy_bandwidth_gbps=100.0,
        max_outstanding_jobs=slots,
    )


def two_kind_system(slots: int = 2) -> MLIMPSystem:
    return MLIMPSystem(
        specs={
            MemoryKind.SRAM: tiny_spec(MemoryKind.SRAM, arrays=32, slots=slots),
            MemoryKind.DRAM: tiny_spec(MemoryKind.DRAM, arrays=48, slots=slots),
        }
    )


def compute_pure_jobs(
    seed: int,
    count: int,
    kinds=(MemoryKind.SRAM, MemoryKind.DRAM),
    max_waves: int = 3,
) -> list[Job]:
    """Seeded jobs inside the solver's exact domain (no off-chip
    fill), each placeable on every kind."""
    rng = random.Random(seed)
    jobs = []
    for i in range(count):
        profiles = {}
        for kind in kinds:
            base = rng.uniform(0.4, 3.0) * 1e-3
            profiles[kind] = JobPerfProfile(
                unit_arrays=rng.choice([2, 3]),
                t_load=0.0,
                t_replica_unit=base * rng.uniform(0.003, 0.01),
                t_compute_unit=base,
                waves_unit=rng.randint(1, max_waves),
                fill_bytes=0.0,
            )
        jobs.append(Job(job_id=f"e{seed}-{i}", kernel="gemm", profiles=profiles))
    return jobs


class TestPermutationInvariance:
    @pytest.mark.parametrize("seed", (0, 3, 9))
    def test_optimum_is_a_function_of_the_job_set(self, seed):
        system = two_kind_system()
        jobs = compute_pure_jobs(seed, 5)
        reference = solve_exact(jobs, system)
        for perm in itertools.islice(itertools.permutations(jobs), 0, 120, 13):
            solution = solve_exact(list(perm), system)
            assert solution.makespan == reference.makespan  # bit-identical
            assert solution.assignments == reference.assignments

    def test_job_id_relabelling_does_not_change_makespan(self):
        system = two_kind_system()
        jobs = compute_pure_jobs(4, 5)
        relabelled = [
            Job(job_id=f"zz-{i}", kernel=j.kernel, profiles=j.profiles)
            for i, j in enumerate(reversed(jobs))
        ]
        assert (
            solve_exact(relabelled, system).makespan
            == solve_exact(jobs, system).makespan
        )


class TestPruningIsLossless:
    """``brute_force=True`` disables every bound cut; the optimum must
    come back bit-identical, proving no prune ever removed it."""

    @pytest.mark.parametrize("seed", (1, 2, 7, 13))
    def test_pruned_equals_brute_force(self, seed):
        system = two_kind_system()
        jobs = compute_pure_jobs(seed, 5)
        pruned = solve_exact(jobs, system)
        brute = solve_exact(jobs, system, node_budget=10 * DEFAULT_NODE_BUDGET,
                            brute_force=True)
        assert pruned.makespan == brute.makespan
        assert pruned.nodes <= brute.nodes

    @pytest.mark.parametrize("seed", (5, 8))
    def test_pruned_equals_brute_force_six_jobs(self, seed):
        # Six jobs with waves_unit == 1 (one allocation choice per
        # kind) keeps full enumeration cheap at the satellite's target
        # size.
        system = two_kind_system()
        jobs = compute_pure_jobs(seed, 6, max_waves=1)
        pruned = solve_exact(jobs, system)
        brute = solve_exact(jobs, system, brute_force=True)
        assert pruned.makespan == brute.makespan


class TestClosedFormAgreement:
    """Independent arithmetic on degenerate shapes."""

    def test_single_slot_is_a_chain_of_best_options(self):
        # One slot per device forces sequential execution; with one
        # kind the optimum is just the sum of per-job best durations.
        system = MLIMPSystem(
            specs={MemoryKind.SRAM: tiny_spec(MemoryKind.SRAM, 32, slots=1)}
        )
        jobs = compute_pure_jobs(11, 4, kinds=(MemoryKind.SRAM,))
        solution = solve_exact(jobs, system)
        chain = sum(solve_exact([job], system).makespan for job in jobs)
        assert math.isclose(solution.makespan, chain, rel_tol=1e-12)

    def test_all_concurrent_is_the_slowest_best_option(self):
        # Slots and arrays both exceed total demand: every job runs
        # its fastest option from t=0 and the makespan is their max.
        system = MLIMPSystem(
            specs={MemoryKind.SRAM: tiny_spec(MemoryKind.SRAM, 64, slots=8)}
        )
        jobs = compute_pure_jobs(12, 3, kinds=(MemoryKind.SRAM,), max_waves=2)
        solution = solve_exact(jobs, system)
        slowest = max(solve_exact([job], system).makespan for job in jobs)
        assert solution.makespan == slowest

    def test_two_jobs_split_across_two_devices(self):
        # Two identical jobs, two devices: running them in parallel on
        # different kinds must beat stacking both on the faster one
        # whenever the slower device is close enough -- the solver must
        # find the split.
        system = two_kind_system(slots=1)
        profiles = {
            kind: JobPerfProfile(
                unit_arrays=2,
                t_load=0.0,
                t_replica_unit=5e-6,
                t_compute_unit=1e-3,
                waves_unit=1,
                fill_bytes=0.0,
            )
            for kind in (MemoryKind.SRAM, MemoryKind.DRAM)
        }
        jobs = [
            Job(job_id=f"tw-{i}", kernel="gemm", profiles=dict(profiles))
            for i in range(2)
        ]
        solution = solve_exact(jobs, system)
        kinds_used = {a["kind"] for a in solution.assignments.values()}
        assert kinds_used == {"sram", "dram"}
        single = solve_exact([jobs[0]], system).makespan
        assert solution.makespan < 2 * single

    def test_empty_instance(self):
        solution = solve_exact([], two_kind_system())
        assert solution.makespan == 0.0
        assert solution.schedule == []
        assert solution.assignments == {}


class TestScheduleIntegrity:
    def test_schedule_matches_assignments_and_makespan(self):
        system = two_kind_system()
        jobs = compute_pure_jobs(17, 6)
        solution = solve_exact(jobs, system)
        assert len(solution.schedule) == len(jobs)
        assert all(isinstance(e, ScheduledEntry) for e in solution.schedule)
        starts = [e.planned_start for e in solution.schedule]
        assert starts == sorted(starts)
        ends = [a["end"] for a in solution.assignments.values()]
        assert max(ends) == solution.makespan
        for entry in solution.schedule:
            assignment = solution.assignments[entry.entry.job.job_id]
            assert entry.entry.kind.value == assignment["kind"]
            assert entry.entry.arrays == assignment["arrays"]
            assert entry.planned_start == assignment["start"]

    def test_exact_scheduler_plans_a_dispatchable_policy(self):
        system = two_kind_system()
        jobs = compute_pure_jobs(19, 5)
        solution = solve_exact(jobs, system)
        result = Dispatcher(system).run(
            ExactScheduler().plan(jobs, system), label="exact"
        )
        assert set(result.records) == {job.job_id for job in jobs}
        assert not result.failed_jobs
        assert result.makespan == solution.makespan  # replay is bit-exact


class TestClearErrors:
    def test_memory_infeasible_job_raises(self):
        system = two_kind_system()
        jobs = compute_pure_jobs(1, 2)
        whale = Job(
            job_id="whale",
            kernel="gemm",
            profiles={
                MemoryKind.SRAM: JobPerfProfile(
                    unit_arrays=4096,
                    t_load=0.0,
                    t_replica_unit=1e-6,
                    t_compute_unit=1e-3,
                    waves_unit=1,
                    fill_bytes=0.0,
                )
            },
        )
        with pytest.raises(ExactSolverError, match="fits no memory"):
            solve_exact(jobs + [whale], system)

    def test_off_chip_fill_rejected(self):
        system = two_kind_system()
        streaming = Job(
            job_id="stream",
            kernel="gemm",
            profiles={
                kind: JobPerfProfile(
                    unit_arrays=2,
                    t_load=0.0,
                    t_replica_unit=1e-6,
                    t_compute_unit=1e-3,
                    waves_unit=1,
                    fill_bytes=4096.0,
                )
                for kind in (MemoryKind.SRAM, MemoryKind.DRAM)
            },
        )
        with pytest.raises(ExactSolverError, match="fill_bytes"):
            solve_exact([streaming], system)

    def test_oversize_instance_rejected(self):
        system = two_kind_system()
        jobs = compute_pure_jobs(2, 11)
        with pytest.raises(ExactSolverError, match="exceed the exact-instance"):
            solve_exact(jobs, system)
        with pytest.raises(ExactSolverError, match="device kinds"):
            solve_exact(compute_pure_jobs(2, 3), system, max_kinds=1)

    def test_duplicate_job_ids_rejected(self):
        system = two_kind_system()
        job = compute_pure_jobs(3, 1)[0]
        with pytest.raises(ExactSolverError, match="duplicate"):
            solve_exact([job, job], system)

    def test_node_budget_raises_instead_of_hanging(self):
        system = two_kind_system()
        jobs = compute_pure_jobs(6, 6)
        with pytest.raises(ExactSolverError, match="node budget"):
            solve_exact(jobs, system, brute_force=True, node_budget=50)
