"""Unit tests for the columnar flight table and streaming trace."""

import pytest

from repro.sim import FlightColumns, Phase, StreamingTrace, Simulator
from repro.sim.trace import TraceRecord


class TestFlightColumns:
    def test_acquire_hands_out_low_rows_first(self):
        col = FlightColumns(capacity=4)
        assert [col.acquire() for _ in range(4)] == [0, 1, 2, 3]
        assert col.in_flight == 4

    def test_release_recycles_and_clears_objects(self):
        col = FlightColumns(capacity=2)
        row = col.acquire()
        col.job[row] = object()
        col.dispatch[row] = object()
        col.state[row] = 3
        col.release(row)
        assert col.job[row] is None
        assert col.dispatch[row] is None
        assert col.in_flight == 0
        assert col.acquire() == row

    def test_grow_doubles_and_preserves_live_rows(self):
        col = FlightColumns(capacity=2)
        a, b = col.acquire(), col.acquire()
        col.end_time[a] = 1.5
        col.arrays[b] = 7
        col.job[a] = "keep"
        c = col.acquire()  # triggers growth
        assert col.capacity == 4
        assert col.end_time[a] == 1.5
        assert col.arrays[b] == 7
        assert col.job[a] == "keep"
        assert c not in (a, b)
        assert col.in_flight == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightColumns(capacity=0)


class TestRowScheduling:
    def test_rows_and_events_share_one_seq_order(self):
        """A row armed before an event at the same time fires first --
        rows consume the same sequence counter as ordinary events."""
        sim = Simulator()
        log = []
        sim.attach_row_handler(lambda row: log.append(("row", row)))
        sim.at_row(1.0, 5)
        sim.at(1.0, lambda: log.append(("event",)))
        sim.at_row(1.0, 9)
        sim.run()
        assert log == [("row", 5), ("event",), ("row", 9)]
        assert sim._processed == 3

    def test_second_handler_rejected(self):
        sim = Simulator()
        sim.attach_row_handler(lambda row: None)
        with pytest.raises(RuntimeError):
            sim.attach_row_handler(lambda row: None)

    def test_row_in_past_rejected(self):
        from repro.sim import SimulationError

        sim = Simulator()
        sim.attach_row_handler(lambda row: None)
        sim.at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at_row(0.5, 1)
        with pytest.raises(SimulationError):
            sim.after_row(-0.1, 1)


class TestStreamingTrace:
    def _fill(self, trace):
        trace.record("j0", "DRAM", Phase.FILL, 0.0, 1.0, arrays=2)
        trace.record("j0", "DRAM", Phase.COMPUTE, 1.0, 4.0)
        trace.record("j1", "RRAM", Phase.COMPUTE, 0.5, 2.0)

    def test_aggregates_match_full_trace(self):
        from repro.sim import ExecutionTrace

        streaming, full = StreamingTrace(), ExecutionTrace()
        self._fill(streaming)
        self._fill(full)
        assert streaming.makespan == full.makespan
        assert streaming.devices() == full.devices()
        assert streaming.phase_time(Phase.COMPUTE) == full.phase_time(
            Phase.COMPUTE
        )
        assert (
            streaming.per_device_phase_breakdown()
            == full.per_device_phase_breakdown()
        )
        assert streaming.rows == 3

    def test_sink_receives_every_row(self):
        rows = []
        trace = StreamingTrace(sink=rows.append)
        self._fill(trace)
        assert rows == [
            ("j0", "DRAM", "fill", 0.0, 1.0, 2),
            ("j0", "DRAM", "compute", 1.0, 4.0, 0),
            ("j1", "RRAM", "compute", 0.5, 2.0, 0),
        ]

    def test_add_accepts_trace_records(self):
        trace = StreamingTrace()
        trace.add(TraceRecord("j", "DRAM", Phase.FILL, 0.0, 2.0))
        assert trace.makespan == 2.0

    def test_row_level_queries_raise(self):
        trace = StreamingTrace()
        with pytest.raises(TypeError):
            trace.records

    def test_rejects_backwards_interval(self):
        trace = StreamingTrace()
        with pytest.raises(ValueError):
            trace.record("j", "DRAM", Phase.FILL, 1.0, 0.5)

    def test_memory_stays_flat(self):
        """No per-row state: a large run's footprint is O(devices)."""
        trace = StreamingTrace()
        for i in range(10_000):
            trace.record(f"j{i}", "DRAM", Phase.COMPUTE, float(i), i + 0.5)
        assert trace.rows == 10_000
        # Only aggregates retained -- nothing sized by row count.
        assert set(trace.__slots__) == {
            "sink",
            "rows",
            "_makespan",
            "_phase_seconds",
            "_by_device",
        }
        assert len(trace._by_device) == 1
