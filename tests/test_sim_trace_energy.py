"""Execution traces and the energy ledger."""

import pytest

from repro.sim import EnergyCategory, EnergyLedger, ExecutionTrace, Phase, TraceRecord


class TestTrace:
    def make_trace(self):
        trace = ExecutionTrace()
        trace.record("j1", "sram", Phase.FILL, 0.0, 1.0, arrays=4)
        trace.record("j1", "sram", Phase.COMPUTE, 1.0, 3.0, arrays=4)
        trace.record("j2", "reram", Phase.COMPUTE, 0.5, 2.0, arrays=8)
        trace.record("j3", "sram", Phase.COMPUTE, 4.0, 5.0, arrays=2)
        return trace

    def test_makespan(self):
        assert self.make_trace().makespan == 5.0
        assert ExecutionTrace().makespan == 0.0

    def test_busy_time_merges_overlaps(self):
        trace = ExecutionTrace()
        trace.record("a", "d", Phase.COMPUTE, 0.0, 2.0)
        trace.record("b", "d", Phase.COMPUTE, 1.0, 3.0)
        trace.record("c", "d", Phase.COMPUTE, 5.0, 6.0)
        assert trace.busy_time("d") == pytest.approx(4.0)

    def test_bubble_time_is_internal_idle(self):
        trace = self.make_trace()
        # sram active [0,3] and [4,5]: bubble = 1.
        assert trace.bubble_time("sram") == pytest.approx(1.0)
        assert trace.bubble_time("reram") == pytest.approx(0.0)
        assert trace.bubble_time("absent") == 0.0

    def test_utilisation(self):
        trace = self.make_trace()
        assert trace.utilisation("sram") == pytest.approx(4.0 / 5.0)

    def test_job_latency(self):
        trace = self.make_trace()
        assert trace.job_latency("j1") == pytest.approx(3.0)
        with pytest.raises(KeyError):
            trace.job_latency("nope")

    def test_phase_time(self):
        trace = self.make_trace()
        assert trace.phase_time(Phase.FILL) == pytest.approx(1.0)
        assert trace.phase_time(Phase.COMPUTE) == pytest.approx(4.5)

    def test_devices_and_jobs(self):
        trace = self.make_trace()
        assert trace.devices() == ["reram", "sram"]
        assert trace.job_ids() == ["j1", "j2", "j3"]

    def test_breakdown(self):
        breakdown = self.make_trace().per_device_phase_breakdown()
        assert breakdown["sram"]["compute"] == pytest.approx(3.0)
        assert breakdown["sram"]["fill"] == pytest.approx(1.0)

    def test_invalid_record(self):
        with pytest.raises(ValueError):
            TraceRecord("j", "d", Phase.COMPUTE, 2.0, 1.0)


class TestEnergyLedger:
    def test_accumulation(self):
        ledger = EnergyLedger()
        ledger.add(EnergyCategory.COMPUTE, "sram", 1.0)
        ledger.add(EnergyCategory.COMPUTE, "sram", 2.0)
        ledger.add(EnergyCategory.OFFCHIP, "ddr4", 0.5)
        assert ledger.total() == pytest.approx(3.5)
        assert ledger.get(EnergyCategory.COMPUTE, "sram") == pytest.approx(3.0)
        assert ledger.by_category()[EnergyCategory.OFFCHIP] == pytest.approx(0.5)
        assert ledger.by_device()["sram"] == pytest.approx(3.0)

    def test_negative_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.add(EnergyCategory.HOST, "cpu", -1.0)

    def test_merge(self):
        a = EnergyLedger()
        a.add(EnergyCategory.COMPUTE, "sram", 1.0)
        b = EnergyLedger()
        b.add(EnergyCategory.COMPUTE, "sram", 2.0)
        b.add(EnergyCategory.HOST, "cpu", 1.0)
        merged = a.merge(b)
        assert merged.get(EnergyCategory.COMPUTE, "sram") == pytest.approx(3.0)
        assert merged.total() == pytest.approx(4.0)
        # merge does not mutate its inputs
        assert a.total() == pytest.approx(1.0)

    def test_rows_sorted(self):
        ledger = EnergyLedger()
        ledger.add(EnergyCategory.OFFCHIP, "pcie", 1.0)
        ledger.add(EnergyCategory.COMPUTE, "sram", 1.0)
        rows = ledger.as_rows()
        assert rows == sorted(rows)
