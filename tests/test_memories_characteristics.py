"""Figure 1: technology characteristics and the parallelism argument."""

import pytest

from repro.memories import TECHNOLOGIES, parallelism_rank, technology


class TestProfiles:
    def test_six_technologies_present(self):
        assert set(TECHNOLOGIES) == {"SRAM", "eDRAM", "DRAM", "STT-RAM", "ReRAM", "NAND"}

    def test_lookup_is_case_insensitive(self):
        assert technology("sram") is TECHNOLOGIES["SRAM"]
        assert technology("ReRAM") is TECHNOLOGIES["ReRAM"]

    def test_unknown_technology_raises(self):
        with pytest.raises(KeyError):
            technology("HBM-PIM")

    def test_energy_ordering_sram_cheapest(self):
        # Figure 1: SRAM has the lowest energy per access; NVMs and
        # NAND are one-two orders of magnitude higher.
        energies = {n: p.read_energy_pj_per_bit for n, p in TECHNOLOGIES.items()}
        assert energies["SRAM"] == min(energies.values())
        assert energies["NAND"] == max(energies.values())

    def test_latency_ordering(self):
        lat = {n: p.read_latency_ns for n, p in TECHNOLOGIES.items()}
        assert lat["SRAM"] < lat["DRAM"] < lat["NAND"]
        # NVM in-memory computing is 1-2 orders of magnitude slower
        # than SRAM (paper II-A).
        assert lat["ReRAM"] / lat["SRAM"] >= 10

    def test_nvm_write_asymmetry(self):
        # NVMs have high write energy/latency relative to reads.
        for name in ("STT-RAM", "ReRAM", "NAND"):
            profile = TECHNOLOGIES[name]
            assert profile.write_energy_pj_per_bit > profile.read_energy_pj_per_bit
            assert profile.write_latency_ns >= profile.read_latency_ns

    def test_volatile_flags(self):
        assert TECHNOLOGIES["SRAM"].volatile
        assert TECHNOLOGIES["DRAM"].volatile
        assert not TECHNOLOGIES["ReRAM"].volatile
        assert not TECHNOLOGIES["NAND"].volatile

    def test_endurance_limits_nvm(self):
        # "NVMs have limited endurance ... which curtails the number of
        # writes" (paper II-A).
        assert TECHNOLOGIES["ReRAM"].endurance_writes < TECHNOLOGIES["SRAM"].endurance_writes
        assert TECHNOLOGIES["NAND"].endurance_writes < TECHNOLOGIES["ReRAM"].endurance_writes


class TestParallelism:
    def test_small_cells_do_not_imply_parallelism(self):
        # The paper's Figure 1 point: despite small cells, DRAM and
        # NAND have *lower* SA density (hence parallelism) than SRAM
        # because many cells share each sense amplifier.
        ranked = dict(parallelism_rank())
        assert TECHNOLOGIES["DRAM"].cell_size_f2 < TECHNOLOGIES["SRAM"].cell_size_f2
        assert ranked["DRAM"] < ranked["SRAM"]
        assert ranked["NAND"] < ranked["SRAM"]

    def test_rank_is_normalised_to_sram(self):
        ranked = dict(parallelism_rank())
        assert ranked["SRAM"] == pytest.approx(1.0)

    def test_rank_sorted_descending(self):
        values = [v for _, v in parallelism_rank()]
        assert values == sorted(values, reverse=True)
