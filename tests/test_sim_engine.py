"""Discrete-event engine: ordering, cancellation, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.after(2.0, log.append, "b")
        sim.after(1.0, log.append, "a")
        sim.after(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for label in "abc":
            sim.after(1.0, log.append, label)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.after(1.0, chain, n + 1)

        sim.after(0.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.after(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        log = []
        handle = sim.after(1.0, log.append, "cancelled")
        sim.after(2.0, log.append, "kept")
        handle.cancel()
        assert not handle.active
        sim.run()
        assert log == ["kept"]

    def test_run_until_horizon(self):
        sim = Simulator()
        log = []
        sim.after(1.0, log.append, "early")
        sim.after(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["early", "late"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.after(1.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step(self):
        sim = Simulator()
        log = []
        sim.after(1.0, log.append, 1)
        sim.after(2.0, log.append, 2)
        assert sim.step()
        assert log == [1]
        assert sim.step()
        assert not sim.step()

    def test_pending_counts_active_only(self):
        sim = Simulator()
        h = sim.after(1.0, lambda: None)
        sim.after(2.0, lambda: None)
        assert sim.pending == 2
        h.cancel()
        assert sim.pending == 1


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.after(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


class TestChunkedDrain:
    """The batched drain introduced for the perf layer must be
    invisible: same ordering, same cancellation semantics, exact
    ``pending``/``processed`` accounting."""

    def test_cancel_within_same_timestamp_chunk(self):
        """A callback cancelling a later event at the *same* timestamp
        must prevent it from firing, even though both were collected
        into one drain chunk."""
        sim = Simulator()
        log = []
        victim = sim.after(1.0, log.append, "victim")
        sim.at(1.0, victim.cancel)
        sim.run()
        # seq order: victim scheduled first, so the canceller runs
        # second -- but cancellation of an already-fired event is a
        # no-op, so flip the order to exercise the interesting case.
        sim2 = Simulator()
        log2 = []
        holder = {}
        sim2.at(1.0, lambda: holder["h"].cancel())
        holder["h"] = sim2.at(1.0, log2.append, "victim")
        sim2.run()
        assert log2 == []
        assert sim2.pending == 0
        assert sim2.processed == 1

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        log = []
        h = sim.after(1.0, log.append, "x")
        sim.run()
        assert log == ["x"]
        assert not h.active
        h.cancel()  # must not corrupt accounting
        h.cancel()
        assert sim.pending == 0
        assert sim.processed == 1

    def test_pending_exact_under_heavy_cancellation(self):
        sim = Simulator()
        fired = []
        handles = [sim.after(float(i + 1), fired.append, i) for i in range(500)]
        for h in handles[::2]:
            h.cancel()
        assert sim.pending == 250
        sim.run()
        assert sim.pending == 0
        assert sim.processed == 250
        assert fired == list(range(1, 500, 2))

    def test_compaction_preserves_order(self):
        """Enough tombstones to trigger heap compaction mid-run; the
        survivors must still fire in time order."""
        sim = Simulator()
        fired = []
        handles = [sim.after(float(i + 1), fired.append, i) for i in range(300)]
        for h in handles[::3]:
            h.cancel()
        sim.run()
        expected = [i for i in range(300) if i % 3 != 0]
        assert fired == expected
        assert sim.processed == len(expected)

    def test_schedule_at_now_runs_after_current_chunk(self):
        """An event a callback schedules at the current time joins the
        *next* chunk (higher sequence number), after every event that
        was already due."""
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: (log.append("first"), sim.at(1.0, log.append, "chained")))
        sim.at(1.0, log.append, "second")
        sim.run()
        assert log == ["first", "second", "chained"]
        assert sim.now == 1.0

    def test_schedule_at_now_during_tombstone_majority_drain(self):
        """Regression: a callback schedules at exactly ``now`` while the
        heap is tombstone-majority, so compaction runs between the
        current chunk and the scheduled-at-now chunk.  The at-now event
        must still fire at the same timestamp, after the whole current
        chunk, with exact accounting."""
        sim = Simulator()
        log = []
        # Far-future events that will all be cancelled: enough to trip
        # _COMPACT_MIN_TOMBSTONES and the majority condition.
        victims = [sim.at(10.0, log.append, f"victim{i}") for i in range(200)]

        def first():
            log.append("first")
            for handle in victims:
                handle.cancel()
            sim.at(1.0, log.append, "at-now")  # joins the next chunk at t=1

        sim.at(1.0, first)
        sim.at(1.0, log.append, "second")
        sim.at(2.0, log.append, "later")
        sim.run()
        assert log == ["first", "second", "at-now", "later"]
        assert sim.now == 2.0
        assert sim.pending == 0
        assert sim.processed == 4

    def test_max_events_mid_chunk_keeps_queue_consistent(self):
        """Regression: the ``max_events`` guard used to trip mid-chunk
        with the rest of the chunk already popped off the heap, losing
        those events and corrupting ``pending``.  The survivors must
        stay pending and run exactly once on resume."""
        sim = Simulator()
        log = []
        for label in "abcde":
            sim.at(1.0, log.append, label)
        with pytest.raises(SimulationError):
            sim.run(max_events=2)
        assert log == ["a", "b"]
        assert sim.pending == 3
        sim.run()
        assert log == ["a", "b", "c", "d", "e"]
        assert sim.pending == 0
        assert sim.processed == 5


def _random_schedule(seed: int):
    """A deterministic command list stressing same-timestamp chunks,
    cancellations and at-now chains, replayable on any simulator."""
    import random

    rng = random.Random(seed)
    times = [rng.choice((1.0, 1.0, 1.0, 2.0, 3.0)) for _ in range(120)]
    cancels = [rng.randrange(120) for _ in range(80)]
    chain_at_now = {rng.randrange(120) for _ in range(20)}
    return times, cancels, chain_at_now


def _drive(sim: Simulator, seed: int, use_step: bool):
    times, cancels, chain_at_now = _random_schedule(seed)
    log = []
    handles = {}

    def fire(i):
        log.append((sim.now, i))
        if i in chain_at_now:
            sim.at(sim.now, log.append, (sim.now, f"chained-{i}"))
        for j in cancels:
            if (i + j) % 7 == 0 and j in handles:
                handles[j].cancel()

    for i, t in enumerate(times):
        handles[i] = sim.at(t, fire, i)
    if use_step:
        while sim.step():
            pass
    else:
        sim.run()
    return log, sim.now, sim.processed, sim.pending


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_run_and_step_are_equivalent_under_cancellation(seed):
    """Seeded differential fuzz: the chunked ``run()`` drain (with its
    tombstone compaction) and the one-at-a-time ``step()`` loop must
    produce identical firing sequences and accounting."""
    a = _drive(Simulator(), seed, use_step=False)
    b = _drive(Simulator(), seed, use_step=True)
    assert a == b
