"""Discrete-event engine: ordering, cancellation, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.after(2.0, log.append, "b")
        sim.after(1.0, log.append, "a")
        sim.after(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for label in "abc":
            sim.after(1.0, log.append, label)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.after(1.0, chain, n + 1)

        sim.after(0.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.after(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        log = []
        handle = sim.after(1.0, log.append, "cancelled")
        sim.after(2.0, log.append, "kept")
        handle.cancel()
        assert not handle.active
        sim.run()
        assert log == ["kept"]

    def test_run_until_horizon(self):
        sim = Simulator()
        log = []
        sim.after(1.0, log.append, "early")
        sim.after(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["early", "late"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.after(1.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step(self):
        sim = Simulator()
        log = []
        sim.after(1.0, log.append, 1)
        sim.after(2.0, log.append, 2)
        assert sim.step()
        assert log == [1]
        assert sim.step()
        assert not sim.step()

    def test_pending_counts_active_only(self):
        sim = Simulator()
        h = sim.after(1.0, lambda: None)
        sim.after(2.0, lambda: None)
        assert sim.pending == 2
        h.cancel()
        assert sim.pending == 1


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.after(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


class TestChunkedDrain:
    """The batched drain introduced for the perf layer must be
    invisible: same ordering, same cancellation semantics, exact
    ``pending``/``processed`` accounting."""

    def test_cancel_within_same_timestamp_chunk(self):
        """A callback cancelling a later event at the *same* timestamp
        must prevent it from firing, even though both were collected
        into one drain chunk."""
        sim = Simulator()
        log = []
        victim = sim.after(1.0, log.append, "victim")
        sim.at(1.0, victim.cancel)
        sim.run()
        # seq order: victim scheduled first, so the canceller runs
        # second -- but cancellation of an already-fired event is a
        # no-op, so flip the order to exercise the interesting case.
        sim2 = Simulator()
        log2 = []
        holder = {}
        sim2.at(1.0, lambda: holder["h"].cancel())
        holder["h"] = sim2.at(1.0, log2.append, "victim")
        sim2.run()
        assert log2 == []
        assert sim2.pending == 0
        assert sim2.processed == 1

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        log = []
        h = sim.after(1.0, log.append, "x")
        sim.run()
        assert log == ["x"]
        assert not h.active
        h.cancel()  # must not corrupt accounting
        h.cancel()
        assert sim.pending == 0
        assert sim.processed == 1

    def test_pending_exact_under_heavy_cancellation(self):
        sim = Simulator()
        fired = []
        handles = [sim.after(float(i + 1), fired.append, i) for i in range(500)]
        for h in handles[::2]:
            h.cancel()
        assert sim.pending == 250
        sim.run()
        assert sim.pending == 0
        assert sim.processed == 250
        assert fired == list(range(1, 500, 2))

    def test_compaction_preserves_order(self):
        """Enough tombstones to trigger heap compaction mid-run; the
        survivors must still fire in time order."""
        sim = Simulator()
        fired = []
        handles = [sim.after(float(i + 1), fired.append, i) for i in range(300)]
        for h in handles[::3]:
            h.cancel()
        sim.run()
        expected = [i for i in range(300) if i % 3 != 0]
        assert fired == expected
        assert sim.processed == len(expected)

    def test_schedule_at_now_runs_after_current_chunk(self):
        """An event a callback schedules at the current time joins the
        *next* chunk (higher sequence number), after every event that
        was already due."""
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: (log.append("first"), sim.at(1.0, log.append, "chained")))
        sim.at(1.0, log.append, "second")
        sim.run()
        assert log == ["first", "second", "chained"]
        assert sim.now == 1.0
