"""Cluster topology, interconnect pricing, and placement policies.

Unit-level guarantees of ``repro.cluster``'s static half: specs
validate and pickle-shaped data stays plain, the interconnect cost
model is the arithmetic it claims, node faults compile onto the
existing device-fault machinery, and every placement policy is
deterministic in arrival order.
"""

from __future__ import annotations

import pytest

from tests.prophelpers import make_jobs
from repro.cluster import (
    PLACEMENTS,
    ClusterRuntime,
    ClusterSpec,
    HashPlacement,
    InterconnectSpec,
    LeastLoadedPlacement,
    NodeFault,
    NodeSpec,
    RoundRobinPlacement,
    home_node,
    node_fail_events,
)
from repro.cluster.placement import estimate_service_time, job_fill_bytes
from repro.faults.plan import FaultKind
from repro.harness.config import full_system
from repro.sim.events import JobArrival


def _arrival(seq: int, tenant: str = "a", time: float = 0.0) -> JobArrival:
    job = make_jobs(seed=seq, count=1)[0]
    return JobArrival(time=time, seq=seq, tenant=tenant, job=job)


# ======================================================================
# Specs
# ======================================================================
class TestClusterSpec:
    def test_homogeneous_names_and_len(self):
        spec = ClusterSpec.homogeneous(4)
        assert len(spec) == 4
        assert spec.names == ["node-0", "node-1", "node-2", "node-3"]
        assert spec.index_of("node-2") == 2

    def test_every_node_owns_a_full_system(self):
        spec = ClusterSpec.homogeneous(2)
        for node in spec.nodes:
            assert node.system.kinds

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(nodes=())
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec.homogeneous(0)

    def test_rejects_duplicate_node_names(self):
        system = full_system()
        with pytest.raises(ValueError, match="unique"):
            ClusterSpec(
                nodes=(
                    NodeSpec("n", system),
                    NodeSpec("n", system),
                )
            )

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError, match="nope"):
            ClusterSpec.homogeneous(2).index_of("nope")


class TestInterconnect:
    def test_transfer_time_is_latency_plus_wire(self):
        ic = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert ic.transfer_time(0) == pytest.approx(1e-6)
        assert ic.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_replica_bytes_scales_fill(self):
        ic = InterconnectSpec(replica_factor=3.0)
        assert ic.replica_bytes(1000.0) == pytest.approx(3000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectSpec(latency_s=-1.0)
        with pytest.raises(ValueError):
            InterconnectSpec(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            InterconnectSpec(replica_factor=-0.5)
        with pytest.raises(ValueError):
            InterconnectSpec().transfer_time(-1.0)


class TestNodeFault:
    def test_compiles_to_one_fail_per_device(self):
        spec = ClusterSpec.homogeneous(2)
        fault = NodeFault(node="node-1", time=0.5, reason="power loss")
        events = node_fail_events(spec.nodes[1], fault)
        assert len(events) == len(spec.nodes[1].system.kinds)
        assert {e.device for e in events} == set(spec.nodes[1].system.kinds)
        for event in events:
            assert event.kind is FaultKind.FAIL
            assert event.time == 0.5
            assert event.reason == "power loss"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeFault(node="node-0", time=-1.0)


# ======================================================================
# Placement
# ======================================================================
class TestHomeNode:
    def test_stable_and_in_range(self):
        for tenant in ("interactive", "batch", "besteffort", "x"):
            home = home_node(tenant, 4)
            assert 0 <= home < 4
            assert home == home_node(tenant, 4)

    def test_salt_changes_mapping_eventually(self):
        homes = {home_node("tenant", 8, salt=s) for s in range(16)}
        assert len(homes) > 1

    def test_single_node_is_always_home(self):
        for tenant in ("a", "b", "c", "interactive"):
            assert home_node(tenant, 1) == 0


class TestLeastLoaded:
    def test_ties_break_to_lowest_index(self):
        policy = LeastLoadedPlacement()
        policy.reset(3)
        assert policy.choose(_arrival(0), [0, 1, 2], 1.0) == 0

    def test_deposits_steer_away(self):
        policy = LeastLoadedPlacement()
        policy.reset(2)
        assert policy.choose(_arrival(0), [0, 1], 1.0) == 0
        assert policy.choose(_arrival(1), [0, 1], 1.0) == 1

    def test_backlog_drains_with_time(self):
        policy = LeastLoadedPlacement()
        policy.reset(2)
        policy.choose(_arrival(0, time=0.0), [0, 1], 0.5)
        policy.choose(_arrival(1, time=0.0), [0, 1], 0.5)
        # Both backlogs drained to zero by t=1: tie goes to node 0.
        assert policy.choose(_arrival(2, time=1.0), [0, 1], 0.5) == 0


class TestHashPlacement:
    def test_tenant_sticks_to_home(self):
        policy = HashPlacement()
        policy.reset(4)
        chosen = {
            policy.choose(_arrival(i, tenant="t"), [0, 1, 2, 3], 1.0)
            for i in range(8)
        }
        assert chosen == {home_node("t", 4)}

    def test_dead_home_rehashes_deterministically(self):
        policy = HashPlacement()
        policy.reset(4)
        home = home_node("t", 4)
        alive = [i for i in range(4) if i != home]
        first = policy.choose(_arrival(0, tenant="t"), alive, 1.0)
        assert first != home
        assert policy.choose(_arrival(1, tenant="t"), alive, 1.0) == first


class TestRoundRobin:
    def test_cycles_live_nodes(self):
        policy = RoundRobinPlacement()
        policy.reset(3)
        picks = [policy.choose(_arrival(i), [0, 1, 2], 1.0) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestEstimates:
    def test_service_estimate_is_best_profile_time(self):
        job = make_jobs(seed=3, count=1)[0]
        expected = min(
            p.total_time(p.unit_arrays) for p in job.profiles.values()
        )
        assert estimate_service_time(job) == pytest.approx(expected)

    def test_fill_bytes_is_largest_profile_fill(self):
        job = make_jobs(seed=3, count=1)[0]
        expected = max(p.fill_bytes for p in job.profiles.values())
        assert job_fill_bytes(job) == pytest.approx(expected)


class TestRegistry:
    def test_placement_names(self):
        assert set(PLACEMENTS) == {"least-loaded", "hash", "round-robin"}
        for name, cls in PLACEMENTS.items():
            assert cls.name == name

    def test_runtime_rejects_unknown_names(self):
        spec = ClusterSpec.homogeneous(1)
        with pytest.raises(ValueError, match="scheduler"):
            ClusterRuntime(spec, scheduler="nope")
        with pytest.raises(ValueError, match="placement"):
            ClusterRuntime(spec, placement="nope")
