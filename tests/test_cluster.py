"""Cluster topology, interconnect pricing, and placement policies.

Unit-level guarantees of ``repro.cluster``'s static half: specs
validate and pickle-shaped data stays plain, the interconnect cost
model is the arithmetic it claims, node faults compile onto the
existing device-fault machinery, and every placement policy is
deterministic in arrival order.
"""

from __future__ import annotations

import pytest

from tests.prophelpers import make_jobs
from repro.cluster import (
    CONTENTION_MODES,
    PLACEMENTS,
    ClusterRuntime,
    ClusterSpec,
    FeedbackPlacement,
    HashPlacement,
    InterconnectSpec,
    LeastLoadedPlacement,
    NodeFault,
    NodeSpec,
    RoundRobinPlacement,
    home_node,
    node_capacity,
    node_fail_events,
    resolve_home,
)
from repro.cluster.placement import estimate_service_time, job_fill_bytes
from repro.core.scheduler.base import MLIMPSystem
from repro.faults.plan import FaultKind
from repro.harness.config import full_system
from repro.serving.autoscale import scale_system
from repro.sim.events import JobArrival


def _arrival(seq: int, tenant: str = "a", time: float = 0.0) -> JobArrival:
    job = make_jobs(seed=seq, count=1)[0]
    return JobArrival(time=time, seq=seq, tenant=tenant, job=job)


# ======================================================================
# Specs
# ======================================================================
class TestClusterSpec:
    def test_homogeneous_names_and_len(self):
        spec = ClusterSpec.homogeneous(4)
        assert len(spec) == 4
        assert spec.names == ["node-0", "node-1", "node-2", "node-3"]
        assert spec.index_of("node-2") == 2

    def test_every_node_owns_a_full_system(self):
        spec = ClusterSpec.homogeneous(2)
        for node in spec.nodes:
            assert node.system.kinds

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(nodes=())
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec.homogeneous(0)

    def test_rejects_duplicate_node_names(self):
        system = full_system()
        with pytest.raises(ValueError, match="unique"):
            ClusterSpec(
                nodes=(
                    NodeSpec("n", system),
                    NodeSpec("n", system),
                )
            )

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError, match="nope"):
            ClusterSpec.homogeneous(2).index_of("nope")

    def test_homogeneous_nodes_do_not_alias_one_system(self):
        # Regression: every NodeSpec used to receive the SAME
        # MLIMPSystem instance -- mutating one node's (plain-dict)
        # device set silently rewrote every node's.
        import dataclasses

        spec = ClusterSpec.homogeneous(2)
        a, b = spec.nodes[0].system, spec.nodes[1].system
        assert a is not b
        assert a.specs is not b.specs
        kind = next(iter(a.specs))
        before = b.specs[kind].num_arrays
        a.specs[kind] = dataclasses.replace(
            a.specs[kind], num_arrays=a.specs[kind].num_arrays * 2
        )
        assert b.specs[kind].num_arrays == before


class TestHeterogeneousSpec:
    def test_scales_apply_to_arrays_and_slots(self):
        base = full_system()
        spec = ClusterSpec.heterogeneous(
            {"node-0": 1.0, "node-1": 2.0, "node-2": 0.5}, system=base
        )
        assert spec.names == ["node-0", "node-1", "node-2"]
        assert [n.scale for n in spec.nodes] == [1.0, 2.0, 0.5]
        for kind, ref in base.specs.items():
            assert spec.nodes[1].system.specs[kind].num_arrays == max(
                1, round(ref.num_arrays * 2)
            )
            assert spec.nodes[2].system.specs[kind].num_arrays == max(
                1, round(ref.num_arrays * 0.5)
            )

    def test_accepts_ordered_pairs(self):
        spec = ClusterSpec.heterogeneous([("big", 2.0), ("small", 0.5)])
        assert spec.names == ["big", "small"]

    def test_scale_one_nodes_still_independent(self):
        base = full_system()
        spec = ClusterSpec.heterogeneous(
            {"node-0": 1.0, "node-1": 1.0}, system=base
        )
        assert spec.nodes[0].system is not base
        assert spec.nodes[0].system is not spec.nodes[1].system
        assert spec.nodes[0].system.specs is not spec.nodes[1].system.specs

    def test_rejects_empty_and_bad_scales(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec.heterogeneous({})
        with pytest.raises(ValueError, match="positive"):
            ClusterSpec.heterogeneous({"node-0": 0.0})
        with pytest.raises(ValueError, match="positive"):
            NodeSpec("n", full_system(), scale=-1.0)


class TestNodeCapacity:
    def test_tracks_scale_linearly(self):
        base = full_system()
        assert node_capacity(scale_system(base, 2)) == pytest.approx(
            2 * node_capacity(base)
        )

    def test_positive_for_real_systems(self):
        assert node_capacity(full_system()) > 0


class TestInterconnect:
    def test_transfer_time_is_latency_plus_wire(self):
        ic = InterconnectSpec(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert ic.transfer_time(0) == pytest.approx(1e-6)
        assert ic.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_replica_bytes_scales_fill(self):
        ic = InterconnectSpec(replica_factor=3.0)
        assert ic.replica_bytes(1000.0) == pytest.approx(3000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectSpec(latency_s=-1.0)
        with pytest.raises(ValueError):
            InterconnectSpec(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            InterconnectSpec(replica_factor=-0.5)
        with pytest.raises(ValueError):
            InterconnectSpec().transfer_time(-1.0)


class TestNodeFault:
    def test_compiles_to_one_fail_per_device(self):
        spec = ClusterSpec.homogeneous(2)
        fault = NodeFault(node="node-1", time=0.5, reason="power loss")
        events = node_fail_events(spec.nodes[1], fault)
        assert len(events) == len(spec.nodes[1].system.kinds)
        assert {e.device for e in events} == set(spec.nodes[1].system.kinds)
        for event in events:
            assert event.kind is FaultKind.FAIL
            assert event.time == 0.5
            assert event.reason == "power loss"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeFault(node="node-0", time=-1.0)


# ======================================================================
# Placement
# ======================================================================
class TestHomeNode:
    def test_stable_and_in_range(self):
        for tenant in ("interactive", "batch", "besteffort", "x"):
            home = home_node(tenant, 4)
            assert 0 <= home < 4
            assert home == home_node(tenant, 4)

    def test_salt_changes_mapping_eventually(self):
        homes = {home_node("tenant", 8, salt=s) for s in range(16)}
        assert len(homes) > 1

    def test_single_node_is_always_home(self):
        for tenant in ("a", "b", "c", "interactive"):
            assert home_node(tenant, 1) == 0


class TestResolveHome:
    def test_all_alive_is_plain_home(self):
        for tenant in ("a", "b", "interactive"):
            assert resolve_home(tenant, 4, {0, 1, 2, 3}) == home_node(
                tenant, 4
            )

    def test_dead_home_resolves_to_hash_rehash(self):
        # The effective home must be the exact node HashPlacement
        # lands on once the original home is dead.
        policy = HashPlacement()
        policy.reset(4)
        home = home_node("t", 4)
        alive = [i for i in range(4) if i != home]
        rehash = policy.choose(_arrival(0, tenant="t"), alive, 1.0)
        assert resolve_home("t", 4, set(alive)) == rehash

    def test_no_live_node_returns_none(self):
        assert resolve_home("t", 4, set()) is None


class TestCapacities:
    def test_reset_normalises_to_fleet_max(self):
        policy = LeastLoadedPlacement()
        policy.reset(3, [2.0, 4.0, 1.0])
        assert policy.capacities == [0.5, 1.0, 0.25]

    def test_homogeneous_capacities_are_exactly_one(self):
        policy = LeastLoadedPlacement()
        policy.reset(3, [7.5, 7.5, 7.5])
        assert policy.capacities == [1.0, 1.0, 1.0]

    def test_reset_validates(self):
        policy = LeastLoadedPlacement()
        with pytest.raises(ValueError, match="one capacity per node"):
            policy.reset(3, [1.0, 2.0])
        with pytest.raises(ValueError, match="positive"):
            policy.reset(2, [0.0, 0.0])

    def test_big_node_attracts_more_load(self):
        policy = LeastLoadedPlacement()
        policy.reset(2, [1.0, 2.0])
        picks = [
            policy.choose(_arrival(i, time=0.0), [0, 1], 1.0)
            for i in range(6)
        ]
        # The 2x node drains twice as fast, so its expected wait grows
        # half as quickly: it takes two jobs for every one on node 0.
        assert picks.count(1) > picks.count(0)


class TestLeastLoaded:
    def test_ties_break_to_lowest_index(self):
        policy = LeastLoadedPlacement()
        policy.reset(3)
        assert policy.choose(_arrival(0), [0, 1, 2], 1.0) == 0

    def test_deposits_steer_away(self):
        policy = LeastLoadedPlacement()
        policy.reset(2)
        assert policy.choose(_arrival(0), [0, 1], 1.0) == 0
        assert policy.choose(_arrival(1), [0, 1], 1.0) == 1

    def test_backlog_drains_with_time(self):
        policy = LeastLoadedPlacement()
        policy.reset(2)
        policy.choose(_arrival(0, time=0.0), [0, 1], 0.5)
        policy.choose(_arrival(1, time=0.0), [0, 1], 0.5)
        # Both backlogs drained to zero by t=1: tie goes to node 0.
        assert policy.choose(_arrival(2, time=1.0), [0, 1], 0.5) == 0


class TestHashPlacement:
    def test_tenant_sticks_to_home(self):
        policy = HashPlacement()
        policy.reset(4)
        chosen = {
            policy.choose(_arrival(i, tenant="t"), [0, 1, 2, 3], 1.0)
            for i in range(8)
        }
        assert chosen == {home_node("t", 4)}

    def test_dead_home_rehashes_deterministically(self):
        policy = HashPlacement()
        policy.reset(4)
        home = home_node("t", 4)
        alive = [i for i in range(4) if i != home]
        first = policy.choose(_arrival(0, tenant="t"), alive, 1.0)
        assert first != home
        assert policy.choose(_arrival(1, tenant="t"), alive, 1.0) == first


class TestRoundRobin:
    def test_cycles_live_nodes(self):
        policy = RoundRobinPlacement()
        policy.reset(3)
        picks = [policy.choose(_arrival(i), [0, 1, 2], 1.0) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestFeedbackPlacement:
    def _sections(self, good: float, bad: float) -> list[dict]:
        return [
            {"offered": 100, "shed": 0, "slo_attainment": good,
             "utilisation": {"sram": 0.2}},
            {"offered": 100, "shed": 50, "slo_attainment": bad,
             "utilisation": {"sram": 0.9}},
        ]

    def test_fresh_policy_matches_least_loaded(self):
        feedback = FeedbackPlacement()
        baseline = LeastLoadedPlacement()
        feedback.reset(3)
        baseline.reset(3)
        for i in range(12):
            arrival = _arrival(i, tenant=f"t{i % 4}", time=i * 1e-4)
            assert feedback.choose(arrival, [0, 1, 2], 0.5) == (
                baseline.choose(arrival, [0, 1, 2], 0.5)
            )

    def test_observe_reports_downweights_the_laggard(self):
        policy = FeedbackPlacement()
        policy.reset(2)
        policy.observe_reports(self._sections(good=1.0, bad=0.2))
        weights = policy.weights
        assert weights[0] > 1.0 > weights[1]

    def test_weights_bias_choice(self):
        policy = FeedbackPlacement(weights=[1.0, 2.0])
        policy.reset(2)
        # The upweighted node's effective wait grows half as fast, so
        # it absorbs most of a burst the uniform policy would split.
        picks = [policy.choose(_arrival(i), [0, 1], 1.0) for i in range(5)]
        assert picks.count(1) > picks.count(0)

    def test_weights_survive_reset_and_are_plain_floats(self):
        policy = FeedbackPlacement()
        policy.reset(2)
        policy.observe_reports(self._sections(good=1.0, bad=0.2))
        learned = policy.weights
        policy.reset(2)  # new window, same fleet
        assert policy.weights == learned
        policy.reset(3)  # different fleet size: start over
        assert policy.weights == [1.0, 1.0, 1.0]
        assert all(isinstance(w, float) for w in learned)

    def test_weights_clamped(self):
        policy = FeedbackPlacement(gain=100.0)
        policy.reset(2)
        for _ in range(5):
            policy.observe_reports(self._sections(good=1.0, bad=0.0))
        assert policy.weights[0] <= policy.max_weight
        assert policy.weights[1] >= policy.min_weight

    def test_empty_windows_leave_weights_alone(self):
        policy = FeedbackPlacement()
        policy.reset(2)
        policy.observe_reports([{}, {"offered": 0}])
        assert policy.weights == [1.0, 1.0]

    def test_observe_validates_section_count(self):
        policy = FeedbackPlacement()
        policy.reset(2)
        with pytest.raises(ValueError, match="one section per node"):
            policy.observe_reports([{}])
        with pytest.raises(ValueError, match="reset"):
            FeedbackPlacement().observe_reports([{}])

    def test_constructor_validates(self):
        with pytest.raises(ValueError, match="gain"):
            FeedbackPlacement(gain=-1.0)
        with pytest.raises(ValueError, match="min_weight"):
            FeedbackPlacement(min_weight=0.0)
        with pytest.raises(ValueError, match="min_weight"):
            FeedbackPlacement(min_weight=0.5, max_weight=0.75)


class TestEstimates:
    def test_service_estimate_is_best_profile_time(self):
        job = make_jobs(seed=3, count=1)[0]
        expected = min(
            p.total_time(p.unit_arrays) for p in job.profiles.values()
        )
        assert estimate_service_time(job) == pytest.approx(expected)

    def test_fill_bytes_is_largest_profile_fill(self):
        job = make_jobs(seed=3, count=1)[0]
        expected = max(p.fill_bytes for p in job.profiles.values())
        assert job_fill_bytes(job) == pytest.approx(expected)

    def test_capacity_aware_estimate_is_slower_without_best_kind(self):
        job = make_jobs(seed=3, count=1)[0]
        reference = estimate_service_time(job)
        times = {
            k: p.total_time(p.unit_arrays) for k, p in job.profiles.items()
        }
        fastest = min(times, key=times.get)
        # A node missing the job's fastest device kind must honestly
        # estimate the next-best option.
        full = full_system()
        partial = MLIMPSystem(
            specs={k: s for k, s in full.specs.items() if k != fastest}
        )
        estimate = estimate_service_time(job, partial)
        assert estimate >= reference
        if len(times) > 1:
            expected = min(t for k, t in times.items() if k != fastest)
            assert estimate == pytest.approx(expected)

    def test_estimate_matches_reference_on_full_capacity(self):
        job = make_jobs(seed=3, count=1)[0]
        assert estimate_service_time(job, full_system()) == (
            estimate_service_time(job)
        )

    def test_estimate_falls_back_when_nothing_is_runnable(self):
        import dataclasses

        job = make_jobs(seed=3, count=1)[0]
        assert all(p.unit_arrays > 1 for p in job.profiles.values())
        tiny = MLIMPSystem(
            specs={
                k: dataclasses.replace(s, num_arrays=1)
                for k, s in full_system().specs.items()
            }
        )
        assert estimate_service_time(job, tiny) == estimate_service_time(job)


class TestContentionMode:
    def test_modes_and_default(self):
        assert CONTENTION_MODES == ("none", "shared")
        assert InterconnectSpec().contention == "none"
        assert InterconnectSpec(contention="shared").contention == "shared"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="contention"):
            InterconnectSpec(contention="fluid")


class TestRegistry:
    def test_placement_names(self):
        assert set(PLACEMENTS) == {
            "least-loaded",
            "feedback",
            "hash",
            "round-robin",
        }
        for name, cls in PLACEMENTS.items():
            assert cls.name == name

    def test_runtime_rejects_unknown_names(self):
        spec = ClusterSpec.homogeneous(1)
        with pytest.raises(ValueError, match="scheduler"):
            ClusterRuntime(spec, scheduler="nope")
        with pytest.raises(ValueError, match="placement"):
            ClusterRuntime(spec, placement="nope")
