"""Documentation stays truthful: links resolve, CLI docs complete.

Docs drift silently -- a renamed module or dropped flag leaves the
README pointing at nothing.  These tests pin the documentation to the
code: every path reference in the pinned markdown set must resolve
(`tools/check_links.py`), the README must document every `python -m
repro` subcommand, and the serving doctests must run (the CI `docs`
job runs the same checks).
"""

from __future__ import annotations

import doctest
import importlib.util
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLinkChecker:
    def test_all_doc_references_resolve(self):
        check_links = _load_check_links()
        assert check_links.check_all() == []

    def test_pinned_doc_set_covers_subsystem_walkthroughs(self):
        """The guided walkthroughs stay in the checked set."""
        check_links = _load_check_links()
        for doc in (
            "docs/ARCHITECTURE.md",
            "docs/SCHEDULERS.md",
            "docs/CLUSTER.md",
            "docs/SERVING.md",
        ):
            assert doc in check_links.DOC_FILES

    def test_checker_is_not_vacuous(self, tmp_path):
        """A doc with a broken link and a broken path ref fails twice."""
        check_links = _load_check_links()
        bad = tmp_path / "bad.md"
        bad.write_text(
            "See [the guide](no/such/guide.md) and `core/nosuch.py`.\n"
        )
        failures = check_links.check_file(bad)
        assert len(failures) == 2
        assert any("no/such/guide.md" in f for f in failures)
        assert any("core/nosuch.py" in f for f in failures)

    def test_checker_skips_code_blocks_and_placeholders(self, tmp_path):
        check_links = _load_check_links()
        doc = tmp_path / "ok.md"
        doc.write_text(
            "```bash\ncat fake/path.py\n```\n"
            "`BENCH_<date>.json` and `a/*.py` are placeholders.\n"
        )
        assert check_links.check_file(doc) == []


class TestCLIDocs:
    def _subcommands(self) -> set[str]:
        source = (REPO_ROOT / "src" / "repro" / "__main__.py").read_text()
        return set(re.findall(r"add_parser\(\s*\"(\w+)\"", source))

    def test_every_subcommand_is_documented_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        subcommands = self._subcommands()
        assert subcommands >= {"list", "specs", "run", "trace", "bench",
                               "serve", "cluster"}
        table = readme.split("## Command line")[1].split("##")[0]
        for name in subcommands:
            assert f"`{name}`" in table, f"README table misses '{name}'"
            assert f"python -m repro {name}" in readme

    def test_readme_serve_flags_exist(self):
        """Flags the README shows for `serve` must exist in argparse."""
        source = (REPO_ROOT / "src" / "repro" / "__main__.py").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        serve_section = readme.split("## Serving")[1].split("\n## ")[0]
        for flag in set(re.findall(r"(--[a-z-]+)", serve_section)):
            assert f'"{flag}"' in source, f"README shows unknown {flag}"

    def test_readme_cluster_flags_exist(self):
        """Flags the README shows for `cluster` must exist in argparse."""
        source = (REPO_ROOT / "src" / "repro" / "__main__.py").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        cluster_section = readme.split("## Cluster")[1].split("\n## ")[0]
        flags = set(re.findall(r"(--[a-z-]+)", cluster_section))
        assert flags, "README Cluster section shows no flags"
        for flag in flags:
            assert f'"{flag}"' in source, f"README shows unknown {flag}"

    def test_cluster_doc_covers_contention_features(self):
        """docs/CLUSTER.md documents the contended-cluster surface, and
        everything it names is real: the flags exist in argparse and
        the feedback policy is registered."""
        from repro.cluster import PLACEMENTS

        source = (REPO_ROOT / "src" / "repro" / "__main__.py").read_text()
        doc = (REPO_ROOT / "docs" / "CLUSTER.md").read_text()
        for flag in ("--node-spec", "--contention", "--placement"):
            assert flag in doc, f"CLUSTER.md misses {flag}"
            assert f'"{flag}"' in source, f"CLUSTER.md shows unknown {flag}"
        assert "feedback" in doc
        assert "feedback" in PLACEMENTS
        for topic in ("contention", "heterogeneous", "migration"):
            assert topic in doc.lower(), f"CLUSTER.md misses {topic}"


class TestServingDoctests:
    def test_serving_doctests_pass(self):
        import repro.serving.workload as workload

        results = doctest.testmod(workload)
        assert results.attempted > 0, "workload doctest went missing"
        assert results.failed == 0
