"""Trace-replay horizon benchmark: determinism, resume, autoscaling.

The replay harness's load-bearing guarantees:

* **Window determinism** -- the same :class:`ReplayConfig` produces a
  byte-identical payload, single-node and cluster-mode alike.
* **Exact resume** -- a replay halted at any window and resumed from
  its checkpoint file matches the uninterrupted run byte for byte.
* **Feedback that moves the needle** -- the autoscaler grows the pool
  under sustained overload (and shrinks it when idle), and predictive
  admission beats the shed-only baseline's SLO attainment on the
  overloaded trace.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.harness.config import gnn_system
from repro.harness.replay import (
    REPLAY_EXPERIMENTS,
    ReplayConfig,
    load_checkpoint,
    resume_replay,
    run_replay,
)
from repro.serving import AutoscalePolicy, Autoscaler, scale_system

#: Small but genuinely overloaded: ~2x the scale-1 gnn drain rate.
SMALL = ReplayConfig(
    seed=20,
    rate=2e6,
    windows=3,
    window_s=0.001,
    slo_s=100e-6,
    queue_limit=32,
    max_backlog=16,
)


def payload_json(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# ======================================================================
# Determinism and resume
# ======================================================================
def test_replay_deterministic():
    cfg = dataclasses.replace(SMALL, admission="predictive", autoscale=True)
    assert payload_json(run_replay(cfg)) == payload_json(run_replay(cfg))


def test_checkpoint_resume_byte_identical(tmp_path):
    cfg = dataclasses.replace(SMALL, admission="predictive", autoscale=True)
    straight = run_replay(cfg)
    ck = tmp_path / "ck.json"
    assert run_replay(cfg, checkpoint_path=ck, halt_after=1) is None
    state = load_checkpoint(ck)
    assert state["next_window"] == 1
    assert len(state["windows"]) == 1
    resumed = resume_replay(ck)
    assert payload_json(resumed) == payload_json(straight)


def test_resume_can_halt_again(tmp_path):
    cfg = dataclasses.replace(SMALL, admission="predictive", autoscale=True)
    straight = run_replay(cfg)
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert run_replay(cfg, checkpoint_path=first, halt_after=1) is None
    assert (
        resume_replay(first, checkpoint_path=second, halt_after=2) is None
    )
    assert payload_json(resume_replay(second)) == payload_json(straight)


def test_checkpoint_validation(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="not a replay checkpoint"):
        load_checkpoint(bogus)
    stale = tmp_path / "stale.json"
    stale.write_text(
        json.dumps({"format": "mlimp-replay-checkpoint", "version": 99})
    )
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(stale)
    with pytest.raises(ValueError, match="checkpoint_path"):
        run_replay(SMALL, halt_after=1)


def test_config_validation_and_roundtrip():
    cfg = dataclasses.replace(SMALL, admission="predictive", nodes=2)
    assert ReplayConfig.from_dict(cfg.as_dict()) == cfg
    assert cfg.horizon_s == pytest.approx(0.003)
    for bad in (
        {"windows": 0},
        {"window_s": 0.0},
        {"tenants": 0},
        {"slo_s": 0.0},
        {"nodes": -1},
        {"system": "bogus"},
    ):
        with pytest.raises(ValueError):
            dataclasses.replace(SMALL, **bad)


# ======================================================================
# Autoscaler behaviour
# ======================================================================
def test_replay_scales_up_under_overload():
    cfg = dataclasses.replace(
        SMALL, admission="predictive", autoscale=True, max_scale=3
    )
    payload = run_replay(cfg)
    scales = [row["scale"] for row in payload["windows"]]
    assert scales[0] == 1
    assert payload["totals"]["peak_scale"] > 1
    assert payload["autoscale_events"]
    # More capacity must not lose jobs: completions rise window over
    # window as the pool grows (same arrival volume each window).
    by_scale = {row["scale"]: row["completed"] for row in payload["windows"]}
    assert by_scale[max(by_scale)] > by_scale[min(by_scale)]


def test_autoscaler_scales_down_when_idle():
    scaler = Autoscaler(policy=AutoscalePolicy(max_scale=4), scale=3)
    scaler.observe(0, utilisation=0.1, queue_depth=0.0, shed_rate=0.0)
    assert scaler.scale == 2
    # ...but never through the floor.
    scaler.observe(1, utilisation=0.1, queue_depth=0.0, shed_rate=0.0)
    scaler.observe(2, utilisation=0.1, queue_depth=0.0, shed_rate=0.0)
    assert scaler.scale == 1
    # Holding steady emits no event.
    before = len(scaler.events)
    scaler.observe(3, utilisation=0.5, queue_depth=1.0, shed_rate=0.0)
    assert scaler.scale == 1 and len(scaler.events) == before
    # State round-trips exactly.
    rebuilt = Autoscaler.from_state(scaler.policy, scaler.state_dict())
    assert rebuilt.state_dict() == scaler.state_dict()


def test_autoscaler_validation():
    with pytest.raises(ValueError, match="min_scale"):
        AutoscalePolicy(min_scale=0)
    with pytest.raises(ValueError, match="max_scale"):
        AutoscalePolicy(min_scale=3, max_scale=2)
    with pytest.raises(ValueError, match="step"):
        AutoscalePolicy(step=0)
    with pytest.raises(ValueError, match="utilisation"):
        AutoscalePolicy(down_utilisation=0.9, up_utilisation=0.7)
    with pytest.raises(ValueError, match="scale"):
        Autoscaler(policy=AutoscalePolicy(max_scale=2), scale=5)


def test_scale_system_multiplies_arrays_and_slots():
    base = gnn_system()
    assert scale_system(base, 1) is base
    doubled = scale_system(base, 2)
    for kind, spec in base.specs.items():
        assert doubled.specs[kind].num_arrays == 2 * spec.num_arrays
        assert (
            doubled.specs[kind].max_outstanding_jobs
            == 2 * spec.max_outstanding_jobs
        )
        # Device physics stay at spec.
        assert doubled.specs[kind].clock_mhz == spec.clock_mhz
    with pytest.raises(ValueError, match="scale"):
        scale_system(base, 0)


# ======================================================================
# Policy deltas and cluster mode
# ======================================================================
def test_predictive_replay_beats_shed_only():
    baseline = run_replay(SMALL)
    gated = run_replay(dataclasses.replace(SMALL, admission="predictive"))
    assert gated["totals"]["shed_predicted"] > 0
    assert baseline["totals"]["shed_predicted"] == 0
    assert (
        gated["totals"]["slo_attainment"]
        > baseline["totals"]["slo_attainment"]
    )
    # Both arms saw the identical offered arrival stream.
    assert gated["totals"]["offered"] == baseline["totals"]["offered"]


def test_cluster_replay_deterministic_and_scaled():
    cfg = dataclasses.replace(
        SMALL,
        windows=2,
        nodes=2,
        admission="predictive",
        autoscale=True,
    )
    a, b = run_replay(cfg), run_replay(cfg)
    assert payload_json(a) == payload_json(b)
    # Cluster windows report fleet utilisation but no queue gauge.
    for row in a["windows"]:
        assert row["queue_depth_mean"] == 0.0
        assert row["utilisation_max"] > 0.0


def test_feedback_cluster_replay_deterministic_with_weights():
    cfg = dataclasses.replace(
        SMALL, windows=3, nodes=2, placement="feedback"
    )
    a, b = run_replay(cfg), run_replay(cfg)
    assert payload_json(a) == payload_json(b)
    weights = a["placement_weights"]
    assert len(weights) == 2
    assert all(w > 0 for w in weights)
    # A non-feedback cluster replay carries no weights key at all.
    plain = run_replay(dataclasses.replace(SMALL, windows=2, nodes=2))
    assert "placement_weights" not in plain


def test_feedback_replay_resume_byte_identical(tmp_path):
    cfg = dataclasses.replace(
        SMALL, windows=3, nodes=2, placement="feedback"
    )
    straight = run_replay(cfg)
    ck = tmp_path / "ck.json"
    assert run_replay(cfg, checkpoint_path=ck, halt_after=1) is None
    state = load_checkpoint(ck)
    # The learned weights ride the checkpoint so the resumed policy
    # picks up mid-education, not from scratch.
    assert len(state["placement_weights"]) == 2
    resumed = resume_replay(ck)
    assert payload_json(resumed) == payload_json(straight)


def test_replay_horizon_registered():
    from repro.harness.experiments import full_registry

    assert "replay-horizon" in full_registry()
    assert "replay-horizon" in REPLAY_EXPERIMENTS
