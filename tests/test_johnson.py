"""Johnson's rule: the paper's cited RCPSP special case with a known
optimum (two-machine flow shop = fill pipe then device)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Dispatcher,
    Job,
    JobPerfProfile,
    MLIMPSystem,
    OraclePredictor,
)
from repro.core.scheduler import (
    JohnsonScheduler,
    LJFScheduler,
    flow_shop_makespan,
    johnson_order,
)
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec


class TestRule:
    def test_textbook_example(self):
        # Classic instance: optimal order is 2, 4, 3, 0, 1 (0-based).
        stage_times = [(5, 2), (1, 6), (9, 7), (3, 8), (10, 4)]
        order = johnson_order(stage_times)
        # Jobs with a < b first (ascending a): 1 (a=1), 3 (a=3);
        # then a >= b descending b: 2 (b=7), 4 (b=4), 0 (b=2).
        assert order == [1, 3, 2, 4, 0]

    def test_makespan_recurrence(self):
        stage_times = [(2, 3), (4, 1)]
        assert flow_shop_makespan(stage_times, [0, 1]) == 7  # 2,5 | 6,7
        assert flow_shop_makespan(stage_times, [1, 0]) == 9  # 4,5 | 6,9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            johnson_order([(-1, 2)])
        with pytest.raises(ValueError):
            flow_shop_makespan([(1, 2), (3, 4)], [0, 0])

    @settings(max_examples=60, deadline=None)
    @given(
        stage_times=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),
                st.floats(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_optimality_against_brute_force(self, stage_times):
        """Johnson's sequence achieves the minimum makespan over all
        permutations -- the 'golden solution' the paper refers to."""
        best = min(
            flow_shop_makespan(stage_times, list(perm))
            for perm in itertools.permutations(range(len(stage_times)))
        )
        johnson = flow_shop_makespan(stage_times, johnson_order(stage_times))
        assert johnson == pytest.approx(best)


def one_memory_system(slots: int = 1) -> MLIMPSystem:
    spec = MemorySpec(
        kind=MemoryKind.SRAM,
        name="flowshop",
        geometry=ArrayGeometry(32, 32),
        num_arrays=64,
        alus_per_array=32,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=2,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=76.8,  # matches the shared-pipe rate
        copy_bandwidth_gbps=76.8,
        max_outstanding_jobs=slots,
    )
    return MLIMPSystem(specs={MemoryKind.SRAM: spec})


def flow_job(i: int, fill_bytes: float, compute: float) -> Job:
    return Job(
        job_id=f"f{i}",
        kernel="app",
        profiles={
            MemoryKind.SRAM: JobPerfProfile(
                unit_arrays=64,  # one job owns the device: pure sequencing
                t_load=fill_bytes / 76.8e9,
                t_replica_unit=0.0,
                t_compute_unit=compute,
                waves_unit=1,
                fill_bytes=fill_bytes,
            )
        },
    )


class TestScheduler:
    def test_requires_single_memory(self):
        from repro.harness import gnn_system

        with pytest.raises(ValueError):
            JohnsonScheduler(OraclePredictor()).plan([], gnn_system())

    def test_all_jobs_complete_in_johnson_order(self):
        system = one_memory_system()
        jobs = [
            flow_job(0, 5e5, 2e-6),
            flow_job(1, 1e5, 6e-6),
            flow_job(2, 9e5, 7e-6),
        ]
        result = Dispatcher(system, dispatch_overhead_s=0.0).run(
            JohnsonScheduler(OraclePredictor()).plan(jobs, system)
        )
        assert len(result.records) == 3
        starts = {r.job_id: r.dispatched_at for r in result.records.values()}
        # Short-fill job f1 leads (a < b, smallest a).
        assert starts["f1"] < starts["f0"]
        assert starts["f1"] < starts["f2"]

    def test_beats_or_matches_ljf_on_flow_shop(self):
        """On the one-slot special case, Johnson sequencing never loses
        to the LJF baseline."""
        system = one_memory_system()
        dispatcher = Dispatcher(system, dispatch_overhead_s=0.0)
        import numpy as np

        rng = np.random.default_rng(11)
        for trial in range(5):
            jobs = [
                flow_job(
                    i,
                    float(rng.uniform(1e4, 1e6)),
                    float(rng.uniform(1e-6, 2e-5)),
                )
                for i in range(8)
            ]
            johnson = dispatcher.run(
                JohnsonScheduler(OraclePredictor()).plan(jobs, system)
            ).makespan
            ljf = dispatcher.run(
                LJFScheduler(OraclePredictor()).plan(jobs, system)
            ).makespan
            assert johnson <= ljf * 1.001
