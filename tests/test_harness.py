"""Harness: configuration, reporting, workloads, integration shapes."""

import pytest

from repro.core import (
    AdaptiveScheduler,
    GlobalScheduler,
    LJFScheduler,
    OraclePredictor,
    oracle_makespan,
)
from repro.harness import (
    DEVICE_SCALE,
    Report,
    build_workload,
    full_system,
    gnn_system,
    run_workload,
    scaled_specs,
)
from repro.memories import DEFAULT_SPECS, MemoryKind


class TestConfig:
    def test_scaled_specs_divide_arrays(self):
        specs = scaled_specs(scale=64)
        for kind, spec in specs.items():
            assert spec.num_arrays == max(8, DEFAULT_SPECS[kind].num_arrays // 64)
            # Everything else is untouched.
            assert spec.clock_mhz == DEFAULT_SPECS[kind].clock_mhz
            assert spec.geometry == DEFAULT_SPECS[kind].geometry

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scaled_specs(scale=0)

    def test_system_builders(self):
        assert set(gnn_system().kinds) == set(MemoryKind)
        sub = full_system([MemoryKind.SRAM])
        assert sub.kinds == [MemoryKind.SRAM]
        assert sub.arrays(MemoryKind.SRAM) == DEFAULT_SPECS[MemoryKind.SRAM].num_arrays


class TestReport:
    def test_rows_and_lookup(self):
        report = Report(title="t", columns=["a", "b"])
        report.add_row("x", 1.5)
        report.add_row("y", 2.0)
        assert report.column("b") == [1.5, 2.0]
        assert report.row("x") == ("x", 1.5)
        assert report.as_dict()["y"]["b"] == 2.0
        with pytest.raises(KeyError):
            report.row("z")

    def test_row_arity_checked(self):
        report = Report(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            report.add_row("only-one")

    def test_str_contains_rows_and_notes(self):
        report = Report(title="Demo", columns=["k", "v"])
        report.add_row("alpha", 3.14159)
        report.note("shape holds")
        text = str(report)
        assert "Demo" in text and "alpha" in text and "shape holds" in text


@pytest.fixture(scope="module")
def workload():
    return build_workload("collab", num_batches=2, batch_size=24, seed=9)


class TestWorkload:
    def test_structure(self, workload):
        assert len(workload.jobs_per_batch) == 2
        # 24 subgraphs x 3 layers x 3 kernels.
        assert len(workload.jobs_per_batch[0]) == 24 * 9
        assert workload.num_queries == 48
        assert len(workload.training_jobs) >= 24

    def test_spmm_selector(self, workload):
        spmm = workload.spmm_jobs()
        assert all(job.kernel == "spmm" for job in spmm)
        assert len(spmm) == 24 * 3 * 2

    def test_baselines_slower_than_nothing(self, workload):
        assert workload.gpu_time() > 0
        assert workload.cpu_time() > workload.gpu_time()

    def test_run_workload_all_jobs_complete(self, workload):
        summary = run_workload(workload, AdaptiveScheduler(OraclePredictor()))
        assert summary.total_makespan > 0
        total = sum(len(r.records) for r in summary.results)
        assert total == len(workload.all_jobs)

    def test_kernel_busy_accounting(self, workload):
        summary = run_workload(workload, GlobalScheduler(OraclePredictor()))
        busy = summary.kernel_busy_seconds(workload.jobs_per_batch)
        assert set(busy) == {"spmm", "gemm", "vadd"}
        assert busy["spmm"] > busy["vadd"]

    def test_predictor_trains_on_workload(self, workload):
        predictor = workload.train_predictor(epochs=60)
        job = workload.spmm_jobs()[0]
        est = predictor.estimate(job, MemoryKind.SRAM)
        truth = job.profile(MemoryKind.SRAM).t_compute_unit
        assert est.t_compute_unit == pytest.approx(truth, rel=2.0)


class TestHeadlineShapes:
    """The paper's core claims, asserted at test scale."""

    def test_scheduling_beats_naive_and_tracks_oracle(self, workload):
        jobs = workload.all_jobs
        oracle = oracle_makespan(jobs, workload.system)
        naive = run_workload(
            workload, LJFScheduler(OraclePredictor()), jobs_per_batch=[jobs]
        ).total_makespan
        mlimp = run_workload(
            workload, GlobalScheduler(OraclePredictor()), jobs_per_batch=[jobs]
        ).total_makespan
        assert oracle <= mlimp <= naive
        assert oracle / mlimp > 0.5  # a sophisticated scheduler is close
        assert oracle / mlimp > oracle / naive  # and beats the naive one

    def test_mlimp_beats_gpu_baseline(self, workload):
        summary = run_workload(workload, GlobalScheduler(OraclePredictor()))
        mlimp = summary.total_makespan + workload.host_others_seconds()
        gpu = workload.gpu_time() + workload.host_others_seconds()
        assert gpu / mlimp > 2.0  # paper: 4.8x geomean
