"""Shared-bandwidth main-memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DDR4Config, SharedBandwidthPipe, Simulator


def make_pipe(bw_gbps=10.0, latency_ns=0.0):
    sim = Simulator()
    config = DDR4Config(
        channels=1, channel_bandwidth_gbps=bw_gbps, access_latency_ns=latency_ns
    )
    return sim, SharedBandwidthPipe(sim, config)


class TestConfig:
    def test_default_matches_evaluated_system(self):
        config = DDR4Config()
        assert config.channels == 4
        assert config.total_bandwidth_gbps == pytest.approx(76.8)

    def test_transfer_energy(self):
        config = DDR4Config(energy_pj_per_bit=10.0)
        assert config.transfer_energy_j(1) == pytest.approx(80e-12)


class TestSingleTransfer:
    def test_duration_is_bytes_over_bandwidth(self):
        sim, pipe = make_pipe(bw_gbps=10.0)
        done = []
        pipe.submit(10e9, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0)]

    def test_access_latency_added(self):
        sim, pipe = make_pipe(bw_gbps=10.0, latency_ns=100.0)
        done = []
        pipe.submit(10e9, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0 + 100e-9)]

    def test_zero_byte_transfer_costs_latency_only(self):
        sim, pipe = make_pipe(bw_gbps=10.0, latency_ns=50.0)
        done = []
        pipe.submit(0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(50e-9)]

    def test_negative_bytes_rejected(self):
        _, pipe = make_pipe()
        with pytest.raises(ValueError):
            pipe.submit(-1, lambda: None)


class TestContention:
    def test_two_equal_transfers_take_twice_as_long(self):
        sim, pipe = make_pipe(bw_gbps=10.0)
        done = []
        pipe.submit(5e9, lambda: done.append(sim.now))
        pipe.submit(5e9, lambda: done.append(sim.now))
        sim.run()
        # 10 GB at 10 GB/s shared -> both finish at t=1.
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_short_transfer_finishes_first_then_long_speeds_up(self):
        sim, pipe = make_pipe(bw_gbps=10.0)
        done = {}
        pipe.submit(2e9, lambda: done.setdefault("short", sim.now))
        pipe.submit(12e9, lambda: done.setdefault("long", sim.now))
        sim.run()
        # Shared until short drains: each gets 5 GB/s, short done at 0.4 s.
        assert done["short"] == pytest.approx(0.4)
        # Long has 12 - 0.4*5 = 10 GB left, alone at 10 GB/s -> 1.4 s.
        assert done["long"] == pytest.approx(1.4)

    def test_late_joiner_slows_existing_transfer(self):
        sim, pipe = make_pipe(bw_gbps=10.0)
        done = {}
        pipe.submit(10e9, lambda: done.setdefault("first", sim.now))
        sim.after(0.5, lambda: pipe.submit(5e9, lambda: done.setdefault("second", sim.now)))
        sim.run()
        # First does 5 GB alone by 0.5; then both share: first's 5 GB
        # and second's 5 GB drain at 5 GB/s each -> both at 1.5 s.
        assert done["first"] == pytest.approx(1.5)
        assert done["second"] == pytest.approx(1.5)

    def test_total_bytes_tracked_for_energy(self):
        sim, pipe = make_pipe()
        pipe.submit(1e6, lambda: None)
        pipe.submit(2e6, lambda: None)
        sim.run()
        assert pipe.total_bytes == pytest.approx(3e6)
        assert pipe.energy_j() > 0


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(
        st.floats(min_value=1e3, max_value=1e9), min_size=1, max_size=10
    )
)
def test_work_conservation_property(sizes):
    """All transfers complete, and the makespan is at least
    total_bytes / bandwidth (the pipe can't exceed its capacity) and at
    most sum of solo times (sharing never loses throughput)."""
    sim, pipe = make_pipe(bw_gbps=1.0)
    finished = []
    for size in sizes:
        pipe.submit(size, lambda: finished.append(sim.now))
    end = sim.run()
    assert len(finished) == len(sizes)
    lower = sum(sizes) / 1e9
    assert end == pytest.approx(lower, rel=1e-6) or end >= lower
    assert end <= lower * 1.001
