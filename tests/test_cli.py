"""CLI entry point (python -m repro)."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "ablation-knee" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "5120 arrays" in out and "86016 arrays" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "MLIMP configurations" in out
        assert "302" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
