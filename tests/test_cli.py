"""CLI entry point (python -m repro)."""

from pathlib import Path

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "ablation-knee" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "5120 arrays" in out and "86016 arrays" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "MLIMP configurations" in out
        assert "302" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCommand:
    def test_trace_combo(self, capsys):
        assert main(["trace", "A", "--scheduler", "global"]) == 0
        out = capsys.readouterr().out
        assert "dispatch report" in out
        assert "predictor error" in out
        for device in ("sram", "dram", "reram"):
            assert device in out

    def test_trace_exports(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "runs.json"
        csv_path = tmp_path / "trace.csv"
        assert (
            main(
                [
                    "trace", "A",
                    "--scheduler", "ljf",
                    "--json", str(json_path),
                    "--csv", str(csv_path),
                ]
            )
            == 0
        )
        data = json.loads(json_path.read_text())
        (run,) = data["runs"]
        assert run["report"]["n_jobs"] == len(run["decisions"]) > 0
        assert all(
            d["predicted_time"] is not None and d["actual_time"] is not None
            for d in run["decisions"]
        )
        header = csv_path.read_text().splitlines()[0]
        assert header == "run,job_id,device,phase,start,end,duration,arrays"

    def test_trace_unknown_target(self, capsys):
        assert main(["trace", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown trace target" in err


class TestFaultsCommand:
    SMOKE_PLAN = str(
        Path(__file__).resolve().parent.parent
        / "examples"
        / "faultplan_smoke.json"
    )

    def test_run_faults_smoke_plan(self, capsys):
        assert main(["run", "--faults", self.SMOKE_PLAN]) == 0
        out = capsys.readouterr().out
        assert "degraded mode" in out
        assert "makespan vs fault-free" in out
        assert "migrated off dram" in out

    def test_faults_picks_scheduler_and_combo(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--faults", self.SMOKE_PLAN,
                    "--scheduler", "ljf",
                    "--combo", "C",
                ]
            )
            == 0
        )
        assert "degraded mode" in capsys.readouterr().out

    def test_faults_conflicts_with_experiment_names(self, capsys):
        assert main(["run", "table3", "--faults", self.SMOKE_PLAN]) == 2
        assert "not combinable" in capsys.readouterr().err

    def test_faults_unknown_combo(self):
        with pytest.raises(ValueError, match="unknown combo"):
            main(["run", "--faults", self.SMOKE_PLAN, "--combo", "Z"])
