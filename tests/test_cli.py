"""CLI entry point (python -m repro)."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "ablation-knee" in out

    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "5120 arrays" in out and "86016 arrays" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "MLIMP configurations" in out
        assert "302" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCommand:
    def test_trace_combo(self, capsys):
        assert main(["trace", "A", "--scheduler", "global"]) == 0
        out = capsys.readouterr().out
        assert "dispatch report" in out
        assert "predictor error" in out
        for device in ("sram", "dram", "reram"):
            assert device in out

    def test_trace_exports(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "runs.json"
        csv_path = tmp_path / "trace.csv"
        assert (
            main(
                [
                    "trace", "A",
                    "--scheduler", "ljf",
                    "--json", str(json_path),
                    "--csv", str(csv_path),
                ]
            )
            == 0
        )
        data = json.loads(json_path.read_text())
        (run,) = data["runs"]
        assert run["report"]["n_jobs"] == len(run["decisions"]) > 0
        assert all(
            d["predicted_time"] is not None and d["actual_time"] is not None
            for d in run["decisions"]
        )
        header = csv_path.read_text().splitlines()[0]
        assert header == "run,job_id,device,phase,start,end,duration,arrays"

    def test_trace_unknown_target(self, capsys):
        assert main(["trace", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown trace target" in err


class TestFaultsCommand:
    SMOKE_PLAN = str(
        Path(__file__).resolve().parent.parent
        / "examples"
        / "faultplan_smoke.json"
    )

    def test_run_faults_smoke_plan(self, capsys):
        assert main(["run", "--faults", self.SMOKE_PLAN]) == 0
        out = capsys.readouterr().out
        assert "degraded mode" in out
        assert "makespan vs fault-free" in out
        assert "migrated off dram" in out

    def test_faults_picks_scheduler_and_combo(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--faults", self.SMOKE_PLAN,
                    "--scheduler", "ljf",
                    "--combo", "C",
                ]
            )
            == 0
        )
        assert "degraded mode" in capsys.readouterr().out

    def test_faults_conflicts_with_experiment_names(self, capsys):
        assert main(["run", "table3", "--faults", self.SMOKE_PLAN]) == 2
        assert "not combinable" in capsys.readouterr().err

    def test_faults_unknown_combo(self):
        with pytest.raises(ValueError, match="unknown combo"):
            main(["run", "--faults", self.SMOKE_PLAN, "--combo", "Z"])


class TestServeCommand:
    def test_serve_poisson_smoke(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--arrivals", "poisson",
                    "--rate", "2000",
                    "--horizon", "0.02",
                    "--tenants", "2",
                    "--slo", "10",
                    "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "attainment" in out
        assert "tenant-0" in out and "tenant-1" in out

    def test_serve_is_deterministic(self, capsys):
        argv = [
            "serve", "--rate", "2000", "--horizon", "0.02",
            "--tenants", "2", "--slo", "10", "--seed", "5",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_serve_writes_json_report(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve", "--rate", "1000", "--horizon", "0.01",
                    "--tenants", "2", "--slo", "5", "--scheduler", "global",
                    "--json", str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text())
        for key in ("scheduler", "slo_ms", "tenants", "utilisation",
                    "slo_attainment", "shed_rate"):
            assert key in payload
        assert payload["slo_ms"] == 5.0
        assert set(payload["tenants"]) == {"tenant-0", "tenant-1"}

    def test_serve_trace_arrivals(self, capsys, tmp_path):
        trace = tmp_path / "arrivals.json"
        trace.write_text(json.dumps([
            {"time": 0.0001, "tenant": "web"},
            {"time": 0.0002, "tenant": "batch", "kernel": "gemm"},
        ]))
        assert (
            main(["serve", "--arrivals", "trace", "--trace-file", str(trace)])
            == 0
        )
        out = capsys.readouterr().out
        assert "web" in out and "batch" in out

    def test_serve_trace_needs_file(self, capsys):
        assert main(["serve", "--arrivals", "trace"]) == 2
        assert "--trace-file" in capsys.readouterr().err

    def test_serve_rejects_bad_args(self, capsys):
        assert main(["serve", "--tenants", "0"]) == 2
        assert "--tenants" in capsys.readouterr().err
        assert main(["serve", "--slo", "-1"]) == 2
        assert "--slo" in capsys.readouterr().err

    def test_serve_with_fault_plan(self, capsys):
        plan = TestFaultsCommand.SMOKE_PLAN
        assert (
            main(
                [
                    "serve", "--rate", "2000", "--horizon", "0.02",
                    "--tenants", "2", "--slo", "10", "--faults", plan,
                    "--system", "gnn",
                ]
            )
            == 0
        )
        assert "attainment" in capsys.readouterr().out


class TestClusterCommand:
    ARGS = [
        "cluster", "--nodes", "2", "--rate", "2000", "--horizon", "0.01",
        "--tenants", "2", "--slo", "10", "--seed", "5", "--system", "gnn",
    ]

    def test_cluster_smoke(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "node-0" in out and "node-1" in out
        assert "placement[least-loaded]" in out
        assert "attainment" in out

    def test_cluster_is_deterministic_across_shards(self, capsys):
        assert main(self.ARGS + ["--shards", "1"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--shards", "2"]) == 0
        assert capsys.readouterr().out == first

    def test_cluster_writes_json_report(self, capsys, tmp_path):
        out_path = tmp_path / "cluster.json"
        assert main(self.ARGS + ["--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["n_nodes"] == 2
        report = payload["report"]
        for key in ("scheduler", "slo_ms", "tenants", "utilisation",
                    "slo_attainment", "nodes"):
            assert key in report
        assert set(report["nodes"]) == {"node-0", "node-1"}
        assert payload["cluster"]["placement"] == "least-loaded"
        assert payload["completed_per_sec"] > 0

    def test_cluster_placement_flag(self, capsys):
        assert main(self.ARGS + ["--placement", "hash"]) == 0
        out = capsys.readouterr().out
        assert "placement[hash]" in out
        assert "handoffs 0" in out

    def test_cluster_node_fault(self, capsys):
        assert main(self.ARGS + ["--fail-node", "node-1:0.005"]) == 0
        assert "node-1" in capsys.readouterr().out

    def test_cluster_rejects_bad_args(self, capsys):
        assert main(["cluster", "--nodes", "0"]) == 2
        assert "--nodes" in capsys.readouterr().err
        assert main(["cluster", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(self.ARGS + ["--fail-node", "node-1"]) == 2
        assert "NODE:SECONDS" in capsys.readouterr().err
        assert main(self.ARGS + ["--fail-node", "node-9:0.1"]) == 2
        assert "unknown node" in capsys.readouterr().err


class TestReplayCommand:
    ARGS = ["replay", "--windows", "2", "--window-ms", "0.5"]

    def test_replay_smoke(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "totals:" in out and "attainment" in out

    def test_replay_predictive_autoscale_json(self, capsys, tmp_path):
        out_path = tmp_path / "replay.json"
        assert main(self.ARGS + [
            "--admission", "predictive", "--autoscale",
            "--json", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "mlimp-replay"
        assert len(payload["windows"]) == 2
        assert payload["totals"]["shed_predicted"] > 0
        out = capsys.readouterr().out
        assert "scale event" in out

    def test_replay_halt_and_resume_byte_identical(self, capsys, tmp_path):
        straight = tmp_path / "straight.json"
        resumed = tmp_path / "resumed.json"
        ck = tmp_path / "ck.json"
        args = self.ARGS + ["--admission", "predictive", "--autoscale"]
        assert main(args + ["--json", str(straight)]) == 0
        capsys.readouterr()
        assert main(args + [
            "--halt-after", "1", "--checkpoint", str(ck),
        ]) == 0
        assert "halted after 1" in capsys.readouterr().out
        assert main([
            "replay", "--resume", str(ck), "--json", str(resumed),
        ]) == 0
        assert straight.read_bytes() == resumed.read_bytes()

    def test_replay_rejects_bad_args(self, capsys):
        assert main(["replay", "--halt-after", "1"]) == 2
        assert "--checkpoint" in capsys.readouterr().err
        assert main(["replay", "--halt-after", "0",
                     "--checkpoint", "x.json"]) == 2
        assert "--halt-after" in capsys.readouterr().err
        assert main(["replay", "--windows", "0"]) == 2
        assert "windows" in capsys.readouterr().err

    def test_replay_resume_rejects_non_checkpoint(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "nope"}))
        assert main(["replay", "--resume", str(bogus)]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_serve_admission_flag(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        assert main([
            "serve", "--system", "gnn", "--rate", "2e6",
            "--horizon", "0.001", "--slo", "0.1", "--seed", "20",
            "--queue-limit", "32", "--max-backlog", "16",
            "--admission", "predictive", "--json", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "admission[predictive]" in out
        payload = json.loads(out_path.read_text())
        assert payload["admission"] == "predictive"
        assert payload["shed_predicted"] > 0

    def test_cluster_admission_flag(self, capsys):
        assert main([
            "cluster", "--nodes", "2", "--system", "gnn",
            "--rate", "2e6", "--horizon", "0.0005", "--slo", "0.1",
            "--seed", "20", "--queue-limit", "32",
            "--max-backlog", "16", "--admission", "predictive",
        ]) == 0
        assert "admission[predictive]" in capsys.readouterr().out
