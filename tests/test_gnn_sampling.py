"""Datasets, neighbour sampling and subgraph metadata."""

import numpy as np
import pytest

from repro.gnn import (
    DATASETS,
    CSRGraph,
    NeighborSampler,
    SubgraphMetadata,
    barabasi_albert,
    extract_metadata,
    generate,
    nonzero_prows,
    prow_population,
    sample_batches,
)


def path_graph(n=10) -> CSRGraph:
    edges = np.asarray([[i, i + 1] for i in range(n - 1)])
    return CSRGraph.from_edges(n, edges)


class TestDatasets:
    def test_table1_datasets_present(self):
        assert set(DATASETS) == {"collab", "citation", "ppa", "ddi", "products"}

    def test_concat_mode_marks_nature_graphs(self):
        # ogbl-ppa and ogbl-ddi use concatenated subgraphs (Section IV).
        assert DATASETS["ppa"].concat_subgraphs
        assert DATASETS["ddi"].concat_subgraphs
        assert not DATASETS["citation"].concat_subgraphs

    def test_feature_dims_match_table1(self):
        assert DATASETS["collab"].feature_dim == 128
        assert DATASETS["ppa"].feature_dim == 58
        assert DATASETS["products"].feature_dim == 100
        for spec in DATASETS.values():
            assert spec.hidden_dim == 256

    def test_density_ordering_matches_paper(self):
        # ogbl-ddi is far denser than ogbl-collab.
        ddi = generate("ddi")
        collab = generate("collab")
        assert ddi.avg_degree() > 10 * collab.avg_degree()

    def test_generate_caches(self):
        assert generate("collab") is generate("collab")
        assert generate("collab", cache=False) is not generate("collab")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            generate("imaginary")

    def test_ba_degree_heavy_tail(self):
        g = barabasi_albert(3000, 5, seed=1)
        degrees = np.sort(g.degrees())[::-1]
        # Power-law-ish: the top vertex has degree far above the mean,
        # and many vertices sit at low degree.
        assert degrees[0] > 10 * g.avg_degree()
        assert np.percentile(degrees, 25) < g.avg_degree()

    def test_ba_edge_count_near_target(self):
        spec = DATASETS["collab"]
        g = generate("collab")
        assert g.num_edges == pytest.approx(spec.expected_arcs, rel=0.25)

    def test_ba_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(1, 1)
        with pytest.raises(ValueError):
            barabasi_albert(10, 10)


class TestSampler:
    def test_khop_on_path_graph(self):
        sampler = NeighborSampler(path_graph(), hops=2)
        sub = sampler.sample(5)
        # 2-hop neighbourhood of node 5 on a path: {3,4,5,6,7}.
        assert set(sub.global_nodes.tolist()) == {3, 4, 5, 6, 7}
        assert sub.num_nodes == 5

    def test_query_node_is_included_and_mapped(self):
        sampler = NeighborSampler(path_graph(), hops=1)
        sub = sampler.sample(0)
        assert sub.global_nodes[sub.query_nodes[0]] == 0

    def test_fanout_caps_expansion(self):
        g = generate("citation")
        full = NeighborSampler(g, hops=2, seed=1).sample(0)
        capped = NeighborSampler(g, hops=2, fanout=3, seed=1).sample(0)
        assert capped.num_nodes <= full.num_nodes

    def test_per_hop_fanout_tuple(self):
        g = generate("collab")
        sampler = NeighborSampler(g, hops=3, fanout=(5, 4, 3), seed=1)
        sub = sampler.sample(10)
        assert sub.num_nodes >= 1

    def test_fanout_tuple_length_validated(self):
        with pytest.raises(ValueError):
            NeighborSampler(path_graph(), hops=3, fanout=(5, 4))

    def test_max_nodes_truncation_keeps_seeds(self):
        g = generate("collab")
        sampler = NeighborSampler(g, hops=3, max_nodes=20, seed=2)
        sub = sampler.sample_many(np.asarray([0, 1]))
        assert sub.num_nodes <= 20 + 2
        assert {int(g_) for g_ in (0, 1)} <= set(sub.global_nodes.tolist())

    def test_concat_subgraph_unions_queries(self):
        sampler = NeighborSampler(path_graph(), hops=1)
        sub = sampler.sample_many(np.asarray([0, 9]))
        assert {0, 1, 8, 9} == set(sub.global_nodes.tolist())
        assert len(sub.query_nodes) == 2

    def test_sample_batches_shapes(self):
        g = generate("collab")
        batches = sample_batches(g, num_batches=2, batch_size=8, fanout=5, seed=0)
        assert len(batches) == 2
        assert all(len(batch) == 8 for batch in batches)
        concat = sample_batches(
            g, num_batches=2, batch_size=8, fanout=5, concat=True, seed=0
        )
        assert all(len(batch) == 1 for batch in concat)

    def test_subgraph_size_dynamism(self):
        """Figure 5: sampled subgraph sizes vary widely -- the
        workload dynamism that motivates the scheduler."""
        g = generate("citation")
        spec = DATASETS["citation"]
        batches = sample_batches(
            g, num_batches=3, batch_size=32, fanout=spec.fanout, seed=4
        )
        sizes = [s.num_nodes for batch in batches for s in batch]
        assert max(sizes) > 3 * min(sizes)

    def test_invalid_queries(self):
        sampler = NeighborSampler(path_graph())
        with pytest.raises(ValueError):
            sampler.sample_many(np.asarray([]))
        with pytest.raises(ValueError):
            sampler.sample(99)


class TestMetadata:
    def test_prow_population_path_graph(self):
        g = path_graph(6)
        # Width 2 strips: columns {0,1},{2,3},{4,5}.  Row 1 has
        # neighbours 0 and 2 -> prows (1,strip0) and (1,strip1).
        pops = prow_population(g, 2)
        assert pops.sum() == g.nnz
        assert nonzero_prows(g, 2) == len(pops)

    def test_prow_width_one_counts_nnz(self):
        g = path_graph(6)
        assert nonzero_prows(g, 1) == g.nnz

    def test_prow_full_width_counts_nonempty_rows(self):
        g = path_graph(6)
        assert nonzero_prows(g, 6) == 6  # every row has a neighbour

    def test_wider_strips_never_increase_prows(self):
        g = generate("collab")
        sub = NeighborSampler(g, hops=2, fanout=8, seed=0).sample(5)
        h = [nonzero_prows(sub.graph, w) for w in (1, 4, 16, 64, 256)]
        assert all(a >= b for a, b in zip(h, h[1:]))

    def test_empty_graph_prows(self):
        g = CSRGraph.from_edges(3, np.empty((0, 2)))
        assert nonzero_prows(g, 4) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            prow_population(path_graph(), 0)

    def test_extract_metadata_fields(self):
        g = generate("collab")
        sub = NeighborSampler(g, hops=2, fanout=8, seed=0).sample(5)
        md = extract_metadata(sub, feature_dim=128)
        assert md.num_nodes == sub.num_nodes
        assert md.nnz == sub.nnz
        assert md.feature_dim == 128
        assert md.max_degree >= md.avg_degree
        assert md.num_queries == 1

    def test_feature_vector_shape_and_names(self):
        g = generate("collab")
        sub = NeighborSampler(g, hops=2, fanout=8, seed=0).sample(5)
        md = extract_metadata(sub, 128)
        features = md.as_features(width=128)
        assert features.shape == (len(SubgraphMetadata.feature_names()),)
        assert features[-1] == 128.0
