"""Open-system serving layer: determinism, backpressure, identity.

The three load-bearing guarantees of ``repro.serving``:

* **Seeded determinism** -- the same (seed, rate, horizon) produces a
  byte-identical serve report, for every scheduler.
* **Backpressure, never deadlock** -- overload sheds (counted, per
  cause), and every offered job is either completed or shed.
* **Closed-path identity** -- an empty arrival stream adds zero sim
  events and zero metric series, so a zero-rate serve run is
  byte-identical to the closed-batch dispatcher path.
"""

from __future__ import annotations

import json

import pytest

from tests.prophelpers import SCHEDULERS, make_jobs, trace_key
from repro.core.runtime import MLIMPRuntime
from repro.core.scheduler.base import DispatchPolicy
from repro.faults import FaultPlan
from repro.harness.config import full_system, gnn_system
from repro.obs.export import result_payload
from repro.serving import (
    OpenLoop,
    OpenWorkload,
    PoissonArrivals,
    ServingRuntime,
    Tenant,
    TraceArrivals,
    build_serving_report,
)
from repro.sim.events import JobArrival


def serve_once(
    scheduler: str,
    rate: float = 2e3,
    horizon: float = 0.02,
    seed: int = 7,
    system=None,
    **kwargs,
):
    system = system or full_system()
    runtime = ServingRuntime(
        system, scheduler=scheduler, max_backlog=kwargs.pop("max_backlog", 32)
    )
    return runtime.serve(
        PoissonArrivals(
            rate=rate, horizon=horizon, seed=seed, tenants=("a", "b", "c")
        ),
        tenants=[
            Tenant("a"),
            Tenant("b", weight=2.0),
            Tenant("c", queue_limit=kwargs.pop("queue_limit", 64)),
        ],
        slo_s=kwargs.pop("slo_s", 0.01),
        **kwargs,
    )


# ======================================================================
# Seeded determinism
# ======================================================================
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_same_seed_byte_identical_report(scheduler):
    first = serve_once(scheduler)
    second = serve_once(scheduler)
    assert json.dumps(first.report.as_dict(), sort_keys=True) == json.dumps(
        second.report.as_dict(), sort_keys=True
    )
    assert trace_key(first.result) == trace_key(second.result)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_different_seed_changes_timeline(scheduler):
    a = serve_once(scheduler, seed=1)
    b = serve_once(scheduler, seed=2)
    assert trace_key(a.result) != trace_key(b.result)


def test_poisson_generation_is_pure():
    process = PoissonArrivals(rate=5e3, horizon=0.01, seed=3, tenants=("a",))
    workload = OpenWorkload(full_system())
    first = process.generate(workload.make_job)
    second = process.generate(workload.make_job)
    assert [(a.time, a.seq, a.tenant) for a in first] == [
        (a.time, a.seq, a.tenant) for a in second
    ]
    assert all(a.time < 0.01 for a in first)
    assert [a.seq for a in first] == sorted(a.seq for a in first)


# ======================================================================
# Closed-path identity (empty arrivals)
# ======================================================================
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_zero_rate_serve_byte_identical_to_closed_batch(scheduler):
    closed_runtime = MLIMPRuntime(full_system(), scheduler=scheduler)
    closed_runtime.submit_many(make_jobs(11))
    closed = closed_runtime.run(label=scheduler)

    serving = ServingRuntime(full_system(), scheduler=scheduler)
    open_run = serving.serve(
        PoissonArrivals(rate=0.0, horizon=1.0, seed=1, tenants=("a",)),
        tenants=[Tenant("a")],
        slo_s=0.01,
        initial_jobs=make_jobs(11),
        label=scheduler,
    )
    assert json.dumps(result_payload(closed), sort_keys=True) == json.dumps(
        result_payload(open_run.result), sort_keys=True
    )
    # The inert loop leaves no serving metric series behind.
    assert not any(
        name.startswith("serving.") for name in open_run.result.metrics.counters
    )
    report = open_run.report
    assert report.offered == 0 and report.shed == 0
    assert report.slo_attainment == 1.0


# ======================================================================
# Backpressure and shedding
# ======================================================================
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_overload_sheds_and_drains(scheduler):
    run = serve_once(
        scheduler,
        rate=1e6,
        horizon=0.005,
        seed=3,
        system=gnn_system(),
        max_backlog=4,
        queue_limit=2,
        slo_s=0.001,
    )
    report = run.report
    assert report.offered > 0
    assert report.shed > 0, "overload run must shed"
    assert report.completed + report.shed == report.offered
    # Sheds are counted in the run metrics, split by cause.
    shed_counted = (
        run.result.metrics.counter("serving.shed.queue_full").value
        + run.result.metrics.counter("serving.shed.unplaced").value
    )
    assert shed_counted == report.shed
    # Every completed arrival has a non-negative sojourn.
    for job_id, arrived in run.open_loop.arrival_times.items():
        if job_id in run.result.records:
            assert run.result.records[job_id].finished_at >= arrived


def test_bounded_queue_sheds_at_limit():
    jobs = make_jobs(5, count=4)
    arrivals = [
        JobArrival(time=0.0, seq=i, tenant="a", job=job)
        for i, job in enumerate(jobs)
    ]
    loop = OpenLoop(arrivals, tenants=[Tenant("a", queue_limit=2)])
    for arrival in arrivals:
        loop.on_arrival(arrival, arrival.time)
    stats = loop.tenant_stats()["a"]
    assert stats["offered"] == 4
    assert stats["queued"] == 2
    assert stats["shed_queue_full"] == 2


def test_release_respects_max_backlog():
    jobs = make_jobs(6, count=6)
    arrivals = [
        JobArrival(time=0.0, seq=i, tenant="a", job=job)
        for i, job in enumerate(jobs)
    ]
    loop = OpenLoop(arrivals, tenants=[Tenant("a")], max_backlog=3)
    for arrival in arrivals:
        loop.on_arrival(arrival, 0.0)
    assert len(loop.release(0.0, policy_backlog=0)) == 3
    assert len(loop.release(0.0, policy_backlog=3)) == 0
    assert len(loop.release(0.0, policy_backlog=1)) == 2
    assert loop.backlog() == 1


def test_stride_release_is_weighted_and_deterministic():
    jobs = make_jobs(8, count=8)
    arrivals = []
    for i, job in enumerate(jobs):
        tenant = "heavy" if i < 4 else "light"
        arrivals.append(JobArrival(time=0.0, seq=i, tenant=tenant, job=job))
    loop = OpenLoop(
        arrivals,
        tenants=[Tenant("heavy", weight=2.0), Tenant("light", weight=1.0)],
        max_backlog=3,
    )
    for arrival in arrivals:
        loop.on_arrival(arrival, 0.0)
    released = loop.release(0.0, policy_backlog=0)
    tenants = [loop.job_tenants[job.job_id] for job in released]
    # Stride with weights 2:1 admits heavy, light, heavy in the first
    # three slots (pass values 0.5/1.0 vs 1.0/2.0, name tie-break).
    assert tenants == ["heavy", "light", "heavy"]


def test_default_policy_rejects_arrivals_as_unplaced():
    class Inert(DispatchPolicy):
        def next_dispatches(self, view):
            return []

        def pending(self):
            return 0

    jobs = make_jobs(9, count=2)
    policy = Inert()
    rejected = policy.admit(jobs, 0.0)
    assert rejected == jobs


# ======================================================================
# Trace arrivals
# ======================================================================
def test_trace_arrivals_replay(tmp_path):
    entries = [
        {"time": 0.0002, "tenant": "b", "kernel": "gemm"},
        {"time": 0.0001, "tenant": "a"},
    ]
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(entries))
    workload = OpenWorkload(full_system())
    arrivals = TraceArrivals(path=str(path), seed=1).generate(workload.make_job)
    assert [a.tenant for a in arrivals] == ["a", "b"]  # sorted by time
    assert arrivals[1].job.kernel == "gemm"  # hint pins the shape
    assert arrivals[0].time == pytest.approx(0.0001)


def test_trace_arrivals_from_entries_runs():
    entries = [
        {"time": 0.00001 * i, "tenant": "a" if i % 2 else "b"}
        for i in range(10)
    ]
    runtime = ServingRuntime(full_system(), scheduler="adaptive")
    run = runtime.serve(
        TraceArrivals.from_entries(entries, seed=2),
        tenants=[Tenant("a"), Tenant("b")],
        slo_s=0.01,
    )
    assert run.report.completed == 10
    assert run.report.shed == 0


def test_trace_arrivals_validates_entries(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps([{"tenant": "a"}]))
    with pytest.raises(ValueError, match="needs 'time' and 'tenant'"):
        TraceArrivals(path=str(path)).generate(lambda *a: None)


# ======================================================================
# Validation and report schema
# ======================================================================
def test_job_arrival_rejects_negative_time():
    with pytest.raises(ValueError, match="non-negative"):
        JobArrival(time=-1.0, seq=0)


def test_open_loop_validates_tenants_and_jobs():
    job = make_jobs(1, count=1)[0]
    with pytest.raises(ValueError, match="unknown tenant"):
        OpenLoop(
            [JobArrival(time=0.0, seq=0, tenant="ghost", job=job)],
            tenants=[Tenant("a")],
        )
    with pytest.raises(ValueError, match="carries no job"):
        OpenLoop(
            [JobArrival(time=0.0, seq=0, tenant="a")], tenants=[Tenant("a")]
        )
    with pytest.raises(ValueError, match="max_backlog"):
        OpenLoop([], tenants=[Tenant("a")], max_backlog=0)
    with pytest.raises(ValueError, match="weight"):
        Tenant("a", weight=0.0)


def test_report_schema_and_render():
    run = serve_once("adaptive")
    payload = run.report.as_dict()
    for key in (
        "scheduler",
        "makespan",
        "slo_ms",
        "offered",
        "completed",
        "shed",
        "shed_rate",
        "slo_attainment",
        "tenants",
        "utilisation",
    ):
        assert key in payload
    for tenant_payload in payload["tenants"].values():
        for key in (
            "offered",
            "admitted",
            "completed",
            "shed_queue_full",
            "shed_unplaced",
            "shed_rate",
            "sojourn_ms",
            "slo_attainment",
        ):
            assert key in tenant_payload
        assert set(tenant_payload["sojourn_ms"]) == {"mean", "p50", "p95", "p99"}
    rendered = str(run.report)
    assert "attainment" in rendered and "tenant" in rendered
    with pytest.raises(ValueError, match="slo"):
        build_serving_report(run.result, run.open_loop, slo_s=0.0)


# ======================================================================
# Composition with fault injection
# ======================================================================
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_serving_composes_with_fault_plan(scheduler):
    faults = FaultPlan.random(
        seed=20, devices=gnn_system().kinds, horizon_s=0.005
    )
    run = serve_once(
        scheduler,
        rate=3e5,
        horizon=0.005,
        seed=20,
        system=gnn_system(),
        faults=faults,
    )
    report = run.report
    failed = len(run.result.failed_jobs)
    assert report.completed + report.shed + failed == report.offered
    assert run.result.fault_summary is not None


# ======================================================================
# Predictive admission (PR 9)
# ======================================================================
from repro.serving import PredictiveAdmission  # noqa: E402
from tests.prophelpers import serve_overloaded  # noqa: E402


@pytest.mark.parametrize("scheduler", ("adaptive", "ewt"))
def test_admission_replay_byte_identical(scheduler):
    """Seeded replay with the predictive gate on is deterministic."""
    first = serve_overloaded(scheduler, admission="predictive")
    second = serve_overloaded(scheduler, admission="predictive")
    assert json.dumps(first.report.as_dict(), sort_keys=True) == json.dumps(
        second.report.as_dict(), sort_keys=True
    )
    assert trace_key(first.result) == trace_key(second.result)


def test_admission_off_byte_identical_to_baseline():
    """admission=None and admission="shed" both take the exact
    historical serve path: same report bytes, same trace, no
    admission-only schema keys, no extra metric series."""
    baseline = serve_overloaded("adaptive", admission=None)
    shed = serve_overloaded("adaptive", admission="shed")
    base_json = json.dumps(baseline.report.as_dict(), sort_keys=True)
    assert base_json == json.dumps(shed.report.as_dict(), sort_keys=True)
    assert trace_key(baseline.result) == trace_key(shed.result)
    assert '"shed_predicted"' not in base_json
    assert '"admission"' not in base_json
    assert not any(
        name == "serving.shed.predicted"
        or name.startswith("serving.shed.predicted.")
        for name in baseline.result.metrics.counters
    )


def test_predictive_admission_improves_attainment_under_overload():
    """The acceptance bar: on the overloaded trace the predictive gate
    sheds at arrival time and lifts SLO attainment over shed-only."""
    baseline = serve_overloaded("adaptive", admission=None)
    gated = serve_overloaded("adaptive", admission="predictive")
    assert gated.report.shed_predicted > 0
    assert (
        gated.report.slo_attainment > baseline.report.slo_attainment
    )
    # Accounting still closes on both sides of the gate.
    for run in (baseline, gated):
        report = run.report
        failed = len(run.result.failed_jobs)
        assert report.completed + report.shed + failed == report.offered
    # The gate's rejections are itemised per tenant and in the render.
    payload = gated.report.as_dict()
    assert payload["admission"] == "predictive"
    assert payload["shed_predicted"] == sum(
        t["shed_predicted"] for t in payload["tenants"].values()
    )
    rendered = str(gated.report)
    assert "admission[predictive]" in rendered
    assert "shed_predicted" in rendered


def test_tenant_slo_overrides_run_slo():
    """A tenant-level SLO both gates admission and scores attainment."""
    tenants = [
        Tenant("interactive", weight=4.0, queue_limit=32, slo_s=20e-6),
        Tenant("batch", weight=2.0, queue_limit=32),
        Tenant("besteffort", weight=1.0, queue_limit=8),
    ]
    run = serve_overloaded(
        "adaptive", admission="predictive", tenants=tenants
    )
    stats = run.open_loop.tenant_stats()
    # The tight per-tenant SLO rejects far more of that tenant's load
    # than the run-level 100us SLO rejects of the others'.
    strict_rate = stats["interactive"]["shed_predicted"] / max(
        stats["interactive"]["offered"], 1
    )
    lax_rate = stats["batch"]["shed_predicted"] / max(
        stats["batch"]["offered"], 1
    )
    assert strict_rate > lax_rate
    payload = run.report.as_dict()
    assert payload["tenants"]["interactive"]["slo_ms"] == pytest.approx(0.02)
    assert "slo_ms" not in payload["tenants"]["batch"] or payload[
        "tenants"
    ]["batch"]["slo_ms"] == pytest.approx(run.report.slo_s * 1e3)
    with pytest.raises(ValueError, match="slo_s"):
        Tenant("bad", slo_s=0.0)


def test_predictive_admission_bookkeeping():
    """Unit-level: outstanding work grows on admit, drains on release,
    and the accumulator re-anchors to zero when the system empties."""
    import random

    from repro.core.predictor import OraclePredictor

    system = gnn_system()
    gate = PredictiveAdmission(
        predictor=OraclePredictor(), system=system, slo_s=1.0
    )
    tenant = Tenant("a")
    job = OpenWorkload(system).make_job(0, "a", random.Random(1), {})
    assert gate.decide(job, tenant, now=0.0)
    assert gate.outstanding and gate.admitted == 1
    gate.release(job.job_id)
    assert not gate.outstanding
    assert gate._outstanding_work == 0.0
    # Releasing an unknown job is a no-op (shed jobs were never
    # recorded).
    gate.release("never-admitted")
    # An unserveable SLO rejects at the gate.
    strict = PredictiveAdmission(
        predictor=OraclePredictor(), system=system, slo_s=1e-12
    )
    assert not strict.decide(job, tenant, now=0.0)
    assert strict.rejected == 1 and not strict.outstanding
    with pytest.raises(ValueError, match="slo"):
        PredictiveAdmission(
            predictor=OraclePredictor(), system=system, slo_s=0.0
        )
    with pytest.raises(ValueError, match="margin"):
        PredictiveAdmission(
            predictor=OraclePredictor(), system=system, slo_s=1.0, margin=0.0
        )
    with pytest.raises(ValueError, match="admission"):
        ServingRuntime(system).serve(
            PoissonArrivals(rate=0.0, horizon=0.0, seed=0, tenants=("a",)),
            tenants=[Tenant("a")],
            slo_s=0.01,
            admission="bogus",
        )
