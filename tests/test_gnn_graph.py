"""CSR graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import CSRGraph


def triangle() -> CSRGraph:
    return CSRGraph.from_edges(3, np.asarray([[0, 1], [1, 2], [0, 2]]), name="tri")


class TestConstruction:
    def test_from_edges_symmetrises(self):
        g = triangle()
        assert g.num_edges == 6  # each undirected edge stored twice
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [0, 2]

    def test_from_edges_directed(self):
        g = CSRGraph.from_edges(3, np.asarray([[0, 1]]), symmetric=False)
        assert g.num_edges == 1
        assert list(g.neighbors(1)) == []

    def test_self_loops_and_duplicates_removed(self):
        g = CSRGraph.from_edges(
            3, np.asarray([[0, 0], [0, 1], [0, 1], [1, 0]]), symmetric=False
        )
        assert g.num_edges == 2  # 0->1 and 1->0

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, np.empty((0, 2)))
        assert g.num_edges == 0
        assert g.avg_degree() == 0.0

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.asarray([0, 2]), indices=np.asarray([1]), num_nodes=1)

    def test_validation_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.asarray([0, 1]), indices=np.asarray([5]), num_nodes=1)

    def test_degrees(self):
        g = triangle()
        assert list(g.degrees()) == [2, 2, 2]
        assert g.degree(0) == 2
        assert g.avg_degree() == pytest.approx(2.0)

    def test_neighbors_out_of_range(self):
        with pytest.raises(IndexError):
            triangle().neighbors(7)


class TestSubgraph:
    def test_induced_subgraph_renumbers(self):
        g = CSRGraph.from_edges(
            5, np.asarray([[0, 1], [1, 2], [2, 3], [3, 4], [0, 4]])
        )
        sub = g.induced_subgraph(np.asarray([1, 2, 3]))
        assert sub.num_nodes == 3
        # Edges 1-2 and 2-3 survive; 0 and 4 are cut away.
        assert sub.num_edges == 4
        assert list(sub.neighbors(1)) == [0, 2]

    def test_subgraph_of_disconnected_nodes(self):
        g = triangle()
        sub = g.induced_subgraph(np.asarray([0]))
        assert sub.num_nodes == 1
        assert sub.num_edges == 0

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            triangle().induced_subgraph(np.asarray([0, 0]))

    def test_full_subgraph_is_identity(self):
        g = triangle()
        sub = g.induced_subgraph(np.arange(3))
        assert sub.num_edges == g.num_edges
        assert np.array_equal(sub.indptr, g.indptr)
        assert np.array_equal(sub.indices, g.indices)


class TestNormalisation:
    def test_normalized_adjacency_row_values(self):
        g = triangle()
        values = g.normalized_adjacency_values()
        # Every vertex has degree 2: each value is 1/2.
        assert np.allclose(values, 0.5)

    def test_isolated_vertices_contribute_zero(self):
        g = CSRGraph.from_edges(3, np.asarray([[0, 1]]))
        values = g.normalized_adjacency_values()
        assert len(values) == g.num_edges
        assert np.all(np.isfinite(values))


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    edges=st.lists(
        st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=100
    ),
    data=st.data(),
)
def test_subgraph_edges_are_subset_property(n, edges, data):
    """Induced subgraphs never invent edges and preserve all edges
    internal to the node set."""
    edges = [(a % n, b % n) for a, b in edges]
    g = CSRGraph.from_edges(n, np.asarray(edges).reshape(-1, 2))
    k = data.draw(st.integers(min_value=1, max_value=n))
    nodes = data.draw(
        st.permutations(list(range(n))).map(lambda p: np.asarray(p[:k]))
    )
    sub = g.induced_subgraph(nodes)
    node_set = set(int(x) for x in nodes)
    expected = sum(
        1
        for u in node_set
        for v in g.neighbors(u)
        if int(v) in node_set
    )
    assert sub.num_edges == expected
    assert sub.num_nodes == k
