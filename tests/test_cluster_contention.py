"""Differential suite for the contended interconnect.

Three guarantees gate the shared-link fluid model:

* ``contention="none"`` is **byte-identical** to the historical
  fixed-pricing output -- same delays (to the bit: the exact
  ``delay += transfer_time(...)`` accumulation is preserved), same
  report, same stats schema (no contention/migration keys appear);
* the shared model never *shortens* any delay: every transfer begins
  no earlier than its issue time, so each job's contended delay is
  >= its uncontended delay;
* sharding stays invariant under contention -- the fluid queues live
  entirely in pass 1, before the per-node simulations fan out.
"""

from __future__ import annotations

import json

from repro.cluster import (
    ClusterRuntime,
    ClusterSpec,
    InterconnectSpec,
    home_node,
)
from repro.harness.config import full_system
from repro.serving import PoissonArrivals, Tenant
from repro.serving.arrivals import TimelineArrivals
from repro.sim.events import JobArrival
from tests.prophelpers import make_jobs

SLO_S = 0.01
TENANTS = ("a", "b", "c")


def _tenants() -> list[Tenant]:
    return [Tenant(name) for name in TENANTS]


def _arrivals(rate: float = 4e3, horizon: float = 0.02, seed: int = 7):
    return PoissonArrivals(
        rate=rate, horizon=horizon, seed=seed, tenants=TENANTS
    )


def _serve(contention: str, *, placement: str = "round-robin",
           shards: int | None = None, interconnect: InterconnectSpec | None = None):
    interconnect = interconnect or InterconnectSpec(contention=contention)
    runtime = ClusterRuntime(
        ClusterSpec.homogeneous(
            4, system=full_system(), interconnect=interconnect
        ),
        placement=placement,
    )
    return runtime.serve(
        _arrivals(), tenants=_tenants(), slo_s=SLO_S, shards=shards
    )


def _dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# ======================================================================
# contention="none" is the historical model, byte for byte
# ======================================================================
def test_none_mode_is_byte_identical_to_default_spec():
    explicit = _serve("none")
    default = _serve("none", interconnect=InterconnectSpec())
    assert _dumps(explicit.as_dict()) == _dumps(default.as_dict())
    assert _dumps(explicit.node_payloads) == _dumps(default.node_payloads)


def test_none_mode_delays_match_closed_form_pricing():
    # One foreign tenant, one handoff + one replica fill: the delay is
    # the PR-7 arithmetic exactly (same accumulation order, == not
    # approx -- FP addition is order-sensitive and the pin is bitwise).
    tenant = next(t for t in ("a", "b", "c", "d") if home_node(t, 2) == 0)
    interconnect = InterconnectSpec()
    spec = ClusterSpec.homogeneous(
        2, system=full_system(), interconnect=interconnect
    )
    job = make_jobs(seed=5, count=2)[1]
    runtime = ClusterRuntime(spec, placement="round-robin")
    result = runtime.serve(
        TimelineArrivals(
            arrivals=(
                JobArrival(
                    time=0.001, seq=0, tenant=tenant,
                    job=make_jobs(seed=5, count=1)[0],
                ),
                JobArrival(time=0.002, seq=1, tenant=tenant, job=job),
            )
        ),
        tenants=[Tenant(tenant)],
        slo_s=SLO_S,
    )
    nbytes = max(p.fill_bytes for p in job.profiles.values())
    expected = interconnect.transfer_time(nbytes)
    expected += interconnect.transfer_time(interconnect.replica_bytes(nbytes))
    assert result.stats.delays == {job.job_id: expected}


def test_none_mode_emits_no_contention_or_migration_keys():
    result = _serve("none")
    summary = result.stats.as_dict()
    assert "contention" not in summary
    assert "migrations" not in summary
    assert result.stats.queue_delays == []
    assert result.stats.peak_inflight_bytes == 0.0


# ======================================================================
# Contention only ever adds delay
# ======================================================================
def test_shared_never_shortens_any_delay():
    none = _serve("none")
    shared = _serve("shared")
    assert none.stats.delays  # the scenario does produce handoffs
    assert set(shared.stats.delays) == set(none.stats.delays)
    for job_id, base in none.stats.delays.items():
        assert shared.stats.delays[job_id] >= base * (1 - 1e-12)
    # And this scenario genuinely queues: strictly longer somewhere.
    assert sum(shared.stats.delays.values()) > sum(none.stats.delays.values())


def test_simultaneous_transfers_queue_on_one_link():
    # Four same-instant arrivals of one tenant, round-robin across two
    # nodes: the two handed-off jobs share the (home, foreign) link,
    # so the second must wait out the first (and its replica fill).
    tenant = next(t for t in ("a", "b", "c", "d") if home_node(t, 2) == 0)
    interconnect = InterconnectSpec(contention="shared")
    spec = ClusterSpec.homogeneous(
        2, system=full_system(), interconnect=interconnect
    )
    jobs = make_jobs(seed=9, count=4)
    runtime = ClusterRuntime(spec, placement="round-robin")
    result = runtime.serve(
        TimelineArrivals(
            arrivals=tuple(
                JobArrival(time=0.001, seq=i, tenant=tenant, job=jobs[i])
                for i in range(4)
            )
        ),
        tenants=[Tenant(tenant)],
        slo_s=SLO_S,
    )
    stats = result.stats
    assert stats.handoffs == 2
    assert any(d > 0 for d in stats.queue_delays)
    assert stats.peak_inflight_bytes > 0
    delays = sorted(stats.delays.values())
    assert delays[1] > delays[0]  # the queued job landed later


# ======================================================================
# Accounting and shard invariance under contention
# ======================================================================
def test_contention_accounting_reconciles():
    result = _serve("shared")
    stats = result.stats
    # One ship() per handoff, plus one per replica fill.
    assert len(stats.queue_delays) == stats.handoffs + stats.replicas
    assert all(d >= 0 for d in stats.queue_delays)
    assert stats.peak_inflight_bytes > 0
    summary = stats.as_dict()
    block = summary["contention"]
    assert block["model"] == "shared"
    assert block["transfers"] == len(stats.queue_delays)
    queued = [d for d in stats.queue_delays if d > 0]
    assert block["queued"] == len(queued)
    assert block["queue_delay_s"]["count"] == len(queued)
    assert block["queue_delay_s"]["max"] == (max(queued) if queued else 0.0)
    assert sum(block["queue_delay_histogram"].values()) == len(queued)
    assert block["peak_inflight_bytes"] == stats.peak_inflight_bytes


def test_sharded_contended_run_byte_identical():
    serial = _serve("shared", shards=1)
    pooled = _serve("shared", shards=4)
    assert _dumps(serial.as_dict()) == _dumps(pooled.as_dict())
    assert _dumps(serial.node_payloads) == _dumps(pooled.node_payloads)


def test_contended_run_is_deterministic():
    first = _serve("shared")
    second = _serve("shared")
    assert _dumps(first.as_dict()) == _dumps(second.as_dict())


def test_hash_placement_sees_no_contention():
    # Hash pins every tenant home: no transfers, so the shared model
    # has nothing to queue and the report matches none-mode exactly.
    shared = _serve("shared", placement="hash")
    none = _serve("none", placement="hash")
    assert shared.stats.handoffs == 0
    assert shared.stats.queue_delays == []
    assert _dumps(shared.report.as_dict()) == _dumps(none.report.as_dict())
