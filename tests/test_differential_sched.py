"""Differential tests across the fault boundary and the schedulers.

Two families:

* **Off == absent.**  Dispatching with an *empty* fault plan must be
  byte-identical to dispatching with no plan at all -- same trace,
  same makespan, same exported payload -- proving the fault machinery
  adds zero behavioural surface when unused.
* **Scheduler relations.**  On the paper's Table II combos the
  MLIMP-aware schedulers keep their Fig. 13/14 relation to fair-share
  LJF; on seeded random batches all three schedulers remain
  *behaviourally* interchangeable (same completions, oracle-bounded
  makespans) even where their placements diverge.
"""

import json

import pytest

from repro.apps import COMBOS, combo_jobs
from repro.core import oracle_makespan
from repro.faults import FaultPlan
from repro.harness.config import full_system
from repro.memories import DEFAULT_SPECS
from repro.obs import result_payload
from tests.prophelpers import SCHEDULERS, make_jobs, run_batch, trace_key


@pytest.mark.parametrize("seed", (0, 5, 11))
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_empty_plan_is_byte_identical(scheduler, seed):
    """An empty FaultPlan leaves the dispatcher on the exact
    fault-free code path."""
    plain = run_batch(scheduler, make_jobs(seed))
    gated = run_batch(scheduler, make_jobs(seed), faults=FaultPlan.empty())
    assert trace_key(gated) == trace_key(plain)
    assert gated.makespan == plain.makespan
    assert gated.fault_summary is None
    assert not gated.failed_jobs
    assert json.dumps(result_payload(gated), sort_keys=True) == json.dumps(
        result_payload(plain), sort_keys=True
    )


class TestSchedulerOrdering:
    """Fig. 13/14 relation on the Table II combos: MLIMP-aware
    scheduling beats fair-share LJF, and the static global planner
    beats the online adaptive one on average."""

    @pytest.fixture(scope="class")
    def combo_makespans(self):
        return {
            combo: {
                s: run_batch(s, combo_jobs(combo, DEFAULT_SPECS)).makespan
                for s in SCHEDULERS
            }
            for combo in sorted(COMBOS)
        }

    def test_best_mlimp_scheduler_never_loses_to_ljf(self, combo_makespans):
        for combo, mk in combo_makespans.items():
            best = min(mk["adaptive"], mk["global"])
            assert best <= mk["ljf"] * 1.0001, (combo, mk)

    def test_mean_ordering_global_adaptive_ljf(self, combo_makespans):
        n = len(combo_makespans)
        mean = {
            s: sum(mk[s] for mk in combo_makespans.values()) / n
            for s in SCHEDULERS
        }
        assert mean["global"] <= mean["adaptive"] * 1.0001, mean
        assert mean["adaptive"] <= mean["ljf"] * 1.0001, mean


@pytest.mark.parametrize("seed", range(20))
def test_schedulers_agree_on_random_batches(seed):
    """Placement differs across schedulers; correctness must not."""
    system = full_system()
    jobs = make_jobs(seed)
    bound = oracle_makespan(jobs, system)
    spans = {}
    for scheduler in SCHEDULERS:
        result = run_batch(scheduler, make_jobs(seed))
        assert set(result.records) == {job.job_id for job in jobs}
        assert not result.failed_jobs
        assert result.makespan >= bound * 0.999
        spans[scheduler] = result.makespan
    assert max(spans.values()) <= min(spans.values()) * 2.0, spans
