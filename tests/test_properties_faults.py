"""Property harness: seeded invariants of degraded-mode dispatch.

Each case is a (scheduler, seed) pair: the seed builds a job batch
(``tests/prophelpers.py``) and -- scaled to the batch's fault-free
makespan so every event can actually land mid-run -- a random
:class:`~repro.faults.plan.FaultPlan` of stalls, derates and
failures.  Invariants checked on the degraded run:

* every job completes exactly once or is reported failed;
* nothing executes on a dead device past its failure time;
* faults never *shorten* the run;
* observability counters reconcile with the plan and the report;
* the whole degraded run is deterministic from its two seeds.
"""

import pytest

from repro.obs import build_report
from repro.sim import Phase
from tests.prophelpers import (
    SCHEDULERS,
    counter,
    make_jobs,
    random_plan,
    run_batch,
    trace_key,
)

SEEDS = tuple(range(20))

#: Runs are pure functions of (scheduler, seed); cache them so each
#: invariant below reads the same pair instead of re-simulating.
_CACHE: dict = {}


def runs(scheduler: str, seed: int):
    key = (scheduler, seed)
    if key not in _CACHE:
        base = run_batch(scheduler, make_jobs(seed))
        plan = random_plan(1000 + seed, horizon_s=base.makespan)
        degraded = run_batch(scheduler, make_jobs(seed), faults=plan)
        _CACHE[key] = (base, plan, degraded)
    return _CACHE[key]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestFaultInvariants:
    def test_completes_exactly_once_or_fails(self, scheduler, seed):
        _, _, deg = runs(scheduler, seed)
        all_ids = {job.job_id for job in make_jobs(seed)}
        completed, failed = set(deg.records), set(deg.failed_jobs)
        assert completed | failed == all_ids
        assert not completed & failed
        computes: dict[str, int] = {}
        for r in deg.trace.records:
            if r.phase is Phase.COMPUTE:
                computes[r.job_id] = computes.get(r.job_id, 0) + 1
        assert all(computes.get(job_id, 0) == 1 for job_id in completed)
        assert all(job_id not in computes for job_id in failed)
        assert counter(deg, "jobs.completed") == len(completed)

    def test_nothing_runs_on_a_dead_device(self, scheduler, seed):
        _, _, deg = runs(scheduler, seed)
        for device, health in deg.fault_summary["devices"].items():
            if health["alive"]:
                continue
            late = [
                r
                for r in deg.trace.records
                if r.device == device and r.end > health["failed_at"] + 1e-15
            ]
            assert not late, f"work on dead {device}: {late[:3]}"

    def test_faults_never_shorten_the_run(self, scheduler, seed):
        base, _, deg = runs(scheduler, seed)
        assert deg.makespan >= base.makespan * (1 - 1e-12)

    def test_counters_reconcile(self, scheduler, seed):
        _, plan, deg = runs(scheduler, seed)
        # Every timed plan event fires exactly once (moot ones against
        # an already-dead device are still counted as injected).
        assert counter(deg, "faults.injected") == len(plan.timed_events())
        migrated = sum(
            c.value
            for name, c in deg.metrics.counters.items()
            if name.startswith("jobs.requeued.")
        )
        assert migrated == counter(deg, "jobs.requeued")
        degradation = build_report(deg).degradation
        assert degradation is not None
        assert degradation["plan_size"] == len(plan)
        assert degradation["faults_injected"] == counter(deg, "faults.injected")
        assert degradation["jobs_requeued"] == counter(deg, "jobs.requeued")
        assert degradation["jobs_retried"] == counter(deg, "jobs.retried")
        assert sum(degradation["migrated_off"].values()) == degradation["jobs_requeued"]
        assert degradation["jobs_failed"] == len(deg.failed_jobs)


@pytest.mark.parametrize("seed", (0, 7, 13))
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_degraded_runs_are_deterministic(scheduler, seed):
    """Same job seed + same plan -> byte-identical degraded run."""
    _, plan, first = runs(scheduler, seed)
    again = run_batch(scheduler, make_jobs(seed), faults=plan)
    assert trace_key(again) == trace_key(first)
    assert again.makespan == first.makespan
    assert again.failed_jobs == first.failed_jobs
