"""From-scratch regressors: MLP, gradient-boosted trees, metrics."""

import json

import numpy as np
import pytest

from repro.ml import (
    GradientBoostedTrees,
    MLPRegressor,
    RegressionTree,
    StandardScaler,
    r2_score,
    relative_rmse,
    rmse,
)


def make_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 4, size=(n, 3))
    y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + rng.normal(0, 0.1, n)
    return X, y


class TestMetrics:
    def test_perfect_prediction(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == pytest.approx(1.0)
        assert rmse(y, y) == 0.0
        assert relative_rmse(y, y) == 0.0

    def test_mean_prediction_r2_zero(self):
        y = np.asarray([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_rmse_value(self):
        assert rmse([0.0, 0.0], [1.0, -1.0]) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r2_score([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            rmse([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            r2_score([], [])

    def test_relative_rmse_zero_mean(self):
        with pytest.raises(ValueError):
            relative_rmse([1.0, -1.0], [0.0, 0.0])

    def test_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestScaler:
    def test_round_trip(self):
        X = np.random.default_rng(0).normal(3.0, 2.0, size=(50, 4))
        scaler = StandardScaler()
        Z = scaler.fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)
        assert np.allclose(scaler.inverse_transform(Z), X)

    def test_constant_column_passthrough(self):
        X = np.asarray([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 1], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            scaler.transform([[1.0]])

    def test_partial_fit_matches_fit_on_concat(self):
        rng = np.random.default_rng(4)
        chunks = [rng.normal(2.0, 3.0, size=(n, 3)) for n in (7, 1, 40, 13)]
        full = StandardScaler().fit(np.vstack(chunks))
        incremental = StandardScaler()
        for chunk in chunks:
            incremental.partial_fit(chunk)
        assert np.allclose(incremental.mean_, full.mean_)
        assert np.allclose(incremental.var_, full.var_)
        assert incremental.n_samples_seen_ == sum(len(c) for c in chunks)

    def test_partial_fit_feature_mismatch(self):
        scaler = StandardScaler().fit([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            scaler.partial_fit([[1.0]])

    def test_ambiguous_1d_input_rejected(self):
        """A 1-D vector whose length is not the feature count used to
        be silently reshaped into one bogus row -- it must raise."""
        scaler = StandardScaler().fit(np.ones((4, 3)) * [[1], [2], [3], [4]])
        with pytest.raises(ValueError, match="ambiguous"):
            scaler.transform(np.zeros(5))
        # An exact-length vector stays a valid single sample.
        assert scaler.transform(np.zeros(3)).shape == (1, 3)

    def test_dict_round_trip(self):
        X = np.random.default_rng(1).normal(size=(30, 2))
        scaler = StandardScaler().fit(X)
        clone = StandardScaler.from_dict(json.loads(json.dumps(scaler.to_dict())))
        assert np.array_equal(clone.transform(X), scaler.transform(X))
        assert clone.n_samples_seen_ == scaler.n_samples_seen_

    def test_unfitted_dict_round_trip(self):
        clone = StandardScaler.from_dict(StandardScaler().to_dict())
        with pytest.raises(RuntimeError):
            clone.transform([[1.0]])


class TestMLP:
    def test_learns_nonlinear_function(self):
        X, y = make_data()
        model = MLPRegressor(epochs=200, seed=1).fit(X[:200], y[:200])
        pred = model.predict(X[200:])
        assert r2_score(y[200:], pred) > 0.95

    def test_deterministic_given_seed(self):
        X, y = make_data(100)
        a = MLPRegressor(epochs=50, seed=3).fit(X, y).predict(X)
        b = MLPRegressor(epochs=50, seed=3).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_loss_decreases(self):
        X, y = make_data(100)
        model = MLPRegressor(epochs=100, seed=0).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_paper_architecture_parameter_count(self):
        # Two hidden layers of 16 and 8 nodes (paper III-E).
        X, y = make_data(50)
        model = MLPRegressor(hidden=(16, 8), epochs=5).fit(X, y)
        expected = (3 * 16 + 16) + (16 * 8 + 8) + (8 * 1 + 1)
        assert model.n_parameters == expected

    def test_single_sample_prediction(self):
        X, y = make_data(50)
        model = MLPRegressor(epochs=20).fit(X, y)
        single = model.predict(X[0])
        assert np.isscalar(single) or np.ndim(single) == 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict([[1.0, 2.0, 3.0]])

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.zeros((1, 2)), np.zeros(1))


class TestMLPLifecycle:
    def test_save_load_predictions_byte_identical(self):
        X, y = make_data(100)
        model = MLPRegressor(epochs=40, seed=2).fit(X, y)
        clone = MLPRegressor.from_dict(json.loads(json.dumps(model.to_dict())))
        assert np.array_equal(clone.predict(X), model.predict(X))

    def test_fit_deterministic_across_save_load(self):
        """Same seed -> same model, whether trained fresh or rebuilt
        from an artifact of an identically-trained twin."""
        X, y = make_data(100)
        fresh = MLPRegressor(epochs=30, seed=7).fit(X, y)
        rebuilt = MLPRegressor.from_dict(
            MLPRegressor(epochs=30, seed=7).fit(X, y).to_dict()
        )
        assert np.array_equal(fresh.predict(X), rebuilt.predict(X))

    def test_partial_fit_fewer_samples_than_batch_size(self):
        X, y = make_data(100)
        model = MLPRegressor(epochs=30, batch_size=32, seed=0).fit(X[:60], y[:60])
        model.partial_fit(X[60:63], y[60:63], epochs=5)  # 3 < batch_size
        model.partial_fit(X[63:64], y[63:64], epochs=5)  # single sample
        assert model.n_updates_ == 2
        assert np.all(np.isfinite(model.predict(X)))

    def test_partial_fit_first_call_is_fit(self):
        X, y = make_data(80)
        a = MLPRegressor(epochs=30, seed=5).partial_fit(X, y)
        b = MLPRegressor(epochs=30, seed=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_partial_fit_improves_on_shifted_data(self):
        """Warm-start training adapts to a drifted target function."""
        rng = np.random.default_rng(9)
        X = rng.uniform(0, 4, size=(200, 3))
        y_old = X @ [2.0, 1.0, 0.5]
        y_new = X @ [0.5, -1.0, 2.0] + 3.0
        model = MLPRegressor(epochs=100, seed=0).fit(X, y_old)
        before = rmse(y_new, model.predict(X))
        for _ in range(5):
            model.partial_fit(X, y_new, epochs=40)
        assert rmse(y_new, model.predict(X)) < before / 2

    def test_scaler_refresh_preserves_function(self):
        """A zero-epoch partial_fit only refreshes the scalers; the
        weight compensation must keep predictions unchanged."""
        X, y = make_data(120)
        model = MLPRegressor(epochs=30, seed=1).fit(X[:80], y[:80])
        before = model.predict(X)
        # Shifted/re-scaled batch moves the scaler statistics a lot.
        model.partial_fit(X[80:] * 3.0 + 5.0, y[80:] * 2.0 - 1.0, epochs=0)
        assert np.allclose(model.predict(X), before, rtol=1e-9, atol=1e-12)

    def test_partial_fit_deterministic_across_save_load(self):
        """Adam state and the update counter ride in the artifact, so
        saved-then-continued training equals in-memory continuation."""
        X, y = make_data(120)
        live = MLPRegressor(epochs=30, seed=4).fit(X[:70], y[:70])
        restored = MLPRegressor.from_dict(json.loads(json.dumps(live.to_dict())))
        live.partial_fit(X[70:], y[70:], epochs=15)
        restored.partial_fit(X[70:], y[70:], epochs=15)
        assert np.array_equal(live.predict(X), restored.predict(X))

    def test_partial_fit_feature_mismatch(self):
        X, y = make_data(50)
        model = MLPRegressor(epochs=10).fit(X, y)
        with pytest.raises(ValueError, match="feature count"):
            model.partial_fit(np.zeros((4, 2)), np.zeros(4))

    def test_version_gate(self):
        X, y = make_data(50)
        payload = MLPRegressor(epochs=5).fit(X, y).to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            MLPRegressor.from_dict(payload)


class TestTrees:
    def test_tree_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert r2_score(y, pred) > 0.99

    def test_gbt_beats_single_tree(self):
        X, y = make_data()
        tree = RegressionTree(max_depth=3).fit(X[:200], y[:200])
        gbt = GradientBoostedTrees(n_estimators=80, max_depth=3).fit(X[:200], y[:200])
        assert rmse(y[200:], gbt.predict(X[200:])) < rmse(y[200:], tree.predict(X[200:]))

    def test_gbt_storage_exceeds_mlp(self):
        # The paper's cost argument: tree ensembles need far more
        # parameter storage than the small MLP.
        X, y = make_data(200)
        gbt = GradientBoostedTrees(n_estimators=100, max_depth=3).fit(X, y)
        mlp = MLPRegressor(epochs=10).fit(X, y)
        assert gbt.n_parameters > 5 * mlp.n_parameters

    def test_gbt_deterministic(self):
        X, y = make_data(100)
        a = GradientBoostedTrees(n_estimators=20, subsample=0.8, seed=5).fit(X, y)
        b = GradientBoostedTrees(n_estimators=20, subsample=0.8, seed=5).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict([[1.0]])
        with pytest.raises(RuntimeError):
            RegressionTree().predict([[1.0]])

    def test_invalid_subsample(self):
        X, y = make_data(50)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0).fit(X, y)

    def test_single_prediction(self):
        X, y = make_data(50)
        gbt = GradientBoostedTrees(n_estimators=5).fit(X, y)
        assert np.ndim(gbt.predict(X[0])) == 0
