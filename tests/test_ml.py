"""From-scratch regressors: MLP, gradient-boosted trees, metrics."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostedTrees,
    MLPRegressor,
    RegressionTree,
    StandardScaler,
    r2_score,
    relative_rmse,
    rmse,
)


def make_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 4, size=(n, 3))
    y = 2 * X[:, 0] + X[:, 1] * X[:, 2] + rng.normal(0, 0.1, n)
    return X, y


class TestMetrics:
    def test_perfect_prediction(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == pytest.approx(1.0)
        assert rmse(y, y) == 0.0
        assert relative_rmse(y, y) == 0.0

    def test_mean_prediction_r2_zero(self):
        y = np.asarray([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_rmse_value(self):
        assert rmse([0.0, 0.0], [1.0, -1.0]) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r2_score([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            rmse([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            r2_score([], [])

    def test_relative_rmse_zero_mean(self):
        with pytest.raises(ValueError):
            relative_rmse([1.0, -1.0], [0.0, 0.0])

    def test_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestScaler:
    def test_round_trip(self):
        X = np.random.default_rng(0).normal(3.0, 2.0, size=(50, 4))
        scaler = StandardScaler()
        Z = scaler.fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)
        assert np.allclose(scaler.inverse_transform(Z), X)

    def test_constant_column_passthrough(self):
        X = np.asarray([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 1], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            scaler.transform([[1.0]])


class TestMLP:
    def test_learns_nonlinear_function(self):
        X, y = make_data()
        model = MLPRegressor(epochs=200, seed=1).fit(X[:200], y[:200])
        pred = model.predict(X[200:])
        assert r2_score(y[200:], pred) > 0.95

    def test_deterministic_given_seed(self):
        X, y = make_data(100)
        a = MLPRegressor(epochs=50, seed=3).fit(X, y).predict(X)
        b = MLPRegressor(epochs=50, seed=3).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_loss_decreases(self):
        X, y = make_data(100)
        model = MLPRegressor(epochs=100, seed=0).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_paper_architecture_parameter_count(self):
        # Two hidden layers of 16 and 8 nodes (paper III-E).
        X, y = make_data(50)
        model = MLPRegressor(hidden=(16, 8), epochs=5).fit(X, y)
        expected = (3 * 16 + 16) + (16 * 8 + 8) + (8 * 1 + 1)
        assert model.n_parameters == expected

    def test_single_sample_prediction(self):
        X, y = make_data(50)
        model = MLPRegressor(epochs=20).fit(X, y)
        single = model.predict(X[0])
        assert np.isscalar(single) or np.ndim(single) == 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict([[1.0, 2.0, 3.0]])

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.zeros((1, 2)), np.zeros(1))


class TestTrees:
    def test_tree_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert r2_score(y, pred) > 0.99

    def test_gbt_beats_single_tree(self):
        X, y = make_data()
        tree = RegressionTree(max_depth=3).fit(X[:200], y[:200])
        gbt = GradientBoostedTrees(n_estimators=80, max_depth=3).fit(X[:200], y[:200])
        assert rmse(y[200:], gbt.predict(X[200:])) < rmse(y[200:], tree.predict(X[200:]))

    def test_gbt_storage_exceeds_mlp(self):
        # The paper's cost argument: tree ensembles need far more
        # parameter storage than the small MLP.
        X, y = make_data(200)
        gbt = GradientBoostedTrees(n_estimators=100, max_depth=3).fit(X, y)
        mlp = MLPRegressor(epochs=10).fit(X, y)
        assert gbt.n_parameters > 5 * mlp.n_parameters

    def test_gbt_deterministic(self):
        X, y = make_data(100)
        a = GradientBoostedTrees(n_estimators=20, subsample=0.8, seed=5).fit(X, y)
        b = GradientBoostedTrees(n_estimators=20, subsample=0.8, seed=5).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict([[1.0]])
        with pytest.raises(RuntimeError):
            RegressionTree().predict([[1.0]])

    def test_invalid_subsample(self):
        X, y = make_data(50)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0).fit(X, y)

    def test_single_prediction(self):
        X, y = make_data(50)
        gbt = GradientBoostedTrees(n_estimators=5).fit(X, y)
        assert np.ndim(gbt.predict(X[0])) == 0
