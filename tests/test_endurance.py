"""NVM endurance tracking (paper II-A constraint, modelled)."""

import pytest

from repro.core import Dispatcher, GlobalScheduler, OraclePredictor
from repro.harness import build_workload, run_workload
from repro.memories import RERAM_SPEC, TECHNOLOGIES, MemoryKind
from repro.memories.endurance import WearTracker, project_lifetime_seconds


class TestWearTracker:
    def make(self, endurance=1e8) -> WearTracker:
        return WearTracker(spec=RERAM_SPEC, endurance_writes=endurance)

    def test_budget_scales_with_capacity(self):
        tracker = self.make(endurance=100)
        assert tracker.total_cell_writes_budget == 100 * RERAM_SPEC.capacity_bytes

    def test_wear_fraction_accumulates(self):
        tracker = self.make(endurance=2)
        tracker.record_bytes(RERAM_SPEC.capacity_bytes)
        assert tracker.wear_fraction == pytest.approx(0.5)
        assert tracker.mean_writes_per_cell == pytest.approx(1.0)

    def test_admission_respects_reserve(self):
        tracker = self.make(endurance=1)
        budget = tracker.total_cell_writes_budget
        tracker.record_bytes(0.85 * budget)
        assert not tracker.admit(0.1 * budget, reserve_fraction=0.1)
        assert tracker.admit(0.01 * budget, reserve_fraction=0.1)

    def test_lifetime_projection(self):
        tracker = self.make(endurance=1)
        tracker.record_bytes(1e6, busy_seconds=1.0)  # 1 MB/s observed
        expected = RERAM_SPEC.capacity_bytes / 1e6
        assert tracker.projected_lifetime_seconds() == pytest.approx(expected)

    def test_unworn_device_lives_forever(self):
        assert self.make().projected_lifetime_seconds() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            WearTracker(spec=RERAM_SPEC, endurance_writes=0)
        tracker = self.make()
        with pytest.raises(ValueError):
            tracker.record_bytes(-1)
        with pytest.raises(ValueError):
            tracker.admit(1.0, reserve_fraction=1.0)

    def test_closed_form(self):
        assert project_lifetime_seconds(RERAM_SPEC, 1e8, 0) == float("inf")
        assert project_lifetime_seconds(RERAM_SPEC, 1e8, 1e9) == pytest.approx(
            1e8 * RERAM_SPEC.capacity_bytes / 1e9
        )


class TestIntegration:
    def test_gnn_workload_wear_quantifies_the_endurance_constraint(self):
        """Run a real GNN workload and quantify the paper's II-A
        endurance concern: one batch run barely dents the budget, but
        *sustained* full-duty SpMM fills (every job re-writes its B
        matrix into the crossbars) would wear a 1e8-write device out
        within days -- the reason wear-aware admission exists."""
        workload = build_workload("collab", num_batches=2, batch_size=16, seed=3)
        summary = run_workload(workload, GlobalScheduler(OraclePredictor()))
        # Track against the *scaled* device actually simulated.
        tracker = WearTracker(
            spec=workload.specs[MemoryKind.RERAM],
            endurance_writes=TECHNOLOGIES["ReRAM"].endurance_writes,
        )
        for result in summary.results:
            tracker.record_result(result)
        assert tracker.written_bytes > 0
        assert tracker.wear_fraction < 1e-6  # one run barely dents it
        # Sustained full-duty operation, however, is endurance-bound:
        lifetime = tracker.projected_lifetime_seconds()
        assert 60.0 < lifetime < 30 * 24 * 3600.0
        # SRAM at the same traffic is effectively unconstrained.
        sram = WearTracker(
            spec=workload.specs[MemoryKind.SRAM],
            endurance_writes=TECHNOLOGIES["SRAM"].endurance_writes,
        )
        sram.record_bytes(tracker.written_bytes, tracker.busy_seconds)
        assert sram.projected_lifetime_years() > 1e3
