"""GCN model -> MLIMP job stream."""

import pytest

from repro.gnn import GCNConfig, NeighborSampler, batch_jobs, gcn_jobs, generate
from repro.harness.config import scaled_specs
from repro.memories import DEFAULT_SPECS, MemoryKind


@pytest.fixture(scope="module")
def subgraph():
    graph = generate("collab")
    return NeighborSampler(graph, hops=3, fanout=(10, 8, 5), seed=2).sample(42)


class TestConfig:
    def test_three_layer(self):
        config = GCNConfig.three_layer(128, 256)
        assert config.num_layers == 3
        assert config.layer_dims == ((128, 256), (256, 256), (256, 256))

    def test_dims_must_chain(self):
        with pytest.raises(ValueError):
            GCNConfig(layer_dims=((128, 256), (128, 256)))

    def test_needs_layers(self):
        with pytest.raises(ValueError):
            GCNConfig(layer_dims=())

    def test_positive_dims(self):
        with pytest.raises(ValueError):
            GCNConfig(layer_dims=((0, 4),))


class TestJobGeneration:
    def test_three_kernels_per_layer(self, subgraph):
        config = GCNConfig.three_layer(128)
        jobs = gcn_jobs(subgraph, config, DEFAULT_SPECS, prefix="q")
        assert len(jobs) == 9
        kernels = [job.kernel for job in jobs]
        assert kernels == ["spmm", "gemm", "vadd"] * 3

    def test_spmm_jobs_carry_metadata(self, subgraph):
        config = GCNConfig.three_layer(128)
        jobs = gcn_jobs(subgraph, config, DEFAULT_SPECS, prefix="q")
        for job in jobs:
            if job.kernel == "spmm":
                assert job.metadata is not None
                assert "h_w" in job.tags

    def test_layer_dims_flow_into_jobs(self, subgraph):
        config = GCNConfig.three_layer(128, 256)
        jobs = gcn_jobs(subgraph, config, DEFAULT_SPECS, prefix="q")
        spmm0 = jobs[0]
        gemm0 = jobs[1]
        assert spmm0.tags["feature_dim"] == 128
        assert gemm0.tags["k"] == 128 and gemm0.tags["n"] == 256
        spmm1 = jobs[3]
        assert spmm1.tags["feature_dim"] == 256

    def test_memcpy_bypass_residency(self, subgraph):
        """Only the first layer loads node features; later kernels
        consume in-memory outputs (paper V-B1)."""
        config = GCNConfig.three_layer(128)
        jobs = gcn_jobs(subgraph, config, DEFAULT_SPECS, prefix="q")
        l0 = jobs[0].profile(MemoryKind.SRAM)
        l1 = jobs[3].profile(MemoryKind.SRAM)
        assert l0.fill_bytes > l1.fill_bytes
        gemm = jobs[1].profile(MemoryKind.SRAM)
        assert gemm.fill_bytes == 0
        vadd = jobs[2].profile(MemoryKind.SRAM)
        assert vadd.fill_bytes == 0

    def test_batch_jobs(self, subgraph):
        config = GCNConfig.three_layer(128)
        jobs = batch_jobs([subgraph, subgraph], config, DEFAULT_SPECS, batch_id=7)
        assert len(jobs) == 18
        assert jobs[0].job_id.startswith("b7/q0/")
        assert jobs[9].job_id.startswith("b7/q1/")

    def test_jobs_fit_scaled_devices(self, subgraph):
        """GCN jobs must remain schedulable on the scaled evaluation
        system (unit allocations iterate rather than overflow)."""
        specs = scaled_specs()
        config = GCNConfig.three_layer(128)
        jobs = gcn_jobs(subgraph, config, specs, prefix="q")
        for job in jobs:
            for kind, profile in job.profiles.items():
                assert profile.unit_arrays <= specs[kind].num_arrays
