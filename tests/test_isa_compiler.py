"""Cross-compilation of DFGs to per-target compiled kernels."""

import math

import pytest

from repro.isa import DFG, CompiledKernel, Op, compile_dfg, compile_for_all, op_cycles
from repro.memories import DEFAULT_SPECS, DRAM_SPEC, RERAM_SPEC, SRAM_SPEC, MemoryKind


def mac_kernel() -> DFG:
    d = DFG("mac")
    a = d.input("a")
    b = d.input("b")
    m = d.node("m", Op.MAC, a, b)
    d.output(m)
    return d


def bitwise_kernel() -> DFG:
    d = DFG("bitscan")
    x = d.input("x")
    k = d.const("mask")
    a = d.node("a", Op.AND, x, k)
    o = d.node("o", Op.XOR, a, k)
    d.output(o)
    return d


class TestCompile:
    def test_cycles_sum_of_node_costs(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        assert ck.cycles_per_element == op_cycles(MemoryKind.SRAM, Op.MAC)

    def test_compile_for_all_targets(self):
        kernels = compile_for_all(mac_kernel(), DEFAULT_SPECS)
        assert set(kernels) == set(MemoryKind)
        assert kernels[MemoryKind.RERAM].cycles_per_element == 8
        assert kernels[MemoryKind.DRAM].cycles_per_element == 1510

    def test_input_bytes_counted(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        assert ck.input_bytes_per_element == 2 * 2  # two 16-bit inputs
        assert ck.output_bytes_per_element == 2

    def test_invalid_dfg_rejected(self):
        d = DFG("empty")
        d.input("x")
        with pytest.raises(Exception):
            compile_dfg(d, SRAM_SPEC)

    def test_energy_positive_and_target_dependent(self):
        kernels = compile_for_all(mac_kernel(), DEFAULT_SPECS)
        for ck in kernels.values():
            assert ck.energy_per_element_pj > 0
        # ReRAM analog MAC is the cheapest per-op energy here.
        assert (
            kernels[MemoryKind.RERAM].energy_per_element_pj
            < kernels[MemoryKind.SRAM].energy_per_element_pj
        )

    def test_bitwise_energy_uses_bitop_rate(self):
        ck = compile_dfg(bitwise_kernel(), DRAM_SPEC)
        # two bitwise frontend ops (XOR lowers to AND/OR/NOT bag)
        assert ck.energy_per_element_pj < 5  # far below a DRAM MAC (60 pJ)


class TestComputeSeconds:
    def test_single_wave(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        lanes = SRAM_SPEC.alus_per_array
        t = ck.compute_seconds(SRAM_SPEC, elements=lanes, arrays=1)
        assert t == pytest.approx(SRAM_SPEC.seconds(ck.cycles_per_element))

    def test_waves_round_up(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        lanes = SRAM_SPEC.alus_per_array
        t1 = ck.compute_seconds(SRAM_SPEC, elements=lanes, arrays=1)
        t2 = ck.compute_seconds(SRAM_SPEC, elements=lanes + 1, arrays=1)
        assert t2 == pytest.approx(2 * t1)

    def test_more_arrays_fewer_waves(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        n = SRAM_SPEC.alus_per_array * 64
        t1 = ck.compute_seconds(SRAM_SPEC, elements=n, arrays=1)
        t64 = ck.compute_seconds(SRAM_SPEC, elements=n, arrays=64)
        assert t1 == pytest.approx(64 * t64)

    def test_zero_elements_free(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        assert ck.compute_seconds(SRAM_SPEC, 0, 1) == 0.0

    def test_requires_positive_arrays(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        with pytest.raises(ValueError):
            ck.compute_seconds(SRAM_SPEC, 10, 0)

    def test_wrong_target_spec_rejected(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        with pytest.raises(ValueError):
            ck.compute_seconds(DRAM_SPEC, 10, 1)


class TestPacking:
    def test_dram_narrow_vectors_waste_lanes(self):
        """Paper V-B1: GNN feature vectors cannot fill DRAM SIMD rows."""
        ck = compile_dfg(mac_kernel(), DRAM_SPEC)
        assert ck.lanes_per_array(DRAM_SPEC, vector_width=256) == 256
        assert ck.lanes_per_array(DRAM_SPEC, vector_width=None) == 65536

    def test_sram_packs_narrow_vectors(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        assert ck.lanes_per_array(SRAM_SPEC, vector_width=64) == 256

    def test_reram_pack_limit(self):
        ck = compile_dfg(mac_kernel(), RERAM_SPEC)
        assert ck.lanes_per_array(RERAM_SPEC, vector_width=1) == 16

    def test_invalid_vector_width(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        with pytest.raises(ValueError):
            ck.lanes_per_array(SRAM_SPEC, vector_width=0)

    def test_dram_utilisation_penalty_in_time(self):
        ck = compile_dfg(mac_kernel(), DRAM_SPEC)
        n = 65536
        narrow = ck.compute_seconds(DRAM_SPEC, n, arrays=1, vector_width=256)
        wide = ck.compute_seconds(DRAM_SPEC, n, arrays=1, vector_width=None)
        assert narrow == pytest.approx(256 * wide)

    def test_compute_energy(self):
        ck = compile_dfg(mac_kernel(), SRAM_SPEC)
        assert ck.compute_energy_j(0) == 0.0
        assert ck.compute_energy_j(1_000_000) == pytest.approx(
            ck.energy_per_element_pj * 1e-6, rel=1e-9
        )
