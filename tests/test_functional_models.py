"""Functional compute models: the mechanisms behind the timing claims.

These tests *execute* the in-memory compute mechanisms the paper
builds on -- bit-serial SRAM arithmetic, Ambit triple-row activation,
the analog ReRAM crossbar -- and check both the numerical results and
the published cycle counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memories.bitserial import BitSerialArray
from repro.memories.crossbar import AnalogCrossbar
from repro.memories.tra import AmbitBank


class TestBitSerial:
    def test_add_matches_integer_arithmetic(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << 16, size=64)
        b = rng.integers(0, 1 << 16, size=64)
        array = BitSerialArray(lanes=64)
        array.store("a", a)
        array.store("b", b)
        array.add("out", "a", "b")
        assert np.array_equal(array.load("out"), (a + b) & 0xFFFF)

    def test_add_takes_n_cycles(self):
        """Paper II-B1: 'addition of two n bit numbers in n cycles'."""
        array = BitSerialArray(lanes=8, bits=16)
        array.store("a", np.arange(8))
        array.store("b", np.arange(8))
        assert array.add("out", "a", "b") == 16

    def test_multiply_matches_integer_arithmetic(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1 << 16, size=64)
        b = rng.integers(0, 1 << 16, size=64)
        array = BitSerialArray(lanes=64)
        array.store("a", a)
        array.store("b", b)
        array.multiply("out", "a", "b")
        assert np.array_equal(array.load("out"), (a * b) & 0xFFFF)

    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_multiply_cycle_formula(self, bits):
        """Paper II-B1: multiplication takes n^2 + 3n - 2 cycles --
        measured on the functional model, and the constant Table III
        builds on (302 at n = 16)."""
        array = BitSerialArray(lanes=4, bits=bits, rows=16 * bits)
        array.store("a", np.asarray([1, 2, 3, 4]))
        array.store("b", np.asarray([5, 6, 7, 8]))
        assert array.multiply("out", "a", "b") == bits * bits + 3 * bits - 2

    def test_bitwise_one_cycle_per_slice(self):
        array = BitSerialArray(lanes=4, bits=16)
        a = np.asarray([0b1100, 0b1010, 0xFFFF, 0])
        b = np.asarray([0b1010, 0b0110, 0x0F0F, 0xFFFF])
        array.store("a", a)
        array.store("b", b)
        assert array.bitwise("x", "a", "b", "xor") == 16
        assert np.array_equal(array.load("x"), a ^ b)
        array.bitwise("n", "a", "b", "and")
        assert np.array_equal(array.load("n"), a & b)

    def test_capacity_enforced(self):
        array = BitSerialArray(lanes=4, bits=16, rows=32)  # two registers
        array.store("a", np.zeros(4, dtype=int))
        array.store("b", np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            array.store("c", np.zeros(4, dtype=int))

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 16) - 1),
        b=st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    def test_arithmetic_property(self, a, b):
        array = BitSerialArray(lanes=1, bits=16, rows=64)
        array.store("a", np.asarray([a]))
        array.store("b", np.asarray([b]))
        array.add("s", "a", "b")
        array.multiply("p", "a", "b")
        assert array.load("s")[0] == (a + b) & 0xFFFF
        assert array.load("p")[0] == (a * b) & 0xFFFF


class TestAmbit:
    def make_bank(self, a_bits, b_bits):
        bank = AmbitBank(columns=len(a_bits))
        bank.write_row("a", np.asarray(a_bits, dtype=bool))
        bank.write_row("b", np.asarray(b_bits, dtype=bool))
        return bank

    def test_tra_is_majority(self):
        bank = AmbitBank(columns=4)
        bank.write_row("x", [1, 1, 0, 0])
        bank.write_row("y", [1, 0, 1, 0])
        bank.write_row("z", [0, 1, 1, 0])
        bank.tra("x", "y", "z")
        expected = [True, True, True, False]
        for row in ("x", "y", "z"):  # destructive: all three overwritten
            assert list(bank.read_row(row)) == expected

    def test_and_via_control_zero(self):
        bank = self.make_bank([1, 1, 0, 0], [1, 0, 1, 0])
        bank.and_rows("out", "a", "b")
        assert list(bank.read_row("out")) == [True, False, False, False]
        # Operands survive (scratch copies were consumed instead).
        assert list(bank.read_row("a")) == [True, True, False, False]

    def test_or_via_control_one(self):
        bank = self.make_bank([1, 1, 0, 0], [1, 0, 1, 0])
        bank.or_rows("out", "a", "b")
        assert list(bank.read_row("out")) == [True, True, True, False]

    def test_nand_universality_gives_xor(self):
        """AND + NOT = NAND is functionally complete (paper II-B2):
        XOR composed purely from NANDs computes correctly."""
        bank = self.make_bank([1, 1, 0, 0], [1, 0, 1, 0])
        bank.xor_rows("out", "a", "b")
        assert list(bank.read_row("out")) == [False, True, True, False]

    def test_cycle_accounting(self):
        bank = self.make_bank([1, 0], [1, 1])
        before = bank.cycles
        bank.and_rows("out", "a", "b")
        # 3 RowClones + control write + 1 TRA.
        assert bank.cycles - before >= 4 + 3 * 2

    def test_row_capacity(self):
        bank = AmbitBank(columns=2, rows=4)
        for i in range(4):
            bank.write_row(f"r{i}", [0, 1])
        with pytest.raises(ValueError):
            bank.write_row("r4", [1, 1])

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(st.booleans(), min_size=8, max_size=8),
        b=st.lists(st.booleans(), min_size=8, max_size=8),
    )
    def test_derived_logic_property(self, a, b):
        bank = self.make_bank(a, b)
        bank.and_rows("and", "a", "b")
        bank.or_rows("or", "a", "b")
        bank.xor_rows("xor", "a", "b")
        av, bv = np.asarray(a, dtype=bool), np.asarray(b, dtype=bool)
        assert np.array_equal(bank.read_row("and"), av & bv)
        assert np.array_equal(bank.read_row("or"), av | bv)
        assert np.array_equal(bank.read_row("xor"), av ^ bv)


class TestCrossbar:
    def test_table3_geometry(self):
        xbar = AnalogCrossbar()
        assert xbar.weights_per_row == 16  # 128 cells / 8 cells per weight
        assert xbar.cells_per_weight == 8

    def test_mac_matches_matrix_product(self):
        rng = np.random.default_rng(2)
        xbar = AnalogCrossbar(rows=32, cols=32, weight_bits=8)
        weights = rng.integers(0, 256, size=(32, xbar.weights_per_row))
        inputs = rng.integers(0, 256, size=32)
        xbar.program(weights)
        out = xbar.mac(inputs)
        assert np.array_equal(out, inputs @ weights)

    def test_multi_operand_row_masking(self):
        """The bitline sums only the activated rows -- the k-operand
        accumulation the SpMM mapping exploits."""
        xbar = AnalogCrossbar(rows=16, cols=16, weight_bits=8)
        weights = np.arange(16 * xbar.weights_per_row).reshape(16, -1) % 256
        inputs = np.full(16, 3, dtype=np.int64)
        xbar.program(weights)
        active = [1, 4, 9]
        out = xbar.mac(inputs, active_rows=active)
        expected = inputs[active] @ weights[active]
        assert np.array_equal(out, expected)

    def test_cycles_equal_input_bit_slices(self):
        xbar = AnalogCrossbar(rows=16, cols=16, weight_bits=8)
        xbar.program(np.zeros((16, xbar.weights_per_row), dtype=int))
        xbar.mac(np.zeros(16, dtype=int))
        assert xbar.cycles == 8  # one analog step per input bit

    def test_undersized_adc_saturates(self):
        """The precision hazard the in-ReRAM literature engineers
        around: a narrow ADC clips large bitline sums."""
        xbar = AnalogCrossbar(rows=64, cols=16, weight_bits=8, adc_bits=4)
        weights = np.full((64, xbar.weights_per_row), 255, dtype=np.int64)
        inputs = np.full(64, 255, dtype=np.int64)
        xbar.program(weights)
        out = xbar.mac(inputs)
        assert (out < inputs @ weights).all()

    def test_program_validation(self):
        xbar = AnalogCrossbar(rows=8, cols=16, weight_bits=8)
        with pytest.raises(ValueError):
            xbar.program(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            xbar.program(np.full((8, xbar.weights_per_row), 1 << 9))

    def test_input_validation(self):
        xbar = AnalogCrossbar(rows=8, cols=16, weight_bits=8)
        xbar.program(np.zeros((8, xbar.weights_per_row), dtype=int))
        with pytest.raises(ValueError):
            xbar.mac(np.zeros(4, dtype=int))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_mac_property(self, seed):
        rng = np.random.default_rng(seed)
        xbar = AnalogCrossbar(rows=8, cols=8, weight_bits=4)
        weights = rng.integers(0, 16, size=(8, xbar.weights_per_row))
        inputs = rng.integers(0, 16, size=8)
        xbar.program(weights)
        assert np.array_equal(xbar.mac(inputs), inputs @ weights)
