"""Wear-aware scheduling: the endurance extension acted on."""

import pytest

from repro.core import (
    AdaptiveScheduler,
    Dispatcher,
    Job,
    JobPerfProfile,
    MLIMPSystem,
    OraclePredictor,
)
from repro.core.scheduler import WearAwareScheduler, restrict_worn_memories
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec
from repro.memories.endurance import WearTracker


def spec(kind: MemoryKind) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"w-{kind.value}",
        geometry=ArrayGeometry(32, 32),
        num_arrays=32,
        alus_per_array=32,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=2,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=50.0,
        copy_bandwidth_gbps=50.0,
        max_outstanding_jobs=4,
    )


@pytest.fixture
def system() -> MLIMPSystem:
    return MLIMPSystem(
        specs={
            MemoryKind.SRAM: spec(MemoryKind.SRAM),
            MemoryKind.RERAM: spec(MemoryKind.RERAM),
        }
    )


def reram_preferring_job(i: int, fill_bytes: float = 1e4) -> Job:
    def profile(t_compute):
        return JobPerfProfile(
            unit_arrays=4,
            t_load=1e-7,
            t_replica_unit=1e-8,
            t_compute_unit=t_compute,
            waves_unit=8,
            fill_bytes=fill_bytes,
        )

    return Job(
        job_id=f"w{i}",
        kernel="app",
        profiles={
            MemoryKind.SRAM: profile(2e-5),
            MemoryKind.RERAM: profile(1e-5),  # ReRAM is 2x faster
        },
    )


def fresh_tracker(system, kind, endurance=1e6) -> WearTracker:
    return WearTracker(spec=system.specs[kind], endurance_writes=endurance)


class TestRestriction:
    def test_unworn_tracker_changes_nothing(self, system):
        jobs = [reram_preferring_job(0)]
        trackers = {MemoryKind.RERAM: fresh_tracker(system, MemoryKind.RERAM)}
        out = restrict_worn_memories(jobs, trackers)
        assert out[0] is jobs[0]  # untouched object

    def test_worn_memory_filtered(self, system):
        jobs = [reram_preferring_job(0)]
        tracker = fresh_tracker(system, MemoryKind.RERAM)
        tracker.record_bytes(tracker.total_cell_writes_budget)  # exhausted
        out = restrict_worn_memories(jobs, {MemoryKind.RERAM: tracker})
        assert MemoryKind.RERAM not in out[0].profiles
        assert MemoryKind.SRAM in out[0].profiles

    def test_job_with_no_alternative_keeps_least_worn(self, system):
        job = Job(
            job_id="only-reram",
            kernel="app",
            profiles={
                MemoryKind.RERAM: reram_preferring_job(0).profiles[MemoryKind.RERAM]
            },
        )
        tracker = fresh_tracker(system, MemoryKind.RERAM)
        tracker.record_bytes(tracker.total_cell_writes_budget)
        out = restrict_worn_memories([job], {MemoryKind.RERAM: tracker})
        assert MemoryKind.RERAM in out[0].profiles  # still runnable


class TestScheduler:
    def test_jobs_divert_off_worn_reram(self, system):
        jobs = [reram_preferring_job(i) for i in range(8)]
        tracker = fresh_tracker(system, MemoryKind.RERAM)
        scheduler = WearAwareScheduler(
            inner=AdaptiveScheduler(OraclePredictor()),
            trackers={MemoryKind.RERAM: tracker},
        )
        dispatcher = Dispatcher(system)

        healthy = dispatcher.run(scheduler.plan(jobs, system))
        assert any(r.kind is MemoryKind.RERAM for r in healthy.records.values())

        tracker.record_bytes(tracker.total_cell_writes_budget)
        worn = dispatcher.run(scheduler.plan(jobs, system))
        assert all(r.kind is MemoryKind.SRAM for r in worn.records.values())

    def test_name_reflects_inner(self, system):
        scheduler = WearAwareScheduler(
            inner=AdaptiveScheduler(OraclePredictor()), trackers={}
        )
        assert scheduler.name == "wear-aware(adaptive)"
