"""Differential verification of every heuristic against the oracle.

The exact solver turns each scheduler into a differentially testable
component: on seeded small instances run through the **real** sim
engine,

* no heuristic may ever finish before the certified optimum (a
  heuristic "beating" the oracle means a bug in one of them),
* the oracle's own schedule, replayed through the dispatcher, must
  reproduce the solver's predicted makespan bit-for-bit (the solver
  models the event cascade, not an approximation of it), and
* the whole gap table must be deterministic across runs (it is pinned
  in EXPERIMENTS.md and diffed byte-for-byte by CI).
"""

import json

import pytest

from repro.harness.optgap import (
    DEFAULT_BASE_SEED,
    HEURISTICS,
    optgap_payload,
    optimality_gap,
    run_instance,
)

N_INSTANCES = 40


@pytest.fixture(scope="module")
def sweep():
    """One row per seeded instance: exact optimum, replay, and every
    heuristic's simulated makespan (computed once for the module)."""
    return [run_instance(DEFAULT_BASE_SEED + i) for i in range(N_INSTANCES)]


class TestHeuristicsNeverBeatTheOracle:
    def test_sweep_is_large_enough(self, sweep):
        assert len(sweep) >= 40
        assert {name for row in sweep for name in row["schedulers"]} == set(
            HEURISTICS
        )

    @pytest.mark.parametrize("name", HEURISTICS)
    def test_simulated_makespan_at_least_optimal(self, sweep, name):
        for row in sweep:
            makespan = row["schedulers"][name]["makespan"]
            assert makespan >= row["optimal"], (
                f"{name} beat the exact optimum on seed {row['seed']}: "
                f"{makespan} < {row['optimal']}"
            )

    @pytest.mark.parametrize("name", HEURISTICS)
    def test_gaps_are_nonnegative_and_finite(self, sweep, name):
        for row in sweep:
            gap = row["schedulers"][name]["gap"]
            assert gap >= 0.0
            assert gap < 10.0  # a 10x gap on 5-8 jobs means a bug, not a gap

    def test_some_instance_is_solved_optimally(self, sweep):
        # Sanity that the sweep is not degenerate: at least one
        # heuristic matches the optimum somewhere, and at least one
        # instance shows a strictly positive gap.
        gaps = [
            row["schedulers"][name]["gap"]
            for row in sweep
            for name in HEURISTICS
        ]
        assert any(gap == 0.0 for gap in gaps)
        assert any(gap > 0.0 for gap in gaps)


class TestExactReplay:
    def test_replay_reproduces_prediction_bit_for_bit(self, sweep):
        for row in sweep:
            assert row["replay_exact"], (
                f"seed {row['seed']}: dispatcher replay {row['replayed']} "
                f"!= solver prediction {row['optimal']}"
            )


class TestDeterminism:
    def test_payload_is_byte_identical_across_runs(self):
        first = json.dumps(optgap_payload(n_instances=6), sort_keys=True)
        second = json.dumps(optgap_payload(n_instances=6), sort_keys=True)
        assert first == second

    def test_sweep_rows_match_payload(self, sweep):
        payload = optgap_payload(n_instances=N_INSTANCES)
        assert payload["instances"] == sweep
        assert payload["replays_exact"]

    def test_report_has_a_row_per_scheduler(self):
        report = optimality_gap(n_instances=4)
        payload = report.to_json_dict()
        schedulers = [row[0] for row in payload["rows"]]
        assert schedulers == list(HEURISTICS)
