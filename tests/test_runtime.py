"""MLIMPRuntime facade."""

import pytest

from repro.core import (
    GlobalScheduler,
    Job,
    JobPerfProfile,
    MLIMPRuntime,
    MLIMPSystem,
    OraclePredictor,
)
from repro.core.dispatcher import DispatchError
from repro.core.scheduler.base import (
    Dispatch,
    DispatchPolicy,
    ResourceView,
    Scheduler,
)
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec


def spec(kind: MemoryKind) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"rt-{kind.value}",
        geometry=ArrayGeometry(32, 32),
        num_arrays=32,
        alus_per_array=32,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=2,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=50.0,
        copy_bandwidth_gbps=50.0,
        max_outstanding_jobs=4,
    )


@pytest.fixture
def system() -> MLIMPSystem:
    return MLIMPSystem(
        specs={MemoryKind.SRAM: spec(MemoryKind.SRAM), MemoryKind.RERAM: spec(MemoryKind.RERAM)}
    )


def job(i: int) -> Job:
    profile = JobPerfProfile(
        unit_arrays=4,
        t_load=1e-7,
        t_replica_unit=1e-8,
        t_compute_unit=1e-5 * (1 + i % 3),
        waves_unit=8,
        fill_bytes=1e3,
        compute_energy_j=1e-10,
    )
    return Job(
        job_id=f"rt{i}",
        kernel="app",
        profiles={MemoryKind.SRAM: profile, MemoryKind.RERAM: profile},
    )


class TestRuntime:
    def test_submit_run_clears_queue(self, system):
        runtime = MLIMPRuntime(system)
        runtime.submit_many(job(i) for i in range(6))
        assert runtime.pending == 6
        result = runtime.run()
        assert runtime.pending == 0
        assert len(result.records) == 6
        assert runtime.history == [result]

    def test_scheduler_selection_by_name(self, system):
        for name in ("ljf", "adaptive", "global"):
            runtime = MLIMPRuntime(system, scheduler=name)
            runtime.submit(job(0))
            result = runtime.run()
            assert result.scheduler_name == name

    def test_scheduler_instance_accepted(self, system):
        runtime = MLIMPRuntime(
            system, scheduler=GlobalScheduler(OraclePredictor(), intra_queue=False)
        )
        runtime.submit(job(0))
        assert runtime.run().makespan > 0

    def test_unknown_scheduler_rejected(self, system):
        with pytest.raises(ValueError):
            MLIMPRuntime(system, scheduler="magic")

    def test_plan_preview_covers_queue(self, system):
        runtime = MLIMPRuntime(system)
        runtime.submit_many(job(i) for i in range(5))
        preview = runtime.plan_preview()
        assert set(preview) == {f"rt{i}" for i in range(5)}
        for memory, arrays in preview.values():
            assert memory in ("sram", "reram")
            assert arrays >= 1
        # Preview does not consume the queue.
        assert runtime.pending == 5

    def test_oracle_bound(self, system):
        runtime = MLIMPRuntime(system)
        assert runtime.oracle_bound() == 0.0
        runtime.submit_many(job(i) for i in range(4))
        bound = runtime.oracle_bound()
        result = runtime.run()
        assert bound <= result.makespan * 1.0001

    def test_multiple_runs_accumulate_history(self, system):
        runtime = MLIMPRuntime(system)
        runtime.submit(job(0))
        runtime.run()
        runtime.submit(job(1))
        runtime.run()
        assert len(runtime.history) == 2


class _OneAtATimePolicy(DispatchPolicy):
    """Releases one job per completion: exercises the preview's
    completion feedback (a static drain would stall after job one)."""

    def __init__(self, jobs: list[Job]):
        self._jobs = list(jobs)
        self._in_flight = 0

    def pending(self) -> int:
        return len(self._jobs)

    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        if self._in_flight or not self._jobs:
            return []
        self._in_flight = 1
        return [Dispatch(job=self._jobs.pop(0), kind=MemoryKind.SRAM, arrays=4)]

    def notify_completion(self, job, kind, now) -> None:
        self._in_flight = 0


class _OneAtATimeScheduler(Scheduler):
    name = "one-at-a-time"

    def plan(self, jobs, system):
        return _OneAtATimePolicy(jobs)


class _StuckScheduler(Scheduler):
    """Plans a policy that never dispatches anything."""

    name = "stuck"

    class _Policy(DispatchPolicy):
        def pending(self) -> int:
            return 1

        def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
            return []

    def plan(self, jobs, system):
        return self._Policy()


class TestPlanPreview:
    def test_completion_driven_policy_fully_drains(self, system):
        """The preview must feed completions back so policies that
        release work one completion at a time unwind completely."""
        runtime = MLIMPRuntime(system, scheduler=_OneAtATimeScheduler())
        runtime.submit_many(job(i) for i in range(5))
        preview = runtime.plan_preview()
        assert set(preview) == {f"rt{i}" for i in range(5)}

    def test_stalled_policy_raises(self, system):
        """A partial preview is never returned silently."""
        runtime = MLIMPRuntime(system, scheduler=_StuckScheduler())
        runtime.submit(job(0))
        with pytest.raises(DispatchError, match="stalled"):
            runtime.plan_preview()

    def test_adaptive_preview_matches_run(self, system):
        """The adaptive policy is completion-driven (backfill); its
        preview must still cover the whole queue."""
        runtime = MLIMPRuntime(system, scheduler="adaptive")
        runtime.submit_many(job(i) for i in range(8))
        preview = runtime.plan_preview()
        assert set(preview) == {f"rt{i}" for i in range(8)}
        result = runtime.run()
        assert set(result.records) == set(preview)


class TestSchedulerInstanceReuse:
    def test_injected_instance_reused_across_runs(self, system):
        """One Scheduler *instance* must serve several run() calls:
        plan() is called afresh each time and leftover policy state
        from run 1 must not leak into run 2."""
        scheduler = GlobalScheduler(OraclePredictor(), intra_queue=False)
        runtime = MLIMPRuntime(system, scheduler=scheduler)

        runtime.submit_many(job(i) for i in range(4))
        first = runtime.run()
        assert set(first.records) == {f"rt{i}" for i in range(4)}

        runtime.submit_many(job(i) for i in range(4, 7))
        second = runtime.run()
        assert set(second.records) == {f"rt{i}" for i in range(4, 7)}
        assert second.scheduler_name == first.scheduler_name == "global"
        # Both runs produced usable observability reports.
        for result in (first, second):
            report = result.report()
            assert report.n_jobs == len(result.records)
            assert all(
                0.0 <= dev.utilisation <= 1.0 for dev in report.devices.values()
            )

    def test_stateful_custom_scheduler_reused(self, system):
        """plan() is invoked once per run, even on a shared instance."""

        class CountingScheduler(_OneAtATimeScheduler):
            def __init__(self):
                self.plans = 0

            def plan(self, jobs, system):
                self.plans += 1
                return super().plan(jobs, system)

        scheduler = CountingScheduler()
        runtime = MLIMPRuntime(system, scheduler=scheduler)
        runtime.submit(job(0))
        runtime.run()
        runtime.submit(job(1))
        runtime.run()
        assert scheduler.plans == 2
        assert len(runtime.history) == 2
