"""MLIMPRuntime facade."""

import pytest

from repro.core import (
    GlobalScheduler,
    Job,
    JobPerfProfile,
    MLIMPRuntime,
    MLIMPSystem,
    OraclePredictor,
)
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec


def spec(kind: MemoryKind) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"rt-{kind.value}",
        geometry=ArrayGeometry(32, 32),
        num_arrays=32,
        alus_per_array=32,
        clock_mhz=1000.0,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=2,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=50.0,
        copy_bandwidth_gbps=50.0,
        max_outstanding_jobs=4,
    )


@pytest.fixture
def system() -> MLIMPSystem:
    return MLIMPSystem(
        specs={MemoryKind.SRAM: spec(MemoryKind.SRAM), MemoryKind.RERAM: spec(MemoryKind.RERAM)}
    )


def job(i: int) -> Job:
    profile = JobPerfProfile(
        unit_arrays=4,
        t_load=1e-7,
        t_replica_unit=1e-8,
        t_compute_unit=1e-5 * (1 + i % 3),
        waves_unit=8,
        fill_bytes=1e3,
        compute_energy_j=1e-10,
    )
    return Job(
        job_id=f"rt{i}",
        kernel="app",
        profiles={MemoryKind.SRAM: profile, MemoryKind.RERAM: profile},
    )


class TestRuntime:
    def test_submit_run_clears_queue(self, system):
        runtime = MLIMPRuntime(system)
        runtime.submit_many(job(i) for i in range(6))
        assert runtime.pending == 6
        result = runtime.run()
        assert runtime.pending == 0
        assert len(result.records) == 6
        assert runtime.history == [result]

    def test_scheduler_selection_by_name(self, system):
        for name in ("ljf", "adaptive", "global"):
            runtime = MLIMPRuntime(system, scheduler=name)
            runtime.submit(job(0))
            result = runtime.run()
            assert result.scheduler_name == name

    def test_scheduler_instance_accepted(self, system):
        runtime = MLIMPRuntime(
            system, scheduler=GlobalScheduler(OraclePredictor(), intra_queue=False)
        )
        runtime.submit(job(0))
        assert runtime.run().makespan > 0

    def test_unknown_scheduler_rejected(self, system):
        with pytest.raises(ValueError):
            MLIMPRuntime(system, scheduler="magic")

    def test_plan_preview_covers_queue(self, system):
        runtime = MLIMPRuntime(system)
        runtime.submit_many(job(i) for i in range(5))
        preview = runtime.plan_preview()
        assert set(preview) == {f"rt{i}" for i in range(5)}
        for memory, arrays in preview.values():
            assert memory in ("sram", "reram")
            assert arrays >= 1
        # Preview does not consume the queue.
        assert runtime.pending == 5

    def test_oracle_bound(self, system):
        runtime = MLIMPRuntime(system)
        assert runtime.oracle_bound() == 0.0
        runtime.submit_many(job(i) for i in range(4))
        bound = runtime.oracle_bound()
        result = runtime.run()
        assert bound <= result.makespan * 1.0001

    def test_multiple_runs_accumulate_history(self, system):
        runtime = MLIMPRuntime(system)
        runtime.submit(job(0))
        runtime.run()
        runtime.submit(job(1))
        runtime.run()
        assert len(runtime.history) == 2
