"""Differential gates for the columnar simulation hot path.

The dispatcher runs its phase chain either through per-launch Python
closures (the object path) or through the struct-of-arrays flight
table (the columnar path, ``perfmodel.configure(columnar=...)``).
Both must be **byte-identical**: same traces, same reports, same
exported payloads -- across the Fig. 11/15/19 bench scenarios, under a
seeded fault plan, and in a seeded open-system serving run.  These
gates are what let every other test run on a single path.
"""

import json

import pytest

from repro.apps import combo_jobs
from repro.core import perfmodel
from repro.harness.experiments import (
    _workload,
    fig11_kernel_speedup,
    fig15_scheduler_predictor,
    fig19_combo_schedulers,
)
from repro.memories import DEFAULT_SPECS
from repro.obs.export import result_payload
from repro.serving import PoissonArrivals, ServingRuntime, Tenant
from repro.harness.config import full_system
from tests.prophelpers import (
    SCHEDULERS,
    make_jobs,
    random_plan,
    run_batch,
    trace_key,
)


@pytest.fixture(autouse=True)
def _restore_columnar():
    yield
    perfmodel.configure(columnar=True)


def both_paths(thunk):
    """Evaluate ``thunk`` once per dispatch path, columnar first."""
    perfmodel.configure(columnar=True)
    columnar = thunk()
    perfmodel.configure(columnar=False)
    objects = thunk()
    perfmodel.configure(columnar=True)
    return columnar, objects


def payload_json(result) -> str:
    return json.dumps(result_payload(result), sort_keys=True)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("seed", (0, 7))
def test_batch_traces_byte_identical(scheduler, seed):
    a, b = both_paths(lambda: run_batch(scheduler, make_jobs(seed)))
    assert trace_key(a) == trace_key(b)
    assert a.makespan == b.makespan
    assert payload_json(a) == payload_json(b)


@pytest.mark.parametrize("combo", ("A", "D"))
def test_fig19_combo_traces_byte_identical(combo):
    a, b = both_paths(
        lambda: run_batch("global", combo_jobs(combo, DEFAULT_SPECS))
    )
    assert trace_key(a) == trace_key(b)
    assert payload_json(a) == payload_json(b)


def test_fig11_scenario_identical():
    a, b = both_paths(lambda: fig11_kernel_speedup("collab").to_json_dict())
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_fig15_scenario_identical():
    mlp = _workload("collab").train_predictor()
    a, b = both_paths(
        lambda: fig15_scheduler_predictor("collab", mlp=mlp).to_json_dict()
    )
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_fig19_scenario_identical():
    a, b = both_paths(
        lambda: fig19_combo_schedulers(("A", "B")).to_json_dict()
    )
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_seeded_fault_run_byte_identical(scheduler):
    plan = random_plan(3, 0.05, n_events=6)
    a, b = both_paths(
        lambda: run_batch(scheduler, make_jobs(3), faults=plan)
    )
    assert trace_key(a) == trace_key(b)
    assert a.failed_jobs == b.failed_jobs
    assert a.fault_summary == b.fault_summary
    assert payload_json(a) == payload_json(b)


def test_seeded_serving_report_byte_identical():
    def serve():
        runtime = ServingRuntime(full_system(), scheduler="adaptive")
        return runtime.serve(
            PoissonArrivals(
                rate=2e3, horizon=0.02, seed=7, tenants=("a", "b")
            ),
            tenants=[Tenant("a"), Tenant("b", weight=2.0)],
            slo_s=0.01,
        )

    a, b = both_paths(serve)
    assert json.dumps(a.report.as_dict(), sort_keys=True) == json.dumps(
        b.report.as_dict(), sort_keys=True
    )
    assert trace_key(a.result) == trace_key(b.result)
