"""Smaller surfaces: report formatting, mapping helpers, estimates."""

import pytest

from repro.core import JobPerfProfile
from repro.core.perfmodel import ProfileEstimate
from repro.harness import fmt_ratio, fmt_time
from repro.kernels.mapping import cap_unit_arrays, spmm_strip_width
from repro.memories import DRAM_SPEC, RERAM_SPEC, SRAM_SPEC


class TestFormatting:
    def test_fmt_time_scales(self):
        assert fmt_time(0) == "0"
        assert fmt_time(1.5) == "1.50s"
        assert fmt_time(2.5e-3) == "2.50ms"
        assert fmt_time(3.2e-6) == "3.20us"
        assert fmt_time(8e-9) == "8.00ns"

    def test_fmt_ratio(self):
        assert fmt_ratio(4.8) == "4.80x"


class TestCapUnit:
    def test_within_cap_untouched(self):
        unit, n_iter = cap_unit_arrays(SRAM_SPEC, 100)
        assert (unit, n_iter) == (100, 1)

    def test_oversized_unit_iterates(self):
        huge = SRAM_SPEC.num_arrays * 3
        unit, n_iter = cap_unit_arrays(SRAM_SPEC, huge)
        assert unit == SRAM_SPEC.num_arrays // 2
        assert unit * n_iter >= huge

    def test_strip_width_monotone_in_feature_dim(self):
        # Wider features leave room for fewer stationary B rows.
        assert spmm_strip_width(SRAM_SPEC, 64) >= spmm_strip_width(SRAM_SPEC, 256)
        # ReRAM strips are crossbar-height regardless of feature width.
        assert spmm_strip_width(RERAM_SPEC, 64) == spmm_strip_width(RERAM_SPEC, 256)

    def test_dram_strip_width_huge(self):
        assert spmm_strip_width(DRAM_SPEC, 256) > 10_000


class TestProfileEstimate:
    def make(self) -> ProfileEstimate:
        return ProfileEstimate(
            JobPerfProfile(
                unit_arrays=5,
                t_load=1e-6,
                t_replica_unit=1e-7,
                t_compute_unit=1e-4,
                waves_unit=12,
            )
        )

    def test_matches_truth_exactly(self):
        est = self.make()
        for arrays in (5, 10, 25, 60):
            assert est.total_time(arrays) == est.profile.total_time(arrays)

    def test_compute_scale_perturbs_compute_only(self):
        est = self.make()
        noisy = ProfileEstimate(est.profile, compute_scale=2.0)
        assert noisy.compute_time(5) == pytest.approx(2 * est.compute_time(5))
        assert noisy.load_time(5) == est.load_time(5)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ProfileEstimate(self.make().profile, compute_scale=0.0)

    def test_snap_and_invert(self):
        est = self.make()
        assert est.snap_to_replica(14) == 10
        assert est.snap_to_replica(3) == 5
        found = est.invert_total_time(est.total_time(25), 60)
        assert found <= 25
        with pytest.raises(ValueError):
            est.invert_total_time(0.0, 60)

    def test_properties_mirror_profile(self):
        est = self.make()
        assert est.unit_arrays == 5
        assert est.max_useful_arrays == 60
        assert est.t_compute_unit == 1e-4
        assert est.t_load == 1e-6
        assert est.n_iter == 1
