"""Kernel mappings: GEMM, SpMM, Vadd profiles per memory."""

import numpy as np
import pytest

from repro.gnn import CSRGraph, barabasi_albert
from repro.kernels import (
    gemm_profile,
    make_gemm_job,
    make_spmm_job,
    make_vadd_job,
    spmm_profile,
    spmm_strip_width,
    spmm_unit_arrays,
    vadd_profile,
)
from repro.memories import DEFAULT_SPECS, DRAM_SPEC, RERAM_SPEC, SRAM_SPEC, MemoryKind


@pytest.fixture(scope="module")
def adjacency() -> CSRGraph:
    return barabasi_albert(400, 6, seed=9)


class TestStripGeometry:
    def test_reram_strip_width_is_128(self):
        """The ReRAM crossbar strip width is the paper's H_128 width."""
        assert spmm_strip_width(RERAM_SPEC, 256) == 128

    def test_sram_strip_width(self):
        # 256x256 array = 4096 elements; half stationary; 256-wide rows.
        assert spmm_strip_width(SRAM_SPEC, 256) == 8
        assert spmm_strip_width(SRAM_SPEC, 128) == 16

    def test_dram_strip_width_covers_whole_subgraphs(self):
        assert spmm_strip_width(DRAM_SPEC, 256) >= 4096

    def test_unit_arrays_includes_buffer_overhead(self):
        arrays = spmm_unit_arrays(SRAM_SPEC, 80, 256)
        assert arrays > 80 / 8  # strips alone

    def test_unit_arrays_validation(self):
        with pytest.raises(ValueError):
            spmm_unit_arrays(SRAM_SPEC, 0, 256)


class TestGEMM:
    def test_profiles_for_all_memories(self):
        job = make_gemm_job("g", 64, 128, 256, DEFAULT_SPECS)
        assert set(job.profiles) == set(MemoryKind)
        assert job.kernel == "gemm"
        assert job.tags["flops"] == 2 * 64 * 128 * 256

    def test_dram_gemm_much_slower_than_sram(self):
        sram = gemm_profile(SRAM_SPEC, 64, 128, 256)
        dram = gemm_profile(DRAM_SPEC, 64, 128, 256)
        assert dram.t_compute_unit > 10 * sram.t_compute_unit

    def test_reram_and_sram_comparable(self):
        # Paper V-B1: similar SIMD width and MAC throughput.
        sram = gemm_profile(SRAM_SPEC, 64, 128, 256)
        reram = gemm_profile(RERAM_SPEC, 64, 128, 256)
        ratio = reram.t_compute_unit / sram.t_compute_unit
        assert 0.2 < ratio < 5.0

    def test_residency_removes_fill(self):
        full = gemm_profile(SRAM_SPEC, 64, 128, 256)
        resident = gemm_profile(
            SRAM_SPEC, 64, 128, 256, resident_inputs=True, resident_weights=True
        )
        assert resident.fill_bytes == 0
        assert full.fill_bytes > 0
        assert resident.t_load < full.t_load

    def test_replication_scales_compute(self):
        p = gemm_profile(SRAM_SPEC, 64, 128, 256)
        assert p.compute_time(2 * p.unit_arrays) < p.compute_time(p.unit_arrays)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            gemm_profile(SRAM_SPEC, 0, 128, 256)

    def test_energy_positive_and_reram_cheapest(self):
        profiles = {k: gemm_profile(s, 64, 128, 256) for k, s in DEFAULT_SPECS.items()}
        assert all(p.compute_energy_j > 0 for p in profiles.values())
        assert (
            profiles[MemoryKind.RERAM].compute_energy_j
            < profiles[MemoryKind.SRAM].compute_energy_j
        )


class TestSpMM:
    def test_job_tags_carry_predictor_statistics(self, adjacency):
        job = make_spmm_job("s", adjacency, 256, DEFAULT_SPECS)
        assert job.tags["nnz"] == adjacency.nnz
        assert job.tags["strip_width"][MemoryKind.RERAM] == 128
        assert job.tags["h_w"][MemoryKind.RERAM] > 0
        # H_w never exceeds nnz and never exceeds rows x strips.
        for kind in MemoryKind:
            assert job.tags["h_w"][kind] <= adjacency.nnz

    def test_dram_spmm_is_worst(self, adjacency):
        """Paper V-B1: in-DRAM SpMM underperforms -- narrow feature
        vectors cannot fill DRAM SIMD rows."""
        job = make_spmm_job("s", adjacency, 256, DEFAULT_SPECS)
        t = {
            kind: job.profiles[kind].total_time(job.profiles[kind].unit_arrays)
            for kind in MemoryKind
        }
        assert t[MemoryKind.DRAM] > 10 * t[MemoryKind.SRAM]
        assert t[MemoryKind.DRAM] > 10 * t[MemoryKind.RERAM]

    def test_reram_advantage_grows_with_density(self):
        """Figure 10: ReRAM wins when the job size per allocation
        (nnz / H_w) is large."""
        sparse = barabasi_albert(400, 2, seed=1)
        dense = barabasi_albert(400, 60, seed=1)

        def ratio(adj):
            sram = spmm_profile(SRAM_SPEC, adj, 256)
            reram = spmm_profile(RERAM_SPEC, adj, 256)
            return sram.t_compute_unit / reram.t_compute_unit

        assert ratio(dense) > 2 * ratio(sparse)

    def test_resident_b_removes_feature_fill(self, adjacency):
        full = spmm_profile(SRAM_SPEC, adjacency, 256)
        resident = spmm_profile(SRAM_SPEC, adjacency, 256, resident_b=True)
        assert resident.fill_bytes < full.fill_bytes
        assert resident.t_compute_unit == full.t_compute_unit

    def test_compute_energy_scales_with_nnz(self):
        small = barabasi_albert(200, 3, seed=2)
        large = barabasi_albert(200, 12, seed=2)
        assert (
            spmm_profile(SRAM_SPEC, large, 256).compute_energy_j
            > spmm_profile(SRAM_SPEC, small, 256).compute_energy_j
        )

    def test_waves_track_nonempty_rows(self, adjacency):
        p = spmm_profile(SRAM_SPEC, adjacency, 256)
        nonempty = int(np.count_nonzero(np.diff(adjacency.indptr)))
        assert p.waves_unit == nonempty

    def test_invalid_feature_dim(self, adjacency):
        with pytest.raises(ValueError):
            spmm_profile(SRAM_SPEC, adjacency, 0)


class TestVadd:
    def test_sram_fastest_for_vadd(self):
        job = make_vadd_job("v", 65536, DEFAULT_SPECS, vector_width=256)
        t = {
            kind: job.profiles[kind].total_time(job.profiles[kind].unit_arrays)
            for kind in MemoryKind
        }
        assert t[MemoryKind.SRAM] == min(t.values())

    def test_resident_flag(self):
        full = vadd_profile(SRAM_SPEC, 4096)
        resident = vadd_profile(SRAM_SPEC, 4096, resident=True)
        assert resident.fill_bytes == 0
        assert full.fill_bytes == 2 * 4096 * 2

    def test_elements_validation(self):
        with pytest.raises(ValueError):
            vadd_profile(SRAM_SPEC, 0)

    def test_unit_arrays_grow_with_footprint(self):
        small = vadd_profile(SRAM_SPEC, 1024)
        large = vadd_profile(SRAM_SPEC, 1024 * 256)
        assert large.unit_arrays > small.unit_arrays
