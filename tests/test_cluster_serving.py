"""Cluster serving: degeneracy, determinism, reconciliation, scaling.

The load-bearing guarantees of ``repro.cluster``'s runtime half:

* **1-node degeneracy** -- a single-node cluster is byte-identical to
  the plain single-node serving path: same dispatch payload, same
  per-node report, and the cluster-level report (minus its ``nodes``
  section) matches field for field.
* **Shard invariance** -- running the node simulations in worker
  processes produces byte-identical merged output to the in-process
  loop.
* **Reconciliation** -- per-node report sections sum to the cluster
  totals (offered, completed, placed) under seeded multi-tenant
  arrivals, with cluster-level losses counted as shed.
* **Scaling** -- at a rate that saturates one node, an 8-node
  cluster completes >= 4x the jobs per simulated second.
* **Fault composition** -- a node-level ``fail`` composes with a
  device-level plan on the same node and steers later arrivals away.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ClusterRuntime,
    ClusterSpec,
    InterconnectSpec,
    NodeFault,
    home_node,
)
from repro.faults import FaultPlan
from repro.faults.plan import FaultEvent, FaultKind
from repro.harness.config import full_system, gnn_system
from repro.obs.export import result_payload
from repro.serving import PoissonArrivals, ServingRuntime, Tenant
from repro.serving.arrivals import TimelineArrivals
from repro.sim.events import JobArrival
from tests.prophelpers import make_jobs

SLO_S = 0.01


def _tenants() -> list[Tenant]:
    return [
        Tenant("a", weight=2.0),
        Tenant("b"),
        Tenant("c", queue_limit=8),
    ]


def _arrivals(rate: float = 2e3, horizon: float = 0.02, seed: int = 7):
    return PoissonArrivals(
        rate=rate, horizon=horizon, seed=seed, tenants=("a", "b", "c")
    )


def _cluster_serve(n_nodes: int, system=None, shards: int | None = None, **kwargs):
    system = system or full_system()
    runtime = ClusterRuntime(
        ClusterSpec.homogeneous(n_nodes, system=system),
        scheduler=kwargs.pop("scheduler", "adaptive"),
        placement=kwargs.pop("placement", "least-loaded"),
    )
    return runtime.serve(
        kwargs.pop("arrivals", _arrivals()),
        tenants=_tenants(),
        slo_s=SLO_S,
        shards=shards,
        **kwargs,
    )


def _dumps(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# ======================================================================
# 1-node degeneracy: byte-identical to the plain serving path
# ======================================================================
@pytest.mark.parametrize("scheduler", ["ljf", "adaptive", "global"])
def test_single_node_cluster_matches_serving_path(scheduler):
    system = full_system()
    direct = ServingRuntime(system, scheduler=scheduler).serve(
        _arrivals(), tenants=_tenants(), slo_s=SLO_S
    )
    cluster = _cluster_serve(1, system=system, scheduler=scheduler)

    node = cluster.node_payloads["node-0"]
    assert _dumps(result_payload(direct.result)) == _dumps(node)
    assert _dumps(direct.report.as_dict()) == _dumps(
        cluster.node_reports["node-0"].as_dict()
    )
    # The merged cluster report adds only the per-node sections.
    merged = cluster.report.as_dict()
    nodes = merged.pop("nodes")
    assert set(nodes) == {"node-0"}
    assert _dumps(direct.report.as_dict()) == _dumps(merged)
    # No interconnect traffic on one node: every tenant is home.
    assert cluster.stats.handoffs == 0
    assert cluster.stats.replicas == 0
    assert cluster.stats.delays == {}


def test_single_node_placement_choice_is_irrelevant():
    reports = {
        name: _cluster_serve(1, placement=name).report.as_dict()
        for name in ("least-loaded", "hash", "round-robin")
    }
    baseline = _dumps(reports["least-loaded"])
    assert all(_dumps(r) == baseline for r in reports.values())


# ======================================================================
# Shard invariance and seeded determinism
# ======================================================================
def test_sharded_run_byte_identical_to_in_process():
    serial = _cluster_serve(2, shards=1)
    pooled = _cluster_serve(2, shards=2)
    assert _dumps(serial.as_dict()) == _dumps(pooled.as_dict())
    assert _dumps(serial.node_payloads) == _dumps(pooled.node_payloads)


def test_same_seed_byte_identical_cluster_report():
    first = _cluster_serve(3)
    second = _cluster_serve(3)
    assert _dumps(first.as_dict()) == _dumps(second.as_dict())


def test_shards_beyond_node_count_are_capped():
    a = _cluster_serve(2, shards=2)
    b = _cluster_serve(2, shards=16)
    assert _dumps(a.as_dict()) == _dumps(b.as_dict())


# ======================================================================
# Reconciliation: per-node sections vs cluster totals
# ======================================================================
def test_node_sections_reconcile_with_cluster_totals():
    result = _cluster_serve(3)
    report = result.report
    assert set(report.nodes) == {"node-0", "node-1", "node-2"}

    node_reports = result.node_reports.values()
    assert report.completed == sum(r.completed for r in node_reports)
    assert report.offered == sum(r.offered for r in node_reports)
    assert report.shed == sum(r.shed for r in node_reports)
    assert report.makespan == max(r.makespan for r in node_reports)

    placed = sum(result.stats.placed.values())
    assert placed == report.offered
    for name, section in report.nodes.items():
        node = result.node_reports[name]
        assert section["completed"] == node.completed
        assert section["offered"] == node.offered
        assert section["placed"] == result.stats.placed[name]
        assert section["makespan"] == node.makespan

    # Conservation: every offered job is completed, shed, or failed.
    failed = sum(len(p["failed_jobs"]) for p in result.node_payloads.values())
    assert report.offered == report.completed + report.shed + failed


def test_handoffs_record_delays_and_traffic():
    result = _cluster_serve(4, placement="round-robin")
    stats = result.stats
    assert stats.handoffs > 0
    assert len(stats.delays) == stats.handoffs
    assert all(d > 0 for d in stats.delays.values())
    assert stats.handoff_bytes > 0
    # First foreign landing per (tenant, node) pays the replica fill.
    assert 0 < stats.replicas <= 3 * 3  # 3 tenants x 3 foreign nodes
    summary = stats.as_dict()
    assert summary["handoff_delay_s"]["count"] == stats.handoffs
    assert summary["handoff_delay_s"]["max"] > 0


def test_hash_placement_pins_tenants_home():
    result = _cluster_serve(4, placement="hash")
    assert result.stats.handoffs == 0
    assert result.stats.replicas == 0
    # A tenant's jobs all land on one node: at most one node per tenant.
    populated = [n for n, count in result.stats.placed.items() if count]
    assert len(populated) <= 3


# ======================================================================
# Throughput scaling
# ======================================================================
def test_eight_nodes_scale_throughput_at_least_4x():
    system = gnn_system()
    saturating = PoissonArrivals(
        rate=6e6, horizon=5e-4, seed=20,
        tenants=("a", "b", "c"),
    )
    one = _cluster_serve(1, system=system, arrivals=saturating)
    eight = _cluster_serve(8, system=system, arrivals=saturating, shards=4)
    assert one.report.shed > 0  # one node is genuinely saturated
    assert eight.completed_per_sec >= 4 * one.completed_per_sec


# ======================================================================
# Fault composition
# ======================================================================
def test_node_fault_steers_later_arrivals_away():
    fail_at = 0.01
    result = _cluster_serve(
        2, node_faults=(NodeFault(node="node-1", time=fail_at),)
    )
    # The stream extends past the failure, and everything after it is
    # steered to the survivor: node-1 only saw the early arrivals.
    timeline = _arrivals().generate(lambda *args: None)
    early = sum(1 for a in timeline if a.time < fail_at)
    assert early < len(timeline)  # arrivals do continue past the failure
    node1 = result.node_payloads["node-1"]
    assert result.stats.placed["node-1"] <= early
    assert result.stats.placed["node-0"] >= len(timeline) - early
    # The dead node ran under a fault plan; the survivor did not.
    assert node1["faults"] is not None
    assert result.node_payloads["node-0"]["faults"] is None


def test_node_fault_composes_with_device_plan():
    from repro.memories.base import MemoryKind

    device_plan = FaultPlan(
        events=(
            FaultEvent(
                kind=FaultKind.STALL,
                device=MemoryKind.SRAM,
                time=0.002,
                duration=0.001,
            ),
        )
    )
    result = _cluster_serve(
        2,
        faults={"node-1": device_plan},
        node_faults=(NodeFault(node="node-1", time=0.01),),
    )
    summary = result.node_payloads["node-1"]["faults"]
    assert summary is not None
    # The plan carries both the stall and the compiled per-device fails.
    n_kinds = len(full_system().kinds)
    assert summary["plan_size"] == 1 + n_kinds
    assert result.node_payloads["node-0"]["faults"] is None


def test_all_nodes_dead_counts_losses_as_shed():
    fail_at = 0.005
    result = _cluster_serve(
        2,
        node_faults=(
            NodeFault(node="node-0", time=fail_at),
            NodeFault(node="node-1", time=fail_at),
        ),
    )
    assert result.stats.total_lost > 0
    report = result.report
    lost = sum(result.stats.lost_no_node.values())
    assert sum(t.shed_unplaced for t in report.tenants.values()) >= lost
    # Lost arrivals still count as offered.
    assert report.offered == sum(result.stats.placed.values()) + lost


def test_unknown_fault_node_raises():
    with pytest.raises(KeyError):
        _cluster_serve(2, node_faults=(NodeFault(node="nope", time=0.1),))


# ======================================================================
# Effective home: a rehomed tenant stops paying handoffs (bugfix)
# ======================================================================
def test_rehomed_tenants_stop_paying_handoffs():
    # Regression: handoffs were charged against the salt-0 home, so a
    # tenant whose home died under HashPlacement paid a handoff (and
    # first-landing replica bookkeeping) on every job forever, even
    # though it had rehashed to a stable new home.
    assert any(home_node(t, 2) == 1 for t in ("a", "b", "c"))
    result = _cluster_serve(
        2,
        placement="hash",
        node_faults=(NodeFault(node="node-1", time=1e-9),),
    )
    # Every arrival lands on the survivor, which IS every tenant's
    # effective (rehashed) home: no interconnect traffic at all.
    assert result.stats.placed["node-1"] == 0
    assert result.stats.handoffs == 0
    assert result.stats.replicas == 0
    assert result.stats.delays == {}


# ======================================================================
# Migration: delayed landings never reach a dead node (bugfix)
# ======================================================================
def _timeline(tenant: str, times: list[float]) -> TimelineArrivals:
    jobs = make_jobs(seed=11, count=len(times))
    return TimelineArrivals(
        arrivals=tuple(
            JobArrival(time=t, seq=i, tenant=tenant, job=jobs[i])
            for i, t in enumerate(times)
        )
    )


def test_handoff_delay_past_fault_migrates_instead_of_delivering():
    # Regression: candidate filtering used the pre-delay arrival time,
    # so a job whose handoff delay carried it past its node's fault
    # was delivered into the dead node's failure path.  A slow fabric
    # (50 ms latency) guarantees the second arrival, handed off to
    # node-1, lands well after node-1 dies at t=10 ms.
    tenant = next(t for t in ("a", "b", "c", "d") if home_node(t, 2) == 0)
    spec = ClusterSpec.homogeneous(
        2,
        system=full_system(),
        interconnect=InterconnectSpec(latency_s=0.05),
    )
    runtime = ClusterRuntime(spec, placement="round-robin")
    result = runtime.serve(
        _timeline(tenant, [0.001, 0.002]),
        tenants=[Tenant(tenant)],
        slo_s=SLO_S,
        node_faults=(NodeFault(node="node-1", time=0.01),),
    )
    stats = result.stats
    assert stats.migrations >= 1
    assert stats.migration_bytes > 0
    # Nothing was delivered to (or lost on) the dead node: both jobs
    # ran to completion on the survivor.
    assert stats.placed == {"node-0": 2, "node-1": 0}
    assert stats.total_lost == 0
    assert result.report.completed == 2
    assert result.node_reports["node-1"].offered == 0
    # The migrated job's recorded delay covers both hops.
    migrated = max(stats.delays.values())
    assert migrated > 0.05
    summary = stats.as_dict()
    assert summary["migrations"]["count"] == stats.migrations


def test_migration_with_no_survivor_counts_as_lost():
    tenant = next(t for t in ("a", "b", "c", "d") if home_node(t, 2) == 0)
    spec = ClusterSpec.homogeneous(
        2,
        system=full_system(),
        interconnect=InterconnectSpec(latency_s=0.05),
    )
    runtime = ClusterRuntime(spec, placement="round-robin")
    # Node-1 dies at 10 ms; node-0 dies at 20 ms -- before the
    # handed-off job's ~51 ms landing, leaving nowhere to migrate to.
    result = runtime.serve(
        _timeline(tenant, [0.001, 0.002]),
        tenants=[Tenant(tenant)],
        slo_s=SLO_S,
        node_faults=(
            NodeFault(node="node-0", time=0.02),
            NodeFault(node="node-1", time=0.01),
        ),
    )
    assert result.stats.total_lost >= 1


# ======================================================================
# Heterogeneous fleets: capacity-aware placement
# ======================================================================
def test_big_node_absorbs_more_of_a_saturating_stream():
    spec = ClusterSpec.heterogeneous(
        {"node-0": 1.0, "node-1": 4.0}, system=gnn_system()
    )
    runtime = ClusterRuntime(spec, placement="least-loaded")
    result = runtime.serve(
        PoissonArrivals(
            rate=6e6, horizon=5e-4, seed=20, tenants=("a", "b", "c")
        ),
        tenants=_tenants(),
        slo_s=SLO_S,
        shards=2,
    )
    placed = result.stats.placed
    # The 4x node drains backlog four times as fast: under sustained
    # saturation it must attract the bulk of the placements.
    assert placed["node-1"] > 2 * placed["node-0"]
    assert result.report.offered == placed["node-0"] + placed["node-1"]
