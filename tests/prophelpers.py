"""Seeded builders shared by the fault property / differential suites.

Everything here is deterministic from an integer seed via stdlib
``random.Random`` -- no third-party property-testing library and no
global random state -- so any failing case reproduces exactly from
the seed baked into the pytest parametrisation.
"""

from __future__ import annotations

import random

from repro.core import (
    AdaptiveScheduler,
    Dispatcher,
    EWTScheduler,
    GlobalScheduler,
    Job,
    JobPerfProfile,
    LJFScheduler,
    OraclePredictor,
)
from repro.faults import FaultPlan
from repro.harness.config import full_system

SCHEDULERS = ("ljf", "adaptive", "global", "ewt")

_CLASSES = {
    "ljf": LJFScheduler,
    "adaptive": AdaptiveScheduler,
    "global": GlobalScheduler,
    "ewt": EWTScheduler,
}


def make_jobs(seed: int, count: int = 18) -> list[Job]:
    """A seeded batch whose jobs can run on every device of the full
    three-layer system (so migration off a failed device is always
    possible)."""
    rng = random.Random(seed)
    system = full_system()
    jobs = []
    for i in range(count):
        base = 1e-5 * (1.0 + 5.0 * rng.random())
        profiles = {
            kind: JobPerfProfile(
                unit_arrays=rng.randint(2, 8),
                t_load=0.0,
                t_replica_unit=base * 0.01,
                t_compute_unit=base * rng.uniform(0.6, 1.6),
                waves_unit=16,
                fill_bytes=float(rng.randint(1, 64)) * 1024.0,
                compute_energy_j=1e-9,
            )
            for kind in system.kinds
        }
        jobs.append(Job(job_id=f"p{seed}-{i}", kernel="prop", profiles=profiles))
    return jobs


def run_batch(scheduler: str, jobs, faults=None, label: str = ""):
    """Schedule and dispatch one batch, optionally under a fault plan."""
    system = full_system()
    policy = _CLASSES[scheduler](OraclePredictor()).plan(list(jobs), system)
    return Dispatcher(system).run(
        policy, label=label or scheduler, faults=faults
    )


def random_plan(seed: int, horizon_s: float, **kwargs) -> FaultPlan:
    """Seeded random fault plan against the full system's devices."""
    return FaultPlan.random(seed, full_system().kinds, horizon_s, **kwargs)


def trace_key(result) -> list[tuple]:
    """Canonical comparison form of a run's phase timeline."""
    return [
        (r.job_id, r.device, r.phase.value, r.start, r.end, r.arrays)
        for r in result.trace.records
    ]


def counter(result, name: str) -> float:
    """A runtime counter's value, 0.0 when never incremented."""
    if result.metrics is None:
        return 0.0
    return result.metrics.counter(name).value


def serve_overloaded(
    scheduler: str,
    admission=None,
    seed: int = 20,
    rate: float = 2e6,
    horizon: float = 0.002,
    slo_s: float = 100e-6,
    **kwargs,
):
    """An overloaded serve run on the gnn system: ~2x the pool's drain
    rate, so backpressure (and any admission gate) is guaranteed to
    engage.  Shared by the admission determinism / attainment tests."""
    from repro.harness.config import gnn_system
    from repro.serving import PoissonArrivals, ServingRuntime, Tenant

    runtime = ServingRuntime(
        gnn_system(),
        scheduler=scheduler,
        max_backlog=kwargs.pop("max_backlog", 16),
    )
    names = ("interactive", "batch", "besteffort")
    tenants = kwargs.pop(
        "tenants",
        [
            Tenant("interactive", weight=4.0, queue_limit=32),
            Tenant("batch", weight=2.0, queue_limit=32),
            Tenant("besteffort", weight=1.0, queue_limit=8),
        ],
    )
    return runtime.serve(
        PoissonArrivals(
            rate=rate, horizon=horizon, seed=seed, tenants=names
        ),
        tenants=tenants,
        slo_s=slo_s,
        admission=admission,
        **kwargs,
    )
