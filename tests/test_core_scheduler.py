"""Schedulers: LJF baseline, adaptive, global, EWT, adjustments, oracle."""

import pytest

from repro.core import (
    AdaptiveScheduler,
    Dispatcher,
    EWTScheduler,
    GlobalScheduler,
    Job,
    JobPerfProfile,
    LJFScheduler,
    MLIMPSystem,
    OraclePredictor,
    oracle_makespan,
    single_memory_makespan,
)
from repro.core.scheduler.adjustments import (
    PlannedJob,
    inter_queue_adjust,
    intra_queue_adjust,
    job_fits,
    plan_job,
    queue_drain_estimate,
)
from repro.core.scheduler.base import Dispatch, ResourceView
from repro.memories import ArrayGeometry, MemoryKind, MemorySpec


def tiny_spec(kind: MemoryKind, arrays: int = 64, mhz: float = 1000.0) -> MemorySpec:
    return MemorySpec(
        kind=kind,
        name=f"tiny-{kind.value}",
        geometry=ArrayGeometry(64, 64),
        num_arrays=arrays,
        alus_per_array=64,
        clock_mhz=mhz,
        mac_cycles_2op=10,
        multi_operand_alpha=1.0,
        max_operands=4,
        pack_limit=4,
        energy_per_mac_pj=1.0,
        energy_per_bitop_pj=0.1,
        fill_bandwidth_gbps=100.0,
        copy_bandwidth_gbps=100.0,
        max_outstanding_jobs=4,
    )


@pytest.fixture
def system() -> MLIMPSystem:
    return MLIMPSystem(
        specs={
            MemoryKind.SRAM: tiny_spec(MemoryKind.SRAM, arrays=64, mhz=1000.0),
            MemoryKind.RERAM: tiny_spec(MemoryKind.RERAM, arrays=128, mhz=500.0),
        }
    )


def make_job(job_id: str, sram_t: float, reram_t: float, unit: int = 4) -> Job:
    def prof(t):
        return JobPerfProfile(
            unit_arrays=unit,
            t_load=t * 0.05,
            t_replica_unit=t * 0.01,
            t_compute_unit=t,
            waves_unit=8,
            fill_bytes=1000.0,
            compute_energy_j=1e-9,
        )

    return Job(
        job_id=job_id,
        kernel="app",
        profiles={MemoryKind.SRAM: prof(sram_t), MemoryKind.RERAM: prof(reram_t)},
    )


def mixed_batch(n: int = 24) -> list[Job]:
    jobs = []
    for i in range(n):
        if i % 2:
            jobs.append(make_job(f"s{i}", sram_t=1e-4 * (1 + i % 5), reram_t=5e-4))
        else:
            jobs.append(make_job(f"r{i}", sram_t=5e-4, reram_t=1e-4 * (1 + i % 5)))
    return jobs


class TestSystem:
    def test_fair_share(self, system):
        assert system.fair_share(MemoryKind.SRAM) == 16
        assert system.fair_share(MemoryKind.RERAM) == 32

    def test_subset(self, system):
        sub = system.subset([MemoryKind.SRAM])
        assert sub.kinds == [MemoryKind.SRAM]

    def test_spec_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLIMPSystem(specs={MemoryKind.DRAM: tiny_spec(MemoryKind.SRAM)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MLIMPSystem(specs={})


class TestPlanning:
    def test_plan_job_snaps_to_replicas(self, system):
        job = make_job("x", 1e-4, 2e-4)
        plan = plan_job(job, MemoryKind.SRAM, OraclePredictor(), system)
        assert plan.arrays % plan.estimate.unit_arrays == 0
        assert plan.arrays <= system.arrays(MemoryKind.SRAM)

    def test_job_fits(self, system):
        assert job_fits(make_job("x", 1, 1, unit=4), MemoryKind.SRAM, system)
        assert not job_fits(make_job("x", 1, 1, unit=65), MemoryKind.SRAM, system)
        with pytest.raises(ValueError):
            plan_job(
                make_job("x", 1, 1, unit=65), MemoryKind.SRAM, OraclePredictor(), system
            )

    def test_queue_drain_estimate(self, system):
        job = make_job("x", 1e-4, 2e-4)
        plan = plan_job(job, MemoryKind.SRAM, OraclePredictor(), system)
        drain = queue_drain_estimate([plan] * 8, MemoryKind.SRAM, system)
        assert drain > 0
        assert queue_drain_estimate([], MemoryKind.SRAM, system) == 0.0


class TestInterQueue:
    def test_balances_loaded_queue(self, system):
        predictor = OraclePredictor()
        jobs = [make_job(f"j{i}", 1e-4, 1.2e-4) for i in range(16)]
        plans = {
            j.job_id: {
                kind: plan_job(j, kind, predictor, system)
                for kind in system.kinds
            }
            for j in jobs
        }
        queues = {
            MemoryKind.SRAM: [plans[j.job_id][MemoryKind.SRAM] for j in jobs],
            MemoryKind.RERAM: [],
        }
        balanced = inter_queue_adjust(queues, plans, system)
        assert len(balanced[MemoryKind.RERAM]) > 0
        drains = {
            kind: queue_drain_estimate(entries, kind, system)
            for kind, entries in balanced.items()
        }
        before = queue_drain_estimate(queues[MemoryKind.SRAM], MemoryKind.SRAM, system)
        assert max(drains.values()) < before

    def test_noop_on_balanced_queues(self, system):
        predictor = OraclePredictor()
        job_a = make_job("a", 1e-4, 5e-4)
        job_b = make_job("b", 5e-4, 1e-4)
        plans = {
            j.job_id: {k: plan_job(j, k, predictor, system) for k in system.kinds}
            for j in (job_a, job_b)
        }
        queues = {
            MemoryKind.SRAM: [plans["a"][MemoryKind.SRAM]],
            MemoryKind.RERAM: [plans["b"][MemoryKind.RERAM]],
        }
        balanced = inter_queue_adjust(queues, plans, system)
        assert len(balanced[MemoryKind.SRAM]) == 1
        assert len(balanced[MemoryKind.RERAM]) == 1


class TestIntraQueue:
    def test_transfers_arrays_to_longest(self, system):
        predictor = OraclePredictor()
        long_job = make_job("long", 1e-3, 1e-2)
        short_job = make_job("short", 1e-5, 1e-4)
        long_plan = plan_job(long_job, MemoryKind.SRAM, predictor, system)
        short_plan = plan_job(short_job, MemoryKind.SRAM, predictor, system)
        # Give the short job spare allocation to donate.
        short_plan = short_plan.with_arrays(4 * short_plan.estimate.unit_arrays)
        queues = {MemoryKind.SRAM: [long_plan, short_plan]}
        adjusted = intra_queue_adjust(queues, system)
        new_long = next(
            e for e in adjusted[MemoryKind.SRAM] if e.job.job_id == "long"
        )
        new_short = next(
            e for e in adjusted[MemoryKind.SRAM] if e.job.job_id == "short"
        )
        assert new_long.arrays >= long_plan.arrays
        assert new_short.arrays <= short_plan.arrays

    def test_respects_unit_minimum(self, system):
        predictor = OraclePredictor()
        jobs = [make_job("a", 1e-3, 1e-2), make_job("b", 1e-5, 1e-4)]
        queues = {
            MemoryKind.SRAM: [
                plan_job(j, MemoryKind.SRAM, predictor, system) for j in jobs
            ]
        }
        adjusted = intra_queue_adjust(queues, system)
        for entry in adjusted[MemoryKind.SRAM]:
            assert entry.arrays >= entry.estimate.unit_arrays


class TestSchedulersEndToEnd:
    @pytest.mark.parametrize(
        "scheduler_cls",
        [LJFScheduler, AdaptiveScheduler, GlobalScheduler, EWTScheduler],
    )
    def test_all_jobs_complete(self, system, scheduler_cls):
        jobs = mixed_batch()
        scheduler = scheduler_cls(OraclePredictor())
        result = Dispatcher(system).run(scheduler.plan(jobs, system))
        assert len(result.records) == len(jobs)
        assert result.makespan > 0

    def test_empty_batch(self, system):
        policy = LJFScheduler(OraclePredictor()).plan([], system)
        result = Dispatcher(system).run(policy)
        assert result.makespan == 0.0

    def test_sophisticated_beats_naive(self, system):
        """Figure 16's core claim: when every job prefers the same
        memory, naive LJF piles onto it ("single processor
        performance") while adaptive/global offload to the others."""
        jobs = [
            make_job(f"j{i}", sram_t=1e-4 * (1 + i % 7), reram_t=1.4e-4 * (1 + i % 7))
            for i in range(32)
        ]
        predictor = OraclePredictor()
        dispatcher = Dispatcher(system)
        ljf = dispatcher.run(LJFScheduler(predictor).plan(jobs, system)).makespan
        adaptive = dispatcher.run(
            AdaptiveScheduler(predictor).plan(jobs, system)
        ).makespan
        global_ = dispatcher.run(
            GlobalScheduler(predictor).plan(jobs, system)
        ).makespan
        assert adaptive < ljf
        # The static global schedule may trail adaptive slightly but
        # must also clearly beat the naive baseline.
        assert global_ < ljf * 1.05

    def test_jobs_follow_their_preference(self, system):
        jobs = mixed_batch(16)
        result = Dispatcher(system).run(
            AdaptiveScheduler(OraclePredictor()).plan(jobs, system)
        )
        # Most SRAM-preferring jobs should land on SRAM and vice versa
        # (balancing may move a few).
        right = sum(
            1
            for r in result.records.values()
            if (r.job_id.startswith("s")) == (r.kind is MemoryKind.SRAM)
        )
        assert right >= len(jobs) * 0.5

    def test_unschedulable_job_raises(self, system):
        job = make_job("big", 1e-4, 1e-4, unit=1000)
        with pytest.raises(ValueError):
            AdaptiveScheduler(OraclePredictor()).plan([job], system)
        with pytest.raises(ValueError):
            LJFScheduler(OraclePredictor()).plan([job], system)
        with pytest.raises(ValueError):
            EWTScheduler(OraclePredictor()).plan([job], system)


ALL_SCHEDULERS = [LJFScheduler, AdaptiveScheduler, GlobalScheduler, EWTScheduler]


class TestAdmitContract:
    """The ``admit(jobs, now)`` contract, uniform across every policy
    (documented on ``DispatchPolicy.admit``): an empty batch is a pure
    no-op, and ``now`` values need not arrive monotonically.

    Surfaced while wiring EWT: LJF used to re-sort its queue and the
    global scheduler walked its re-plan path even for empty batches,
    so "probe admit" and "no admit" could diverge per policy.
    """

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_empty_admit_returns_empty(self, system, scheduler_cls):
        policy = scheduler_cls(OraclePredictor()).plan(mixed_batch(8), system)
        assert policy.admit([], 1.0) == []

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_empty_admit_is_behaviourally_inert(self, system, scheduler_cls):
        """A policy probed with empty admits (including out-of-order
        timestamps) must produce the byte-identical execution of an
        unprobed twin."""
        jobs = mixed_batch(12)
        scheduler = scheduler_cls(OraclePredictor())
        plain = scheduler.plan(list(jobs), system)
        probed = scheduler.plan(list(jobs), system)
        for now in (5e-4, 0.0, 2e-3, 1e-6):  # deliberately non-monotone
            assert probed.admit([], now) == []
        assert probed.queue_depths() == plain.queue_depths()
        assert probed.pending() == plain.pending()
        result_plain = Dispatcher(system).run(plain)
        result_probed = Dispatcher(system).run(probed)
        key = lambda result: [
            (r.job_id, r.device, r.phase.value, r.start, r.end, r.arrays)
            for r in result.trace.records
        ]
        assert key(result_probed) == key(result_plain)
        assert result_probed.makespan == result_plain.makespan

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_out_of_order_now_still_places(self, system, scheduler_cls):
        """Each admit call is interpreted against its own timestamp;
        a ``now`` earlier than a previous call's must not break
        placement or accounting."""
        policy = scheduler_cls(OraclePredictor()).plan(mixed_batch(4), system)
        before = policy.pending()
        late = [make_job("late", 1e-4, 2e-4)]
        early = [make_job("early", 2e-4, 1e-4)]
        assert policy.admit(late, 1.0) == []
        assert policy.admit(early, 0.25) == []  # earlier than the last call
        assert policy.pending() == before + 2

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_unplaceable_arrival_is_returned_not_dropped(
        self, system, scheduler_cls
    ):
        policy = scheduler_cls(OraclePredictor()).plan(mixed_batch(4), system)
        giant = make_job("giant", 1e-4, 1e-4, unit=1000)
        before = policy.pending()
        rejected = policy.admit([giant], 0.5)
        assert rejected == [giant]
        assert policy.pending() == before


class TestOracle:
    def test_oracle_lower_bounds_schedulers(self, system):
        jobs = mixed_batch(32)
        bound = oracle_makespan(jobs, system)
        result = Dispatcher(system).run(
            GlobalScheduler(OraclePredictor()).plan(jobs, system)
        )
        assert bound <= result.makespan * 1.0001

    def test_oracle_beats_single_memory(self, system):
        jobs = mixed_batch(32)
        bound = oracle_makespan(jobs, system)
        for kind in system.kinds:
            assert bound <= single_memory_makespan(jobs, system, kind) * 1.0001

    def test_empty_batch(self, system):
        assert oracle_makespan([], system) == 0.0

    def test_single_job(self, system):
        jobs = [make_job("one", 1e-4, 2e-4)]
        assert oracle_makespan(jobs, system) > 0


class TestPolicyViews:
    def test_dispatch_validation(self):
        job = make_job("x", 1e-4, 2e-4)
        with pytest.raises(ValueError):
            Dispatch(job=job, kind=MemoryKind.SRAM, arrays=0)
        with pytest.raises(ValueError):
            Dispatch(job=job, kind=MemoryKind.DRAM, arrays=4)

    def test_resource_view_can_place(self):
        view = ResourceView(
            now=0.0,
            free_slots={MemoryKind.SRAM: 1},
            free_arrays={MemoryKind.SRAM: 10},
            largest_free_run={MemoryKind.SRAM: 6},
        )
        assert view.can_place(MemoryKind.SRAM, 6)
        assert not view.can_place(MemoryKind.SRAM, 7)
        assert not view.can_place(MemoryKind.RERAM, 1)
