"""Predictor lifecycle: replay buffer, drift tracking, online learning.

The lifecycle loop (train/deploy/monitor/retrain) closes PR 1's
predicted-vs-actual observability gap: dispatcher completions feed an
:class:`OnlinePredictor` that retrains from a bounded replay buffer
and gates itself behind the analytical fallback while drifting.  These
tests pin the generic pieces (``repro.ml.online``), the wrapper's
counted-fallback contract, the dispatcher/serving wiring, and the CLI
artifact round trip.
"""

import json
import random

import numpy as np
import pytest

from repro.core.predictor import (
    OnlinePredictor,
    OraclePredictor,
    default_online_features,
    profile_features,
)
from repro.harness.config import full_system
from repro.memories import MemoryKind
from repro.ml import DriftTracker, ReplayBuffer
from repro.obs.metrics import MetricsRegistry
from repro.serving import PoissonArrivals, ServingRuntime, Tenant
from repro.serving.workload import OpenWorkload


class TestReplayBuffer:
    def test_bounded_fifo(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(5):
            buffer.add([float(i)], float(i))
        assert len(buffer) == 3
        X, y = buffer.arrays()
        assert X.ravel().tolist() == [2.0, 3.0, 4.0]
        assert y.tolist() == [2.0, 3.0, 4.0]

    def test_feature_length_pinned_by_first_add(self):
        buffer = ReplayBuffer()
        buffer.add([1.0, 2.0], 0.5)
        with pytest.raises(ValueError, match="feature length"):
            buffer.add([1.0], 0.5)

    def test_empty_arrays_raise(self):
        with pytest.raises(ValueError):
            ReplayBuffer().arrays()

    def test_clear(self):
        buffer = ReplayBuffer()
        buffer.add([1.0], 1.0)
        buffer.clear()
        assert len(buffer) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


class TestDriftTracker:
    def test_undecided_until_min_samples(self):
        tracker = DriftTracker(window=8, min_samples=4)
        for _ in range(3):
            tracker.add(1.0, 2.0)
        assert tracker.value() is None
        assert not tracker.drifting(0.1)  # undecided is not drifting
        tracker.add(1.0, 2.0)
        assert tracker.value() == pytest.approx(1.0)
        assert tracker.drifting(0.5)

    def test_rolling_window_forgets(self):
        tracker = DriftTracker(window=4, min_samples=2)
        for _ in range(4):
            tracker.add(1.0, 5.0)  # terrible
        for _ in range(4):
            tracker.add(1.0, 1.0)  # perfect, evicts the bad pairs
        assert tracker.value() == pytest.approx(0.0)

    def test_reset(self):
        tracker = DriftTracker(window=4, min_samples=2)
        tracker.add(1.0, 3.0)
        tracker.add(1.0, 3.0)
        tracker.reset()
        assert len(tracker) == 0
        assert tracker.value() is None

    def test_zero_actuals_undecided(self):
        tracker = DriftTracker(window=4, min_samples=2)
        tracker.add(0.0, 1.0)
        tracker.add(0.0, 1.0)
        assert tracker.value() is None

    def test_bad_params(self):
        with pytest.raises(ValueError):
            DriftTracker(window=0)
        with pytest.raises(ValueError):
            DriftTracker(min_samples=0)


def _serve_jobs(n: int, seed: int = 0):
    """Open-workload jobs (profile-only features, no metadata)."""
    workload = OpenWorkload(full_system())
    rng = random.Random(seed)
    return [workload.make_job(i, "t0", rng, {}) for i in range(n)]


class TestOnlinePredictor:
    def test_untrained_falls_back_and_counts(self):
        predictor = OnlinePredictor()
        job = _serve_jobs(1)[0]
        est = predictor.estimate(job, MemoryKind.SRAM)
        oracle = OraclePredictor().estimate(job, MemoryKind.SRAM)
        assert est.t_compute_unit == oracle.t_compute_unit
        assert predictor.counters["predictor.fallback"] == 1
        assert predictor.counters["predictor.fallback.untrained"] == 1

    def test_retrains_after_enough_completions(self):
        predictor = OnlinePredictor(
            retrain_every=8, min_samples=8, train_epochs=30
        )
        metrics = MetricsRegistry()
        for job in _serve_jobs(20, seed=1):
            predictor.on_completion(job, MemoryKind.SRAM, 0.0, metrics)
        counters = predictor.counters
        assert counters["predictor.observations"] == 20
        assert counters["predictor.retrains"] == 2
        # Counters were flushed into the registry for the obs export.
        assert metrics.counter("predictor.retrains").value == 2
        assert metrics.counter("predictor.observations").value == 20

    def test_estimates_once_trained(self):
        predictor = OnlinePredictor(
            retrain_every=16, min_samples=16, train_epochs=40
        )
        jobs = _serve_jobs(40, seed=2)
        for job in jobs[:16]:
            predictor.on_completion(job, MemoryKind.SRAM, 0.0)
        est = predictor.estimate(jobs[-1], MemoryKind.SRAM)
        assert np.isfinite(est.t_compute_unit) and est.t_compute_unit > 0
        assert predictor.counters["predictor.estimates"] == 1
        # The learned model is in the right ballpark on its own stream.
        actual = jobs[-1].profile(MemoryKind.SRAM).t_compute_unit
        assert 0.1 < est.t_compute_unit / actual < 10.0

    def test_drift_gates_model_behind_fallback(self):
        predictor = OnlinePredictor(
            retrain_every=8, min_samples=8, train_epochs=30, drift_bound=0.5
        )
        jobs = _serve_jobs(16, seed=3)
        for job in jobs[:8]:
            predictor.on_completion(job, MemoryKind.SRAM, 0.0)
        # Sabotage the model so its window error explodes.
        tracker = predictor._drift_for(MemoryKind.SRAM)
        for _ in range(tracker.min_samples):
            tracker.add(1.0, 100.0)
        est = predictor.estimate(jobs[-1], MemoryKind.SRAM)
        oracle = OraclePredictor().estimate(jobs[-1], MemoryKind.SRAM)
        assert est.t_compute_unit == oracle.t_compute_unit
        assert predictor.counters["predictor.fallback.drift"] == 1
        # The next retrain resets the tracker and lifts the gate.
        for job in jobs[8:16]:
            predictor.on_completion(job, MemoryKind.SRAM, 0.0)
        assert not predictor._drift_for(MemoryKind.SRAM).drifting(0.5)

    def test_deterministic_given_seed(self):
        def run():
            predictor = OnlinePredictor(
                retrain_every=8, min_samples=8, train_epochs=30, seed=5
            )
            jobs = _serve_jobs(24, seed=4)
            for job in jobs[:16]:
                predictor.on_completion(job, MemoryKind.SRAM, 0.0)
            return predictor.estimate(jobs[-1], MemoryKind.SRAM).t_compute_unit

        assert run() == run()

    def test_feature_fns(self):
        job = _serve_jobs(1)[0]
        x = profile_features(job, MemoryKind.SRAM)
        assert x.shape == (6,) and np.all(np.isfinite(x))
        # Serve jobs have no metadata -> the default resolves to the
        # profile features.
        assert np.array_equal(default_online_features(job, MemoryKind.SRAM), x)
        # The target must not leak into the features.
        profile = job.profile(MemoryKind.SRAM)
        assert not np.any(np.isclose(x, np.log1p(profile.t_compute_unit)))


class TestServingIntegration:
    def _serve(self, predictor):
        runtime = ServingRuntime(
            full_system(), scheduler="adaptive", predictor=predictor
        )
        arrivals = PoissonArrivals(
            rate=300.0, horizon=1.0, seed=11, tenants=("t0", "t1")
        )
        tenants = [Tenant("t0"), Tenant("t1")]
        return runtime.serve(arrivals, tenants=tenants, slo_s=0.05)

    def test_online_serve_retrains_and_exports_counters(self):
        predictor = OnlinePredictor(
            retrain_every=16, min_samples=12, drift_window=32, seed=11
        )
        serving = self._serve(predictor)
        counters = predictor.counters
        assert counters["predictor.retrains"] >= 1
        assert counters["predictor.observations"] > 0
        assert counters["predictor.fallback.untrained"] > 0
        # The same counters surface in the run's metrics registry (the
        # obs export path).
        metrics = serving.result.metrics
        assert (
            metrics.counter("predictor.retrains").value
            == counters["predictor.retrains"]
        )
        assert (
            metrics.counter("predictor.fallback").value
            == counters["predictor.fallback"]
        )

    def test_online_serve_deterministic(self):
        a = self._serve(OnlinePredictor(seed=1)).report.as_dict()
        b = self._serve(OnlinePredictor(seed=1)).report.as_dict()
        assert a == b

    def test_oracle_serve_has_no_lifecycle_counters(self):
        serving = self._serve(None)
        snapshot = serving.result.metrics.snapshot()
        assert not any(
            name.startswith("predictor.") for name in snapshot.get("counters", {})
        )


class TestNaivePredictor:
    def test_fit_and_ranking(self):
        from repro.harness.predictor import NaiveMetricPredictor

        from repro.gnn import NeighborSampler, extract_metadata, generate
        from repro.kernels import make_spmm_job
        from repro.memories import DEFAULT_SPECS

        graph = generate("collab")
        sampler = NeighborSampler(graph, hops=2, fanout=(8, 4), max_nodes=300, seed=2)
        jobs = []
        for i, query in enumerate(range(0, 160, 10)):
            sub = sampler.sample(query)
            md = extract_metadata(sub, 128)
            jobs.append(
                make_spmm_job(f"n{i}", sub.graph, 128, DEFAULT_SPECS, metadata=md)
            )
        naive = NaiveMetricPredictor().fit(jobs)
        est = naive.estimate(jobs[0], MemoryKind.SRAM)
        assert np.isfinite(est.t_compute_unit) and est.t_compute_unit > 0

    def test_unfitted_raises(self):
        from repro.harness.predictor import NaiveMetricPredictor

        job = _serve_jobs(1)[0]
        # Serve jobs lack metadata -> oracle path even unfitted.
        est = NaiveMetricPredictor().estimate(job, MemoryKind.SRAM)
        assert est.t_compute_unit == job.profile(MemoryKind.SRAM).t_compute_unit

    def test_lifecycle_experiment_registered(self):
        from repro.harness.experiments import full_registry

        assert "lifecycle" in full_registry()


class TestPredictorCLI:
    def test_train_eval_export_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        artifact = tmp_path / "pred.json"
        assert main([
            "predictor", "train", "--dataset", "collab",
            "--epochs", "40", "--out", str(artifact),
        ]) == 0
        assert artifact.exists()
        capsys.readouterr()

        assert main([
            "predictor", "eval", "--model", str(artifact),
            "--dataset", "collab", "--max-rel-rmse", "0.5",
        ]) == 0
        capsys.readouterr()

        copy = tmp_path / "copy.json"
        assert main([
            "predictor", "export", "--model", str(artifact),
            "--out", str(copy),
        ]) == 0
        assert copy.read_bytes() == artifact.read_bytes()
        out = capsys.readouterr().out
        assert "mlimp-predictor" in out

    def test_eval_gate_fails_on_tight_bound(self, tmp_path, capsys):
        from repro.__main__ import main

        artifact = tmp_path / "pred.json"
        assert main([
            "predictor", "train", "--dataset", "collab",
            "--epochs", "40", "--out", str(artifact),
        ]) == 0
        capsys.readouterr()
        assert main([
            "predictor", "eval", "--model", str(artifact),
            "--dataset", "collab", "--max-rel-rmse", "0.0001",
        ]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_eval_without_model_errors(self, capsys):
        from repro.__main__ import main

        assert main(["predictor", "eval"]) == 2
        assert "--model" in capsys.readouterr().err

    def test_serve_predictor_online_smoke(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "serve.json"
        assert main([
            "serve", "--rate", "300", "--horizon", "1.0", "--seed", "7",
            "--predictor", "online", "--json", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "predictor lifecycle:" in stdout
        payload = json.loads(out.read_text())
        assert payload["predictor"]["predictor.retrains"] >= 1
        assert payload["predictor"]["predictor.fallback"] >= 1

    def test_serve_predictor_artifact_smoke(self, tmp_path, capsys):
        from repro.__main__ import main

        artifact = tmp_path / "pred.json"
        assert main([
            "predictor", "train", "--dataset", "collab",
            "--epochs", "40", "--out", str(artifact),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--rate", "50", "--horizon", "0.5",
            "--predictor", str(artifact),
        ]) == 0
