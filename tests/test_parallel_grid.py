"""Parallel experiment grid: determinism, name validation, bench gate.

The seed-determinism property ISSUE requires: sharding the grid across
worker processes must produce byte-identical ``Report.to_json()``
output to the serial path, because every experiment pins its own seeds
and workers share no mutable state.
"""

import pytest

from repro.harness.bench import check_cache_health, check_regression
from repro.harness.experiments import (
    full_registry,
    run_experiment_grid,
    run_named_experiment,
)


class TestGridDeterminism:
    def test_parallel_output_byte_identical_to_serial(self):
        # The three cheapest registry entries -- this spawns real
        # worker processes, so keep the workload small.
        names = ["table2", "table3", "fig1"]
        serial = run_experiment_grid(names, parallel=False)
        sharded = run_experiment_grid(names, max_workers=2)
        assert [name for name, _ in serial] == names
        assert [name for name, _ in sharded] == names
        for (_, a), (_, b) in zip(serial, sharded):
            assert a.to_json() == b.to_json()

    def test_single_name_stays_in_process(self):
        [(name, report)] = run_experiment_grid(["table3"])
        assert name == "table3"
        assert report.to_json() == run_named_experiment("table3").to_json()

    def test_unknown_names_rejected_before_any_work(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            run_experiment_grid(["table2", "fig99"])

    def test_run_named_experiment_unknown(self):
        with pytest.raises(KeyError, match="python -m repro list"):
            run_named_experiment("fig99")

    def test_full_registry_includes_ablations(self):
        registry = full_registry()
        assert "fig19" in registry
        assert any(name.startswith("ablation-") for name in registry)


class TestBenchRegressionGate:
    @staticmethod
    def _payload(events_per_sec: float, quick: bool = True) -> dict:
        return {"quick": quick, "totals": {"events_per_sec": events_per_sec}}

    def test_within_band_passes(self):
        assert check_regression(self._payload(80.0), self._payload(100.0)) == []

    def test_beyond_band_fails(self):
        failures = check_regression(self._payload(60.0), self._payload(100.0))
        assert failures and "regressed" in failures[0]

    def test_suite_mismatch_fails(self):
        failures = check_regression(
            self._payload(100.0, quick=False), self._payload(100.0)
        )
        assert failures and "mismatch" in failures[0]

    def test_custom_band(self):
        payload, reference = self._payload(60.0), self._payload(100.0)
        assert check_regression(payload, reference, max_regression=0.5) == []

    def test_faster_than_reference_passes(self):
        assert check_regression(self._payload(150.0), self._payload(100.0)) == []


class TestCacheHealthGate:
    """A cache with lookups but zero hits is a wiring bug, not a
    tuning knob -- exactly how the ``perfmodel.min_time`` key bug
    shipped unnoticed."""

    @staticmethod
    def _payload(caches: dict) -> dict:
        return {"caches": caches}

    def test_healthy_caches_pass(self):
        payload = self._payload(
            {"perfmodel.knee": {"hits": 90, "misses": 10, "hit_rate": 0.9}}
        )
        assert check_cache_health(payload) == []

    def test_dead_cache_fails(self):
        payload = self._payload(
            {"perfmodel.min_time": {"hits": 0, "misses": 40, "hit_rate": 0.0}}
        )
        failures = check_cache_health(payload)
        assert failures and "perfmodel.min_time" in failures[0]
        assert "dead" in failures[0]

    def test_untouched_cache_is_fine(self):
        payload = self._payload(
            {"isa.timing": {"hits": 0, "misses": 0, "hit_rate": 0.0}}
        )
        assert check_cache_health(payload) == []

    def test_all_dead_caches_reported(self):
        payload = self._payload(
            {
                "a": {"hits": 0, "misses": 5},
                "b": {"hits": 1, "misses": 5},
                "c": {"hits": 0, "misses": 2},
            }
        )
        failures = check_cache_health(payload)
        assert len(failures) == 2

    def test_missing_caches_section_passes(self):
        assert check_cache_health({}) == []
