"""SIMD DFG construction and validation."""

import pytest

from repro.isa import DFG, DFGError, Op


def axpy() -> DFG:
    d = DFG("axpy")
    a = d.const("a")
    x = d.input("x")
    y = d.input("y")
    m = d.node("m", Op.MUL, a, x)
    s = d.node("s", Op.ADD, m, y)
    d.output(s)
    return d


class TestBuilder:
    def test_builds_and_validates(self):
        d = axpy()
        d.validate()
        assert len(d) == 5
        assert d.outputs == ("s",)
        assert set(d.inputs) == {"a", "x", "y"}

    def test_duplicate_node_rejected(self):
        d = DFG("k")
        d.input("x")
        with pytest.raises(DFGError):
            d.input("x")

    def test_unknown_input_rejected(self):
        d = DFG("k")
        with pytest.raises(DFGError):
            d.node("n", Op.ADD, "missing")

    def test_unknown_output_rejected(self):
        d = DFG("k")
        with pytest.raises(DFGError):
            d.output("missing")

    def test_no_outputs_fails_validation(self):
        d = DFG("k")
        d.input("x")
        with pytest.raises(DFGError):
            d.validate()

    def test_zero_width_rejected(self):
        d = DFG("k")
        with pytest.raises(DFGError):
            d.input("x", bits=0)

    def test_output_idempotent(self):
        d = axpy()
        d.output("s")
        assert d.outputs == ("s",)


class TestAnalysis:
    def test_topological_order_respects_deps(self):
        d = axpy()
        order = [n.name for n in d.topological()]
        assert order.index("m") > order.index("a")
        assert order.index("m") > order.index("x")
        assert order.index("s") > order.index("m")

    def test_cycle_detection(self):
        from repro.isa.dfg import DFGNode

        d = DFG("cyclic")
        d._nodes["a"] = DFGNode("a", Op.ADD, ("b",))
        d._nodes["b"] = DFGNode("b", Op.ADD, ("a",))
        with pytest.raises(DFGError):
            list(d.topological())

    def test_op_histogram(self):
        d = axpy()
        hist = d.op_histogram()
        assert hist[Op.MUL] == 1
        assert hist[Op.ADD] == 1

    def test_depth(self):
        d = axpy()
        assert d.depth() == 2
        flat = DFG("flat")
        flat.input("x")
        assert flat.depth() == 0

    def test_operation_nodes_exclude_inputs(self):
        d = axpy()
        names = {n.name for n in d.operation_nodes()}
        assert names == {"m", "s"}
