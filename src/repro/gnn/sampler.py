"""k-hop neighbourhood sampling and batching (subgraph learning).

GNN frameworks train on sampled subgraphs ("mini-batching", paper
II-C2): the k-hop neighbourhood of each query node is extracted and
the GCN runs on that subgraph.  The resulting subgraph sizes follow a
heavy-tailed distribution (Fig. 5) -- the *runtime workload dynamism*
that motivates MLIMP's scheduler.

:class:`NeighborSampler` implements full k-hop BFS expansion with an
optional per-hop fanout cap (PyG's neighbor-sampler style).  Batches
follow the paper: 64 query nodes per batch, either one subgraph per
query or -- for high-connectivity graphs (ogbl-ppa, ogbl-ddi) -- one
*concatenated* subgraph that unions all query neighbourhoods so node
features are reused across queries (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import CSRGraph

__all__ = ["Subgraph", "NeighborSampler", "sample_batches"]


@dataclass(frozen=True)
class Subgraph:
    """A sampled k-hop neighbourhood, re-numbered locally."""

    graph: CSRGraph
    query_nodes: tuple[int, ...]  # local ids of the batch's query nodes
    global_nodes: np.ndarray  # local id -> mother-graph id
    hops: int

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def nnz(self) -> int:
        return self.graph.nnz


@dataclass
class NeighborSampler:
    """Samples k-hop neighbourhoods from a mother graph.

    ``fanout`` caps the neighbours expanded per node per hop (None =
    full neighbourhood, the default).  ``max_nodes`` truncates runaway
    frontiers on dense graphs.
    """

    graph: CSRGraph
    hops: int = 3
    fanout: int | tuple[int, ...] | None = None
    max_nodes: int | None = None
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _fanouts: tuple[int | None, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError("hops must be >= 1")
        if self.fanout is None:
            fanouts: tuple[int | None, ...] = (None,) * self.hops
        elif isinstance(self.fanout, int):
            fanouts = (self.fanout,) * self.hops
        else:
            if len(self.fanout) != self.hops:
                raise ValueError("per-hop fanout tuple must have one entry per hop")
            fanouts = tuple(self.fanout)
        for f in fanouts:
            if f is not None and f < 1:
                raise ValueError("fanout must be >= 1 or None")
        self._fanouts = fanouts
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _neighbours_of(self, frontier: np.ndarray, fanout: int | None) -> np.ndarray:
        """All (possibly fanout-capped) neighbours of a frontier."""
        if fanout is None:
            # Vectorised gather of every adjacency run in the frontier.
            indptr, indices = self.graph.indptr, self.graph.indices
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return np.empty(0, dtype=np.int64)
            run_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
            flat = np.arange(total) + np.repeat(starts - run_offsets, counts)
            return indices[flat]
        gathered: list[np.ndarray] = []
        for node in frontier:
            neigh = self.graph.neighbors(int(node))
            if len(neigh) > fanout:
                neigh = self._rng.choice(neigh, size=fanout, replace=False)
            gathered.append(neigh)
        if not gathered:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(gathered)

    def _expand(self, seeds: np.ndarray) -> np.ndarray:
        """BFS out to ``hops``; returns reached mother-graph node ids."""
        visited_mask = np.zeros(self.graph.num_nodes, dtype=bool)
        visited_mask[seeds] = True
        frontier = np.unique(np.asarray(seeds, dtype=np.int64))
        for hop in range(self.hops):
            if len(frontier) == 0:
                break
            candidates = np.unique(self._neighbours_of(frontier, self._fanouts[hop]))
            fresh = candidates[~visited_mask[candidates]]
            visited_mask[fresh] = True
            frontier = fresh
            if self.max_nodes is not None and int(visited_mask.sum()) >= self.max_nodes:
                break
        nodes = np.flatnonzero(visited_mask).astype(np.int64)
        if self.max_nodes is not None and len(nodes) > self.max_nodes:
            # Keep the seeds, truncate the rest deterministically.
            seed_mask = np.zeros(self.graph.num_nodes, dtype=bool)
            seed_mask[seeds] = True
            seed_nodes = nodes[seed_mask[nodes]]
            rest = nodes[~seed_mask[nodes]][: self.max_nodes - len(seed_nodes)]
            nodes = np.sort(np.concatenate([seed_nodes, rest]))
        return nodes

    def sample(self, query: int) -> Subgraph:
        """k-hop subgraph around a single query node."""
        return self.sample_many(np.asarray([query]))

    def sample_many(self, queries: np.ndarray) -> Subgraph:
        """One subgraph covering the union of all query neighbourhoods
        (the paper's *concatenated subgraph* mode)."""
        queries = np.asarray(queries, dtype=np.int64)
        if len(queries) == 0:
            raise ValueError("need at least one query node")
        if queries.min() < 0 or queries.max() >= self.graph.num_nodes:
            raise ValueError("query node out of range")
        nodes = self._expand(queries)
        sub = self.graph.induced_subgraph(nodes)
        position = {int(n): i for i, n in enumerate(nodes)}
        local_queries = tuple(position[int(q)] for q in queries)
        return Subgraph(
            graph=sub, query_nodes=local_queries, global_nodes=nodes, hops=self.hops
        )


def sample_batches(
    graph: CSRGraph,
    num_batches: int,
    batch_size: int = 64,
    hops: int = 3,
    fanout: int | tuple[int, ...] | None = None,
    max_nodes: int | None = None,
    concat: bool = False,
    seed: int = 0,
) -> list[list[Subgraph]]:
    """Draw query batches like the paper's methodology.

    Returns ``num_batches`` batches; each batch is a list of subgraphs
    (one per query, or a single concatenated subgraph when ``concat``).
    The paper simulates 10 random batches of 64 queries (Section IV).
    """
    if num_batches < 1 or batch_size < 1:
        raise ValueError("num_batches and batch_size must be positive")
    rng = np.random.default_rng(seed)
    sampler = NeighborSampler(
        graph, hops=hops, fanout=fanout, max_nodes=max_nodes, seed=seed + 1
    )
    batches: list[list[Subgraph]] = []
    for _ in range(num_batches):
        queries = rng.choice(graph.num_nodes, size=batch_size, replace=False)
        if concat:
            batches.append([sampler.sample_many(queries)])
        else:
            batches.append([sampler.sample(int(q)) for q in queries])
    return batches
