"""GNN workload substrate: graphs, datasets, sampling, GCN job streams."""

from .datasets import DATASETS, DatasetSpec, barabasi_albert, dataset_names, generate
from .gcn import GCNConfig, batch_jobs, gcn_jobs
from .graph import CSRGraph
from .metadata import SubgraphMetadata, extract_metadata, nonzero_prows, prow_population
from .sampler import NeighborSampler, Subgraph, sample_batches

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "barabasi_albert",
    "dataset_names",
    "generate",
    "GCNConfig",
    "batch_jobs",
    "gcn_jobs",
    "CSRGraph",
    "SubgraphMetadata",
    "extract_metadata",
    "nonzero_prows",
    "prow_population",
    "NeighborSampler",
    "Subgraph",
    "sample_batches",
]
