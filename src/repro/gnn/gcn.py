"""GCN model: turns sampled subgraphs into MLIMP job streams.

The paper evaluates a GNN framework with three Graph Convolutional
Network layers (Kipf & Welling), quantised to 16-bit fixed point
(Section IV).  Each layer on each subgraph contributes three MLIMP
jobs -- the paper's Figure 11 kernels:

* **SpMM** -- aggregation ``B = A_hat X`` (input-dependent timing,
  carries subgraph metadata for the predictor),
* **GEMM** -- combination ``H = B W`` (deterministic),
* **Vadd** -- bias/residual addition (deterministic).

Activation functions and other glue run on the host ("they take
insignificant time and are thus executed in the host processor").

Data residency follows the MLIMP integration story: the first layer
loads node features from main memory; every later kernel consumes the
previous kernel's in-memory output, and the per-layer weights are
stationary across the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.job import Job
from ..kernels.gemm import make_gemm_job
from ..kernels.spmm import make_spmm_job
from ..kernels.vadd import make_vadd_job
from ..memories.base import MemoryKind, MemorySpec
from .metadata import extract_metadata
from .sampler import Subgraph

__all__ = ["GCNConfig", "gcn_jobs", "batch_jobs"]


@dataclass(frozen=True)
class GCNConfig:
    """Layer dimensions of the GCN."""

    layer_dims: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.layer_dims:
            raise ValueError("GCN needs at least one layer")
        for i, (fan_in, fan_out) in enumerate(self.layer_dims):
            if fan_in < 1 or fan_out < 1:
                raise ValueError("layer dims must be positive")
            if i > 0 and self.layer_dims[i - 1][1] != fan_in:
                raise ValueError("layer dims must chain")

    @classmethod
    def three_layer(cls, input_dim: int, hidden_dim: int = 256) -> "GCNConfig":
        """The evaluated 3-layer GCN (Section IV)."""
        return cls(
            layer_dims=(
                (input_dim, hidden_dim),
                (hidden_dim, hidden_dim),
                (hidden_dim, hidden_dim),
            )
        )

    @property
    def num_layers(self) -> int:
        return len(self.layer_dims)


def gcn_jobs(
    subgraph: Subgraph,
    config: GCNConfig,
    specs: dict[MemoryKind, MemorySpec],
    prefix: str,
) -> list[Job]:
    """All MLIMP jobs of one subgraph's GCN inference."""
    jobs: list[Job] = []
    n = subgraph.num_nodes
    for layer, (fan_in, fan_out) in enumerate(config.layer_dims):
        metadata = extract_metadata(subgraph, fan_in)
        jobs.append(
            make_spmm_job(
                f"{prefix}/L{layer}/spmm",
                subgraph.graph,
                fan_in,
                specs,
                metadata=metadata,
                resident_b=layer > 0,
                tags={"layer": layer, "phase": "aggregate"},
            )
        )
        jobs.append(
            make_gemm_job(
                f"{prefix}/L{layer}/gemm",
                n,
                fan_in,
                fan_out,
                specs,
                resident_inputs=True,
                resident_weights=True,
                tags={"layer": layer, "phase": "combine"},
            )
        )
        jobs.append(
            make_vadd_job(
                f"{prefix}/L{layer}/vadd",
                n * fan_out,
                specs,
                vector_width=fan_out,
                resident=True,
                tags={"layer": layer, "phase": "bias"},
            )
        )
    return jobs


def batch_jobs(
    batch: list[Subgraph],
    config: GCNConfig,
    specs: dict[MemoryKind, MemorySpec],
    batch_id: int = 0,
) -> list[Job]:
    """Jobs for one sampled batch (one or many subgraphs)."""
    jobs: list[Job] = []
    for i, subgraph in enumerate(batch):
        jobs.extend(gcn_jobs(subgraph, config, specs, prefix=f"b{batch_id}/q{i}"))
    return jobs
