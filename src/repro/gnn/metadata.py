"""Subgraph metadata: the predictor's input features.

Section III-E: SpMM execution time depends on the *contents* of the
subgraph adjacency matrix.  The paper's proxy metric is the job size
per allocation, ``nnz(x) / H_w(x)``, where ``H_w(x)`` counts the
non-zero *partial rows* (prows) of width ``w``: rows of the vertical
strips of A that contain at least one non-zero.  The predictor instead
learns from cheap subgraph metadata (nnz, node count, degree moments)
-- metadata that does *not* require the full adjacency scan that
computing H_w exactly would.

This module provides both: the exact strip statistics used by the SpMM
timing model / oracle, and the cheap metadata vector the MLP regressors
consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import CSRGraph
from .sampler import Subgraph

__all__ = ["nonzero_prows", "prow_population", "SubgraphMetadata", "extract_metadata"]


def prow_population(graph: CSRGraph, width: int) -> np.ndarray:
    """Non-zero counts of every non-empty prow of strip width ``width``.

    A prow is the segment of adjacency row ``r`` covering columns
    ``[s*width, (s+1)*width)``; its population is how many non-zeros it
    holds -- i.e. how many B-rows one multi-operand accumulation can
    fuse on ReRAM.  Returned in no particular order.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if graph.nnz == 0:
        return np.empty(0, dtype=np.int64)
    rows = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    strips = graph.indices // width
    num_strips = -(-graph.num_nodes // width)
    keys = rows * num_strips + strips
    _, counts = np.unique(keys, return_counts=True)
    return counts


def nonzero_prows(graph: CSRGraph, width: int) -> int:
    """``H_w(x)``: the number of non-zero prows of width ``width``."""
    return int(len(prow_population(graph, width)))


@dataclass(frozen=True)
class SubgraphMetadata:
    """Cheap per-subgraph features for the performance predictor.

    All fields are computable from the sampler output without scanning
    the adjacency matrix column-by-column (degree statistics fall out
    of the CSR indptr for free).
    """

    num_nodes: int
    nnz: int
    feature_dim: int
    avg_degree: float
    max_degree: int
    degree_std: float
    num_queries: int

    def as_features(self, width: int) -> np.ndarray:
        """Feature vector for the H_w regressor (includes the strip
        width ``w``, per the paper's training recipe)."""
        return np.asarray(
            [
                float(self.num_nodes),
                float(self.nnz),
                float(self.feature_dim),
                self.avg_degree,
                float(self.max_degree),
                self.degree_std,
                float(self.num_queries),
                float(width),
            ]
        )

    @staticmethod
    def feature_names(width_included: bool = True) -> list[str]:
        names = [
            "num_nodes",
            "nnz",
            "feature_dim",
            "avg_degree",
            "max_degree",
            "degree_std",
            "num_queries",
        ]
        return names + ["width"] if width_included else names


def extract_metadata(subgraph: Subgraph, feature_dim: int) -> SubgraphMetadata:
    """Compute the metadata vector for one sampled subgraph."""
    graph = subgraph.graph
    degrees = graph.degrees()
    return SubgraphMetadata(
        num_nodes=graph.num_nodes,
        nnz=graph.nnz,
        feature_dim=feature_dim,
        avg_degree=float(degrees.mean()) if len(degrees) else 0.0,
        max_degree=int(degrees.max()) if len(degrees) else 0,
        degree_std=float(degrees.std()) if len(degrees) else 0.0,
        num_queries=len(subgraph.query_nodes),
    )
