"""CSR graph substrate for the GNN workloads.

Immutable compressed-sparse-row adjacency with the operations the GNN
pipeline needs: degree queries, induced subgraph extraction (the
neighbour sampler's output), and the symmetric normalisation
``D^{-1/2} A D^{-1/2}`` used by GCN aggregation (paper II-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """Directed graph in CSR form (undirected graphs store both arcs).

    ``indptr`` has length ``num_nodes + 1``; ``indices[indptr[v]:
    indptr[v+1]]`` are the out-neighbours of ``v``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int
    name: str = "graph"

    def __post_init__(self) -> None:
        indptr = np.asarray(self.indptr, dtype=np.int64)
        indices = np.asarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if len(indptr) != self.num_nodes + 1:
            raise ValueError("indptr length must be num_nodes + 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr endpoints are inconsistent with indices")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) and (indices.min() < 0 or indices.max() >= self.num_nodes):
            raise ValueError("indices out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: np.ndarray, name: str = "graph", symmetric: bool = True
    ) -> "CSRGraph":
        """Build from an (E, 2) edge array; optionally symmetrise.

        Duplicate arcs and self-loops are removed.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if symmetric and len(edges):
            edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
        if len(edges):
            edges = edges[edges[:, 0] != edges[:, 1]]
            # unique arcs via linear keys
            keys = edges[:, 0] * num_nodes + edges[:, 1]
            edges = edges[np.unique(keys, return_index=True)[1]]
            order = np.lexsort((edges[:, 1], edges[:, 0]))
            edges = edges[order]
        counts = np.bincount(edges[:, 0], minlength=num_nodes) if len(edges) else np.zeros(
            num_nodes, dtype=np.int64
        )
        indptr = np.concatenate([[0], np.cumsum(counts)])
        indices = edges[:, 1] if len(edges) else np.empty(0, dtype=np.int64)
        return cls(indptr=indptr, indices=indices, num_nodes=num_nodes, name=name)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Stored arcs (an undirected edge counts twice)."""
        return int(len(self.indices))

    @property
    def nnz(self) -> int:
        """Non-zeros of the adjacency matrix (alias of ``num_edges``)."""
        return self.num_edges

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def neighbors(self, node: int) -> np.ndarray:
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range")
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def avg_degree(self) -> float:
        return self.num_edges / self.num_nodes if self.num_nodes else 0.0

    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: np.ndarray, name: str | None = None) -> "CSRGraph":
        """Subgraph on ``nodes`` with locally re-numbered vertices.

        The order of ``nodes`` defines the new numbering (duplicates
        are rejected).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(np.unique(nodes)) != len(nodes):
            raise ValueError("node list contains duplicates")
        mapping = np.full(self.num_nodes, -1, dtype=np.int64)
        mapping[nodes] = np.arange(len(nodes))
        # Vectorised gather of all adjacency runs of the kept nodes.
        starts = self.indptr[nodes]
        counts = self.indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total:
            run_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
            flat = np.arange(total) + np.repeat(starts - run_offsets, counts)
            local_dst = mapping[self.indices[flat]]
            local_src = np.repeat(np.arange(len(nodes)), counts)
            keep = local_dst >= 0
            local_src, local_dst = local_src[keep], local_dst[keep]
            order = np.lexsort((local_dst, local_src))
            local_src, local_dst = local_src[order], local_dst[order]
        else:
            local_src = local_dst = np.empty(0, dtype=np.int64)
        sub_counts = np.bincount(local_src, minlength=len(nodes))
        return CSRGraph(
            indptr=np.concatenate([[0], np.cumsum(sub_counts)]),
            indices=local_dst,
            num_nodes=len(nodes),
            name=name or f"{self.name}/sub{len(nodes)}",
        )

    def normalized_adjacency_values(self) -> np.ndarray:
        """Edge values of ``D^{-1/2} A D^{-1/2}`` in CSR order.

        Isolated endpoints contribute zero (they have no edges anyway);
        GCN's renormalisation trick adds self loops upstream if wanted.
        """
        deg = self.degrees().astype(float)
        inv_sqrt = np.zeros_like(deg)
        nonzero = deg > 0
        inv_sqrt[nonzero] = 1.0 / np.sqrt(deg[nonzero])
        rows = np.repeat(np.arange(self.num_nodes), np.diff(self.indptr))
        return inv_sqrt[rows] * inv_sqrt[self.indices]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"arcs={self.num_edges})"
        )
