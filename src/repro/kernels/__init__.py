"""Kernel mappings: GEMM, SpMM and element-wise kernels per memory."""

from .gemm import gemm_flops, gemm_profile, make_gemm_job
from .mapping import (
    BUFFER_ARRAY_OVERHEAD,
    STATIONARY_FRACTION,
    elements_per_wordline,
    spmm_strip_width,
    spmm_unit_arrays,
)
from .spmm import make_spmm_job, spmm_macs, spmm_profile
from .vadd import make_vadd_job, vadd_profile

__all__ = [
    "gemm_flops",
    "gemm_profile",
    "make_gemm_job",
    "BUFFER_ARRAY_OVERHEAD",
    "STATIONARY_FRACTION",
    "elements_per_wordline",
    "spmm_strip_width",
    "spmm_unit_arrays",
    "make_spmm_job",
    "spmm_macs",
    "spmm_profile",
    "make_vadd_job",
    "vadd_profile",
]
