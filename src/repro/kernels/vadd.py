"""Element-wise vector kernels (Vadd and friends).

The third GCN kernel the paper reports (Figure 11) is a plain vector
add -- bias/residual additions over the node-feature matrix.  Mapping
is trivial: operands vertically aligned per lane, one bit-serial add
(or peripheral add on ReRAM) per element.
"""

from __future__ import annotations

import math

from ..core.job import Job, JobPerfProfile
from ..isa.ops import Op
from ..isa.timing import op_cycles
from ..memories.base import ELEMENT_BYTES, MemoryKind, MemorySpec
from .mapping import (
    STATIONARY_FRACTION,
    cap_unit_arrays,
    nominal_load_seconds,
    replica_copy_seconds,
)

__all__ = ["vadd_profile", "make_vadd_job"]


def vadd_profile(
    spec: MemorySpec,
    elements: int,
    vector_width: int | None = None,
    op: Op = Op.ADD,
    resident: bool = False,
) -> JobPerfProfile:
    """Ground-truth profile for an element-wise ``op`` over ``elements``.

    ``resident`` marks both operands as already in the compute region
    (chained in-memory kernels), suppressing the off-chip fill.
    """
    if elements < 1:
        raise ValueError("elements must be positive")
    # Both operands plus the result live in the array.
    footprint = 3 * elements * ELEMENT_BYTES
    capacity = spec.geometry.bytes * STATIONARY_FRACTION * 2  # operands may overwrite
    unit_arrays = max(1, math.ceil(footprint / capacity))
    unit_arrays, n_iter = cap_unit_arrays(spec, unit_arrays)

    elements_per_iter = math.ceil(elements / n_iter)
    lanes = spec.usable_lanes(vector_width) * unit_arrays
    waves = max(1, math.ceil(elements_per_iter / lanes))
    cycles = op_cycles(spec.kind, op, spec.element_bits)
    t_compute_unit = spec.seconds(waves * cycles)

    in_bytes = 0 if resident else 2 * elements * ELEMENT_BYTES
    energy_per_op = spec.energy_per_mac_pj * cycles / spec.mac_cycles_2op
    return JobPerfProfile(
        unit_arrays=unit_arrays,
        t_load=nominal_load_seconds(spec, in_bytes / n_iter),
        t_replica_unit=replica_copy_seconds(spec, elements_per_iter * ELEMENT_BYTES),
        t_compute_unit=t_compute_unit,
        waves_unit=waves,
        n_iter=n_iter,
        fill_bytes=in_bytes / n_iter,
        compute_energy_j=elements * energy_per_op * 1e-12,
        vector_width=vector_width,
    )


def make_vadd_job(
    job_id: str,
    elements: int,
    specs: dict[MemoryKind, MemorySpec],
    vector_width: int | None = None,
    op: Op = Op.ADD,
    resident: bool = False,
    tags: dict | None = None,
) -> Job:
    """Cross-map an element-wise kernel onto every memory layer."""
    profiles = {
        kind: vadd_profile(spec, elements, vector_width, op, resident)
        for kind, spec in specs.items()
    }
    job_tags = {"elements": elements, "op": op.value}
    if tags:
        job_tags.update(tags)
    return Job(job_id=job_id, kernel="vadd", profiles=profiles, tags=job_tags)
