"""Shared data-mapping helpers for the kernel libraries.

These encode the per-technology layout rules the kernel mappings in
this package rely on:

* bit-serial arrays (SRAM/DRAM) store one element per lane across
  ``element_bits`` wordlines, so an array's element capacity is
  ``geometry.bits / element_bits``;
* the ReRAM crossbar spreads one 16-bit element over
  ``element_bits / bits_per_cell`` cells of a wordline, so a 128x128
  crossbar wordline holds 16 elements and a full feature vector spans
  ``ceil(f / 16)`` crossbars side by side (ISAAC-style column
  partitioning), with up to 128 stationary rows per crossbar to
  multi-operand-accumulate over.
"""

from __future__ import annotations

import math

from ..memories.base import ELEMENT_BYTES, MemoryKind, MemorySpec

__all__ = [
    "elements_per_wordline",
    "reram_strip_geometry",
    "bitserial_strip_rows",
    "spmm_strip_width",
    "spmm_unit_arrays",
    "nominal_load_seconds",
    "replica_copy_seconds",
    "stationary_bytes",
    "BUFFER_ARRAY_OVERHEAD",
    "STATIONARY_FRACTION",
]

#: Fraction of a bit-serial array's capacity given to stationary data;
#: the rest holds streamed operands and partial sums.
STATIONARY_FRACTION = 0.5

#: Extra arrays reserved as partial-sum buffer arrays for SpMM
#: ("Buffer arrays are utilized to temporarily store and accumulate
#: the partial sum vector", paper III-D3).
BUFFER_ARRAY_OVERHEAD = 0.2


def elements_per_wordline(spec: MemorySpec) -> int:
    """Elements stored along one wordline (ReRAM bit-parallel layout)."""
    return max(1, (spec.geometry.cols * spec.geometry.bits_per_cell) // spec.element_bits)


def reram_strip_geometry(spec: MemorySpec, feature_dim: int) -> tuple[int, int]:
    """(stationary rows per strip, crossbars per strip) for ReRAM.

    A strip holds up to ``geometry.rows`` stationary B rows; each
    feature vector spans ``ceil(f / elements_per_wordline)`` crossbars.
    """
    if feature_dim <= 0:
        raise ValueError("feature_dim must be positive")
    per_line = elements_per_wordline(spec)
    crossbars = math.ceil(feature_dim / per_line)
    return spec.geometry.rows, crossbars


def bitserial_strip_rows(spec: MemorySpec, feature_dim: int) -> int:
    """Stationary B rows per bit-serial array for SpMM.

    Half the array (``STATIONARY_FRACTION``) holds the B slice; each B
    row occupies ``feature_dim`` lanes' storage.
    """
    if feature_dim <= 0:
        raise ValueError("feature_dim must be positive")
    capacity = spec.array_capacity_elements()
    rows = int(capacity * STATIONARY_FRACTION) // feature_dim
    return max(1, rows)


def spmm_strip_width(spec: MemorySpec, feature_dim: int) -> int:
    """Strip width ``w``: B rows co-resident per allocation strip.

    This is also the prow width of the paper's ``H_w`` statistic --
    the ReRAM configuration yields w = 128, matching the paper's use
    of ``H_128`` in Figure 10.
    """
    if spec.kind is MemoryKind.RERAM:
        rows, _ = reram_strip_geometry(spec, feature_dim)
        return rows
    return bitserial_strip_rows(spec, feature_dim)


def spmm_unit_arrays(spec: MemorySpec, num_b_rows: int, feature_dim: int) -> int:
    """Arrays holding one full replica of the dense B matrix."""
    if num_b_rows <= 0:
        raise ValueError("num_b_rows must be positive")
    width = spmm_strip_width(spec, feature_dim)
    strips = math.ceil(num_b_rows / width)
    if spec.kind is MemoryKind.RERAM:
        _, crossbars = reram_strip_geometry(spec, feature_dim)
        arrays = strips * crossbars
    else:
        arrays = strips
    return max(1, math.ceil(arrays * (1.0 + BUFFER_ARRAY_OVERHEAD)))


#: A single job's unit allocation may use at most this fraction of a
#: device; larger working sets iterate (Eq. 1's n_iter).
UNIT_CAP_FRACTION = 0.5


def cap_unit_arrays(spec: MemorySpec, unit_arrays: int) -> tuple[int, int]:
    """Clamp a unit allocation to the device, returning (unit, n_iter).

    When one replica of the stationary data exceeds the cap, the job
    processes it in ``n_iter`` sequential chunks -- the paper's
    ``n_iter(x) = datasize(x) / a_repunit`` (Eq. 1).
    """
    cap = max(1, int(spec.num_arrays * UNIT_CAP_FRACTION))
    if unit_arrays <= cap:
        return unit_arrays, 1
    return cap, math.ceil(unit_arrays / cap)


def nominal_load_seconds(spec: MemorySpec, nbytes: float) -> float:
    """Nominal (uncontended) time to fill ``nbytes`` into the device."""
    return spec.fill_seconds(nbytes)


def replica_copy_seconds(spec: MemorySpec, nbytes: float) -> float:
    """Time to produce one in-memory replica of ``nbytes``."""
    return spec.copy_seconds(nbytes)


def stationary_bytes(rows: int, feature_dim: int) -> int:
    """Bytes of a dense (rows x feature_dim) stationary matrix."""
    return rows * feature_dim * ELEMENT_BYTES
