"""SpMM kernel mapping: the B-stationary lookup-based approach (III-D3).

Computes ``C = A @ B`` where A is the (normalised) sparse adjacency of
a sampled subgraph and B the dense node-feature matrix -- the
*aggregation* step of a GCN layer.

Rather than decompressing A into memory (the inefficiency the paper
catalogues), B is partitioned into horizontal slices stored across
arrays; the matching vertical strip of A streams in row by row, and
each non-zero *prow* (partial row of strip width ``w``) triggers a
vector MAC over the feature lanes, using the non-zero column indices
as lookups into the resident B rows.

The decisive technology difference: the ReRAM crossbar accumulates all
``k`` non-zeros of a prow in *one* analog multi-operand operation
(strip width w = 128, the paper's ``H_128``), while bit-serial targets
sequence ``k`` two-operand MACs -- so ReRAM wins exactly when the job
size per allocation ``nnz / H_w`` is large (Figure 10).

Partial-sum vectors from different strips are merged in buffer arrays
(one add per non-zero prow); B-slice *replication* within a larger
allocation exploits input-row parallelism (paper: "having a few
replicas helps achieve good performance scaling").
"""

from __future__ import annotations

import math

import numpy as np

from ..core.job import Job, JobPerfProfile
from ..gnn.graph import CSRGraph
from ..gnn.metadata import SubgraphMetadata, prow_population
from ..isa.ops import Op
from ..isa.timing import op_cycles
from ..memories.base import ELEMENT_BYTES, MemoryKind, MemorySpec
from .mapping import (
    cap_unit_arrays,
    nominal_load_seconds,
    replica_copy_seconds,
    spmm_strip_width,
    spmm_unit_arrays,
)

__all__ = [
    "spmm_profile",
    "spmm_profile_c_stationary",
    "make_spmm_job",
    "spmm_macs",
    "spmm_stats",
]

#: Bytes per streamed non-zero of A (a 32-bit column index plus a
#: 16-bit value).
_NNZ_STREAM_BYTES = 6


def spmm_macs(adjacency: CSRGraph, feature_dim: int) -> int:
    """Element multiply-accumulates of the SpMM."""
    return adjacency.nnz * feature_dim


def spmm_stats(
    spec: MemorySpec, adjacency: CSRGraph, feature_dim: int
) -> tuple[int, int]:
    """(strip width w, H_w) for one target -- the paper's job-size
    statistics (III-E)."""
    width = spmm_strip_width(spec, feature_dim)
    return width, int(len(prow_population(adjacency, width)))


def spmm_profile(
    spec: MemorySpec,
    adjacency: CSRGraph,
    feature_dim: int,
    resident_b: bool = False,
) -> JobPerfProfile:
    """Ground-truth profile of one SpMM job on ``spec``.

    The compute model scans the actual adjacency: per strip of width
    ``w``, every non-zero prow costs one multi-operand accumulation
    (ReRAM) or ``k`` chained 2-operand MACs (bit-serial), repeated for
    each group of feature lanes, plus one partial-sum merge per prow.

    ``resident_b`` marks the dense matrix as already in the compute
    region (a later GCN layer consuming the previous layer's in-memory
    output) -- the "tight integration with the host memory hierarchy"
    that lets MLIMP bypass the memcpy bottleneck (paper V-B1); only
    the sparse-matrix stream is then charged.
    """
    if feature_dim <= 0:
        raise ValueError("feature_dim must be positive")
    n = adjacency.num_nodes
    if n < 1:
        raise ValueError("empty adjacency")

    width = spmm_strip_width(spec, feature_dim)
    unit_arrays = spmm_unit_arrays(spec, n, feature_dim)
    pops = prow_population(adjacency, width)
    h_w = len(pops)
    nnz = adjacency.nnz

    mac = op_cycles(spec.kind, Op.MAC, spec.element_bits)
    add = op_cycles(spec.kind, Op.ADD, spec.element_bits)

    if spec.kind is MemoryKind.RERAM:
        # ceil(k / 128) analog ops per prow.  The unit allocation holds
        # every strip AND the full ceil(f / 16) column partition, so
        # all feature segments advance in parallel; unit-compute time
        # divides by the resident strip count only.
        ops = int(np.ceil(pops / spec.max_operands).sum()) if h_w else 0
        strip_count = max(1, math.ceil(n / width))
        total_cycles = ops * mac + h_w * add
        t_compute_unit = spec.seconds(total_cycles / strip_count)
        mac_ops_for_energy = ops * feature_dim
    else:
        lanes = spec.usable_lanes(vector_width=feature_dim)
        feature_passes = math.ceil(feature_dim / lanes)
        strip_count = max(1, math.ceil(n / width))
        total_cycles = (nnz * mac + h_w * add) * feature_passes
        t_compute_unit = spec.seconds(total_cycles / strip_count)
        mac_ops_for_energy = nnz * feature_dim

    b_bytes = n * feature_dim * ELEMENT_BYTES
    a_bytes = nnz * _NNZ_STREAM_BYTES
    loaded_bytes = a_bytes if resident_b else b_bytes + a_bytes
    t_load = nominal_load_seconds(spec, loaded_bytes)
    t_replica = replica_copy_seconds(spec, b_bytes)

    # Input-row parallelism: replicas split the non-empty A rows.
    nonempty_rows = int(np.count_nonzero(np.diff(adjacency.indptr)))
    energy = mac_ops_for_energy * spec.energy_per_mac_pj * 1e-12

    # Small devices process the B slices in n_iter sequential chunks.
    unit_arrays, n_iter = cap_unit_arrays(spec, unit_arrays)
    return JobPerfProfile(
        unit_arrays=unit_arrays,
        t_load=t_load / n_iter,
        t_replica_unit=t_replica / n_iter,
        t_compute_unit=t_compute_unit / n_iter,
        waves_unit=max(1, nonempty_rows),
        n_iter=n_iter,
        fill_bytes=loaded_bytes / n_iter,
        compute_energy_j=energy,
        vector_width=feature_dim,
    )


def spmm_profile_c_stationary(
    spec: MemorySpec,
    adjacency: CSRGraph,
    feature_dim: int,
) -> JobPerfProfile:
    """C-stationary SpMM (the CPU/GPU-style reuse pattern, Fig. 9).

    Kept as the ablation baseline for the paper's B-stationary choice:
    the output block stays resident while A is kept and B is
    *re-streamed* once per strip of output rows ("multi-loading" in
    Fig. 9), and the per-output reductions are padded with the null
    entries the compressed format had eliminated (III-D3).  The paper
    measures B-stationary at 4.3x better memory latency and far better
    compute on ogbl-collab; this model reproduces both penalties.
    """
    if feature_dim <= 0:
        raise ValueError("feature_dim must be positive")
    n = adjacency.num_nodes
    width = spmm_strip_width(spec, feature_dim)
    unit_arrays = spmm_unit_arrays(spec, n, feature_dim)
    nnz = adjacency.nnz
    pops = prow_population(adjacency, width)
    h_w = len(pops)

    mac = op_cycles(spec.kind, Op.MAC, spec.element_bits)
    add = op_cycles(spec.kind, Op.ADD, spec.element_bits)
    strip_count = max(1, math.ceil(n / width))
    lanes = spec.usable_lanes(vector_width=feature_dim)
    feature_passes = math.ceil(feature_dim / lanes)
    # Decompression re-inserts the eliminated null elements, so the
    # in-memory compute is dense-equivalent (n x n MAC lattice) plus
    # null-padded reductions over every strip of every output row --
    # the "low compute density per array" of III-D3.
    dense_macs = n * min(n, width * strip_count)
    total_cycles = (dense_macs * mac + n * strip_count * width * add) * feature_passes
    t_compute_unit = spec.seconds(total_cycles / strip_count)

    b_bytes = n * feature_dim * ELEMENT_BYTES
    a_bytes = nnz * _NNZ_STREAM_BYTES
    # B is re-streamed once per output strip (multi-loading).
    loaded_bytes = b_bytes * strip_count + a_bytes
    t_load = nominal_load_seconds(spec, loaded_bytes)
    nonempty_rows = int(np.count_nonzero(np.diff(adjacency.indptr)))

    unit_arrays, n_iter = cap_unit_arrays(spec, unit_arrays)
    return JobPerfProfile(
        unit_arrays=unit_arrays,
        t_load=t_load / n_iter,
        t_replica_unit=replica_copy_seconds(spec, b_bytes) / n_iter,
        t_compute_unit=t_compute_unit / n_iter,
        waves_unit=max(1, nonempty_rows),
        n_iter=n_iter,
        fill_bytes=loaded_bytes / n_iter,
        compute_energy_j=nnz * feature_dim * spec.energy_per_mac_pj * 1e-12,
        vector_width=feature_dim,
    )


def make_spmm_job(
    job_id: str,
    adjacency: CSRGraph,
    feature_dim: int,
    specs: dict[MemoryKind, MemorySpec],
    metadata: SubgraphMetadata | None = None,
    resident_b: bool = False,
    tags: dict | None = None,
) -> Job:
    """Cross-map one SpMM onto every configured memory layer."""
    profiles = {
        kind: spmm_profile(spec, adjacency, feature_dim, resident_b=resident_b)
        for kind, spec in specs.items()
    }
    stats = {kind: spmm_stats(spec, adjacency, feature_dim) for kind, spec in specs.items()}
    job_tags = {
        "nodes": adjacency.num_nodes,
        "nnz": adjacency.nnz,
        "feature_dim": feature_dim,
        "macs": spmm_macs(adjacency, feature_dim),
        "strip_width": {kind: width for kind, (width, _) in stats.items()},
        "h_w": {kind: hw for kind, (_, hw) in stats.items()},
    }
    if tags:
        job_tags.update(tags)
    return Job(
        job_id=job_id,
        kernel="spmm",
        profiles=profiles,
        metadata=metadata,
        tags=job_tags,
    )
