"""GEMM kernel mapping (paper III-D2).

Computes ``Y = X @ W`` with input ``X`` of shape (rows, k) and the
stationary weight matrix ``W`` of shape (k, n) -- the *combination*
step of a GCN layer.

Bit-serial targets (SRAM/DRAM) follow the Neural-Cache style mapping:
the weight matrix is serialised across SIMD lanes and the input
feature vector is *duplicated* for each output column, so all k*n
products of one input row issue in parallel, followed by a log-depth
cross-lane reduction per output column.

The ReRAM target uses the natural ISAAC 2-D mapping: weights stationary
as conductances, inputs streamed bit-parallel on the wordlines, the
k-operand dot product accumulating on the bitlines in one analog MAC;
column-partitioned crossbars cover wide output dimensions.

Weight *replication* across a larger allocation lets several input
rows proceed in parallel (paper: "weights can also be replicated to
fully utilize the available memory space").
"""

from __future__ import annotations

import math

from ..isa.ops import Op
from ..isa.timing import op_cycles
from ..memories.base import ELEMENT_BYTES, MemoryKind, MemorySpec
from ..core.job import Job, JobPerfProfile
from .mapping import (
    cap_unit_arrays,
    elements_per_wordline,
    nominal_load_seconds,
    replica_copy_seconds,
)

__all__ = ["gemm_profile", "make_gemm_job", "gemm_flops"]


def gemm_flops(rows: int, k: int, n: int) -> int:
    """Multiply-accumulate count of the GEMM (one MAC = 2 flops)."""
    return 2 * rows * k * n


def _bitserial_profile(
    spec: MemorySpec, rows: int, k: int, n: int,
    resident_inputs: bool, resident_weights: bool,
) -> JobPerfProfile:
    lattice = k * n  # parallel products of one input row
    lanes = spec.usable_lanes(vector_width=lattice)
    unit_arrays = max(1, math.ceil(lattice / lanes))
    # A device too small for one full weight replica serialises each
    # input row over several waves instead.
    unit_arrays, lattice_chunks = cap_unit_arrays(spec, unit_arrays)
    # One wave = one input row (chunk): products in parallel, then a
    # log2(k)-level cross-lane reduction per output column.
    mac = op_cycles(spec.kind, Op.MAC, spec.element_bits)
    reduce_level = op_cycles(spec.kind, Op.REDUCE_ADD, spec.element_bits)
    wave_cycles = mac + max(0, math.ceil(math.log2(max(2, k)))) * reduce_level
    t_compute_unit = spec.seconds(rows * lattice_chunks * wave_cycles)

    weight_bytes = k * n * ELEMENT_BYTES
    input_bytes = rows * k * ELEMENT_BYTES
    loaded_bytes = (0 if resident_weights else weight_bytes) + (
        0 if resident_inputs else input_bytes
    )
    # Input duplication for each output column is an in-memory copy.
    duplication_bytes = rows * k * (n - 1) * ELEMENT_BYTES
    t_load = nominal_load_seconds(spec, loaded_bytes) + spec.copy_seconds(
        duplication_bytes
    )
    t_replica = replica_copy_seconds(spec, weight_bytes)

    energy = (
        rows * k * n * spec.energy_per_mac_pj
        + rows * n * math.ceil(math.log2(max(2, k))) * spec.energy_per_mac_pj * 0.1
    ) * 1e-12
    return JobPerfProfile(
        unit_arrays=unit_arrays,
        t_load=t_load,
        t_replica_unit=t_replica,
        t_compute_unit=t_compute_unit,
        waves_unit=max(1, rows * lattice_chunks),
        n_iter=1,
        fill_bytes=loaded_bytes,
        compute_energy_j=energy,
        vector_width=min(lattice, spec.alus_per_array),
    )


def _reram_profile(
    spec: MemorySpec, rows: int, k: int, n: int,
    resident_inputs: bool, resident_weights: bool,
) -> JobPerfProfile:
    per_line = elements_per_wordline(spec)  # 16 output columns per crossbar
    row_chunks = math.ceil(k / spec.geometry.rows)  # 128-operand bitline sums
    col_chunks = math.ceil(n / per_line)
    unit_arrays = max(1, row_chunks * col_chunks)
    unit_arrays, lattice_chunks = cap_unit_arrays(spec, unit_arrays)
    mac = op_cycles(spec.kind, Op.MAC, spec.element_bits)
    accum = op_cycles(spec.kind, Op.ADD, spec.element_bits)
    # One wave = one input row across all crossbars of the replica.
    wave_cycles = mac * 1 + max(0, row_chunks - 1) * accum
    t_compute_unit = spec.seconds(rows * lattice_chunks * wave_cycles)

    weight_bytes = k * n * ELEMENT_BYTES
    input_bytes = rows * k * ELEMENT_BYTES
    loaded_bytes = (0 if resident_weights else weight_bytes) + (
        0 if resident_inputs else input_bytes
    )
    # No input duplication: the crossbar broadcasts inputs on wordlines.
    t_load = nominal_load_seconds(spec, loaded_bytes)
    t_replica = replica_copy_seconds(spec, weight_bytes)

    # One analog op covers up to 128 operands: energy is charged per
    # multi-operand op per output lane.
    ops = rows * row_chunks * n
    energy = ops * spec.energy_per_mac_pj * 1e-12
    return JobPerfProfile(
        unit_arrays=unit_arrays,
        t_load=t_load,
        t_replica_unit=t_replica,
        t_compute_unit=t_compute_unit,
        waves_unit=max(1, rows * lattice_chunks),
        n_iter=1,
        fill_bytes=loaded_bytes,
        compute_energy_j=energy,
        vector_width=per_line,
    )


def gemm_profile(
    spec: MemorySpec,
    rows: int,
    k: int,
    n: int,
    resident_inputs: bool = False,
    resident_weights: bool = False,
) -> JobPerfProfile:
    """Ground-truth profile of an (rows x k) @ (k x n) GEMM on ``spec``.

    ``resident_inputs`` marks the activations as already in the
    compute region (chained from a previous in-memory kernel);
    ``resident_weights`` marks the stationary weights as reused across
    the batch (loaded once, paper III-D2) -- both suppress the
    corresponding off-chip fill.
    """
    if min(rows, k, n) < 1:
        raise ValueError("rows, k and n must be positive")
    if spec.kind is MemoryKind.RERAM:
        return _reram_profile(spec, rows, k, n, resident_inputs, resident_weights)
    return _bitserial_profile(spec, rows, k, n, resident_inputs, resident_weights)


def make_gemm_job(
    job_id: str,
    rows: int,
    k: int,
    n: int,
    specs: dict[MemoryKind, MemorySpec],
    resident_inputs: bool = False,
    resident_weights: bool = False,
    tags: dict | None = None,
) -> Job:
    """Cross-map one GEMM onto every configured memory layer."""
    profiles = {
        kind: gemm_profile(spec, rows, k, n, resident_inputs, resident_weights)
        for kind, spec in specs.items()
    }
    job_tags = {"rows": rows, "k": k, "n": n, "flops": gemm_flops(rows, k, n)}
    if tags:
        job_tags.update(tags)
    return Job(job_id=job_id, kernel="gemm", profiles=profiles, tags=job_tags)
