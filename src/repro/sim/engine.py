"""A small deterministic discrete-event simulation engine.

The paper evaluates MLIMP with "an event-driven simulator with timing
models from IMP for in-ReRAM computing and Duality Cache for in-SRAM
computing" (Section IV).  This engine is the equivalent core: a
time-ordered event queue with deterministic tie-breaking, on top of
which the dispatcher (:mod:`repro.core.dispatcher`) models device
occupancy, job queues and shared-bandwidth transfers.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from .events import Event, EventHandle

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic event loop.

    Events scheduled for the same timestamp fire in scheduling order.
    Callbacks may schedule further events; :meth:`run` drains the
    queue (optionally up to a horizon).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[Event] = []
        self._processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled ones not yet popped)."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def after(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, *args)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties or the horizon passes.

        Returns the final simulation time.  ``max_events`` is a
        runaway guard for tests.
        """
        while self._queue:
            if max_events is not None and self._processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._queue, event)
                self._now = until
                return self._now
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def step(self) -> bool:
        """Process exactly one event; returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False
