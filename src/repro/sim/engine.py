"""A small deterministic discrete-event simulation engine.

The paper evaluates MLIMP with "an event-driven simulator with timing
models from IMP for in-ReRAM computing and Duality Cache for in-SRAM
computing" (Section IV).  This engine is the equivalent core: a
time-ordered event queue with deterministic tie-breaking, on top of
which the dispatcher (:mod:`repro.core.dispatcher`) models device
occupancy, job queues and shared-bandwidth transfers.

The hot loop is written for throughput:

* Heap entries are plain ``(time, seq, payload)`` tuples, so every
  sift during push/pop compares in C instead of calling a Python
  ``__lt__`` (``seq`` is unique, so the payload is never compared).
* :meth:`Simulator.run` drains every event sharing a timestamp in one
  chunk (one heap-top comparison per event instead of a full Python
  loop iteration of bookkeeping).
* Cancellation is tombstone-based with an O(1) active-event counter,
  and the heap is compacted in bulk only when tombstones dominate it
  (processor-sharing pipes cancel and reschedule completions on every
  membership change, so tombstones are the common case, not the
  exception).
* Besides callback events, the loop can fire *rows* of an attached
  columnar flight table (:meth:`at_row`): the payload is a bare row
  index and the transition logic lives in one handler, so the
  dispatcher's phase chain needs no per-phase closure or
  :class:`Event` object at all.  Row entries share the ``seq`` counter
  with ordinary events, which makes the interleaving of the columnar
  and object-based dispatch paths identical by construction.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from .events import Event, EventHandle, JobArrival

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


#: Compact the heap once it holds this many tombstones *and* they are
#: the majority of the queue.  Small enough to bound memory on
#: cancellation-heavy runs, large enough that compaction cost (O(n))
#: amortises over many pops.
_COMPACT_MIN_TOMBSTONES = 64


class Simulator:
    """Deterministic event loop.

    Events scheduled for the same timestamp fire in scheduling order.
    Callbacks may schedule further events; :meth:`run` drains the
    queue (optionally up to a horizon).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: Heap of ``(time, seq, payload)``; payload is an
        #: :class:`Event` or an ``int`` row index of the attached table.
        self._queue: list[tuple[float, int, Any]] = []
        self._processed = 0
        self._active = 0
        self._tombstones = 0
        self._fire_row: Callable[[int], None] | None = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Events scheduled and not yet executed or cancelled (O(1))."""
        return self._active

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        heapq.heappush(self._queue, (time, self._seq, event))
        self._seq += 1
        self._active += 1
        return EventHandle(event, self)

    def after(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, *args)

    def at_arrival(
        self, arrival: JobArrival, callback: Callable[[JobArrival], Any]
    ) -> EventHandle:
        """Schedule ``callback(arrival)`` at the arrival's timestamp.

        Open-system job arrivals (:class:`~repro.sim.events.JobArrival`)
        become ordinary timed events; same-timestamp arrivals fire in
        scheduling order like any other event, so trace-driven and
        Poisson workloads replay deterministically.
        """
        return self.at(arrival.time, callback, arrival)

    # ------------------------------------------------------------------
    def attach_row_handler(self, fire: Callable[[int], None]) -> None:
        """Register the columnar table's transition handler.

        Row entries scheduled with :meth:`at_row` fire through this
        single handler; one simulator owns at most one table.
        """
        if self._fire_row is not None:
            raise SimulationError("a row handler is already attached")
        self._fire_row = fire

    def at_row(self, time: float, row: int) -> None:
        """Schedule row ``row`` of the attached table at ``time``.

        Row entries are not cancellable (stale transitions are expected
        to no-op inside the handler, exactly like the object path's
        ``live()`` guard) and carry no :class:`Event`; they consume a
        ``seq`` like any event, so ordering against callback events is
        the same as if :meth:`at` had been used.
        """
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        heapq.heappush(self._queue, (time, self._seq, row))
        self._seq += 1
        self._active += 1

    def after_row(self, delay: float, row: int) -> None:
        """Schedule row ``row`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at_row(self._now + delay, row)

    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`: keep the O(1) pending
        count exact and remember the tombstone for compaction."""
        self._active -= 1
        self._tombstones += 1

    def _compact(self) -> None:
        """Drop every tombstone and re-heapify in one pass.

        Only called between chunks (no popped-but-unexecuted events in
        flight), where the tombstone count is exact.  Row entries are
        never tombstones.
        """
        self._queue = [
            entry
            for entry in self._queue
            if type(entry[2]) is int or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._tombstones = 0

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties or the horizon passes.

        Returns the final simulation time.  ``max_events`` is a
        runaway guard for tests.

        Ready events are drained in same-timestamp chunks: the chunk
        is popped off the heap in one burst, then executed in seq
        order.  A callback may cancel a later member of its own chunk,
        so each event re-checks its tombstone immediately before
        firing; events a callback *schedules* at the current timestamp
        form the next chunk (they carry higher seq numbers, so
        ordering is unchanged from the one-at-a-time loop).
        """
        queue = self._queue
        fire_row = self._fire_row
        chunk: list[tuple[float, int, Any]] = []
        while queue:
            head = queue[0]
            payload = head[2]
            if type(payload) is not int and payload.cancelled:
                heapq.heappop(queue)
                self._tombstones -= 1
                continue
            if until is not None and head[0] > until:
                self._now = until
                return self._now
            chunk_time = head[0]
            del chunk[:]
            while queue and queue[0][0] == chunk_time:
                entry = heapq.heappop(queue)
                payload = entry[2]
                if type(payload) is not int and payload.cancelled:
                    self._tombstones -= 1
                    continue
                chunk.append(entry)
            self._now = chunk_time
            for idx, entry in enumerate(chunk):
                payload = entry[2]
                if type(payload) is not int and payload.cancelled:
                    # Cancelled by an earlier callback in this chunk.
                    self._tombstones -= 1
                    continue
                if max_events is not None and self._processed >= max_events:
                    # The guard may trip mid-chunk; the rest of the
                    # chunk was already popped, so push it back before
                    # raising or the pending/tombstone accounting is
                    # corrupted and those events are silently lost.
                    for unexecuted in chunk[idx:]:
                        heapq.heappush(queue, unexecuted)
                    raise SimulationError(f"exceeded max_events={max_events}")
                self._processed += 1
                self._active -= 1
                if type(payload) is int:
                    fire_row(payload)
                else:
                    payload.executed = True
                    payload.callback(*payload.args)
            if (
                self._tombstones >= _COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 > len(queue)
            ):
                self._compact()
                queue = self._queue
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def step(self) -> bool:
        """Process exactly one event; returns False when queue is empty."""
        while self._queue:
            time, _, payload = heapq.heappop(self._queue)
            if type(payload) is int:
                self._now = time
                self._processed += 1
                self._active -= 1
                self._fire_row(payload)
                return True
            if payload.cancelled:
                self._tombstones -= 1
                continue
            self._now = time
            payload.executed = True
            self._processed += 1
            self._active -= 1
            payload.callback(*payload.args)
            return True
        return False
