"""A small deterministic discrete-event simulation engine.

The paper evaluates MLIMP with "an event-driven simulator with timing
models from IMP for in-ReRAM computing and Duality Cache for in-SRAM
computing" (Section IV).  This engine is the equivalent core: a
time-ordered event queue with deterministic tie-breaking, on top of
which the dispatcher (:mod:`repro.core.dispatcher`) models device
occupancy, job queues and shared-bandwidth transfers.

The hot loop is written for throughput: :meth:`Simulator.run` drains
every event sharing a timestamp in one chunk (one heap-top comparison
per event instead of a full Python loop iteration of bookkeeping),
cancellation is tombstone-based with an O(1) active-event counter, and
the heap is compacted in bulk only when tombstones dominate it
(processor-sharing pipes cancel and reschedule completions on every
membership change, so tombstones are the common case, not the
exception).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from .events import Event, EventHandle, JobArrival

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (e.g. scheduling in the past)."""


#: Compact the heap once it holds this many tombstones *and* they are
#: the majority of the queue.  Small enough to bound memory on
#: cancellation-heavy runs, large enough that compaction cost (O(n))
#: amortises over many pops.
_COMPACT_MIN_TOMBSTONES = 64


class Simulator:
    """Deterministic event loop.

    Events scheduled for the same timestamp fire in scheduling order.
    Callbacks may schedule further events; :meth:`run` drains the
    queue (optionally up to a horizon).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[Event] = []
        self._processed = 0
        self._active = 0
        self._tombstones = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Events scheduled and not yet executed or cancelled (O(1))."""
        return self._active

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._active += 1
        return EventHandle(event, self)

    def after(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, *args)

    def at_arrival(
        self, arrival: JobArrival, callback: Callable[[JobArrival], Any]
    ) -> EventHandle:
        """Schedule ``callback(arrival)`` at the arrival's timestamp.

        Open-system job arrivals (:class:`~repro.sim.events.JobArrival`)
        become ordinary timed events; same-timestamp arrivals fire in
        scheduling order like any other event, so trace-driven and
        Poisson workloads replay deterministically.
        """
        return self.at(arrival.time, callback, arrival)

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`: keep the O(1) pending
        count exact and remember the tombstone for compaction."""
        self._active -= 1
        self._tombstones += 1

    def _compact(self) -> None:
        """Drop every tombstone and re-heapify in one pass.

        Only called between chunks (no popped-but-unexecuted events in
        flight), where the tombstone count is exact.
        """
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties or the horizon passes.

        Returns the final simulation time.  ``max_events`` is a
        runaway guard for tests.

        Ready events are drained in same-timestamp chunks: the chunk
        is popped off the heap in one burst, then executed in seq
        order.  A callback may cancel a later member of its own chunk,
        so each event re-checks its tombstone immediately before
        firing; events a callback *schedules* at the current timestamp
        form the next chunk (they carry higher seq numbers, so
        ordering is unchanged from the one-at-a-time loop).
        """
        queue = self._queue
        chunk: list[Event] = []
        while queue:
            head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                self._tombstones -= 1
                continue
            if until is not None and head.time > until:
                self._now = until
                return self._now
            chunk_time = head.time
            del chunk[:]
            while queue and queue[0].time == chunk_time:
                event = heapq.heappop(queue)
                if event.cancelled:
                    self._tombstones -= 1
                    continue
                chunk.append(event)
            self._now = chunk_time
            for event in chunk:
                if event.cancelled:
                    # Cancelled by an earlier callback in this chunk.
                    self._tombstones -= 1
                    continue
                if max_events is not None and self._processed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                event.executed = True
                self._processed += 1
                self._active -= 1
                event.callback(*event.args)
            if (
                self._tombstones >= _COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 > len(queue)
            ):
                self._compact()
                queue = self._queue
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def step(self) -> bool:
        """Process exactly one event; returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            event.executed = True
            self._processed += 1
            self._active -= 1
            event.callback(*event.args)
            return True
        return False
