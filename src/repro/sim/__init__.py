"""Event-driven simulation substrate: engine, main memory, energy, traces."""

from .columnar import FlightColumns
from .energy import EnergyCategory, EnergyLedger
from .engine import SimulationError, Simulator
from .events import Event, EventHandle, JobArrival
from .mainmem import DDR4Config, SharedBandwidthPipe, Transfer
from .trace import ExecutionTrace, Phase, StreamingTrace, TraceRecord

__all__ = [
    "EnergyCategory",
    "EnergyLedger",
    "SimulationError",
    "Simulator",
    "Event",
    "EventHandle",
    "JobArrival",
    "DDR4Config",
    "SharedBandwidthPipe",
    "Transfer",
    "ExecutionTrace",
    "FlightColumns",
    "Phase",
    "StreamingTrace",
    "TraceRecord",
]
