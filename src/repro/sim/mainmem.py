"""Main-memory bandwidth model (Ramulator stand-in).

The paper simulates DDR4 load/store bandwidth with Ramulator integrated
into their event-driven simulator.  For scheduling-level fidelity what
matters is the *aggregate* behaviour: a fixed channel bandwidth shared
by every in-flight transfer, plus a fixed access latency.  We model the
channels as a processor-sharing pipe: all active transfers progress at
``total_bandwidth / n_active``; each time a transfer starts or ends the
remaining completion times are recomputed.  This captures the
first-order contention effect (loads issued together finish later than
loads issued alone) without per-request DRAM command modelling.

:class:`DDR4Config` defaults to the evaluated system: DDR4-2400 with 4
channels, 1 rank, 16 chips and 16 banks (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .engine import Simulator
from .events import EventHandle

__all__ = ["DDR4Config", "SharedBandwidthPipe", "Transfer"]


@dataclass(frozen=True)
class DDR4Config:
    """Aggregate DDR4 main-memory parameters."""

    channels: int = 4
    channel_bandwidth_gbps: float = 19.2  # DDR4-2400 x 64-bit
    access_latency_ns: float = 60.0
    energy_pj_per_bit: float = 15.0  # off-chip DRAM access energy

    @property
    def total_bandwidth_gbps(self) -> float:
        return self.channels * self.channel_bandwidth_gbps

    @property
    def total_bandwidth_bps(self) -> float:
        return self.total_bandwidth_gbps * 1e9

    def transfer_energy_j(self, nbytes: float) -> float:
        return nbytes * 8 * self.energy_pj_per_bit * 1e-12


@dataclass
class Transfer:
    """One in-flight bulk transfer through the shared pipe."""

    nbytes: float
    remaining: float
    on_done: Callable[[], None]
    started_at: float
    last_update: float
    handle: EventHandle | None = field(default=None, repr=False)


class SharedBandwidthPipe:
    """Processor-sharing bandwidth pipe driven by a :class:`Simulator`.

    ``submit`` starts a transfer and invokes ``on_done`` (via the
    simulator) once the bytes have drained; the fixed access latency is
    added up front.  Total bytes moved are tracked for energy
    accounting.
    """

    def __init__(self, sim: Simulator, config: DDR4Config | None = None) -> None:
        self.sim = sim
        self.config = config or DDR4Config()
        self._active: list[Transfer] = []
        self.total_bytes = 0.0
        #: Optional hook called with ``(now, active_transfers)`` every
        #: time pipe membership changes; the observability layer uses
        #: it to record DDR4 occupancy over time.
        self.on_occupancy: Callable[[float, int], None] | None = None

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def current_rate_bps(self) -> float:
        """Per-transfer rate right now."""
        if not self._active:
            return self.config.total_bandwidth_bps
        return self.config.total_bandwidth_bps / len(self._active)

    # ------------------------------------------------------------------
    def submit(self, nbytes: float, on_done: Callable[[], None]) -> None:
        """Start moving ``nbytes``; ``on_done()`` fires at completion."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.total_bytes += nbytes
        latency = self.config.access_latency_ns * 1e-9
        if nbytes == 0:
            self.sim.after(latency, on_done)
            return
        transfer = Transfer(
            nbytes=nbytes,
            remaining=float(nbytes),
            on_done=on_done,
            started_at=self.sim.now + latency,
            last_update=self.sim.now + latency,
        )
        # The access latency is modelled as a delayed join of the pipe.
        self.sim.after(latency, self._join, transfer)

    # ------------------------------------------------------------------
    def _join(self, transfer: Transfer) -> None:
        self._drain_progress()
        self._active.append(transfer)
        transfer.last_update = self.sim.now
        self._reschedule()
        if self.on_occupancy is not None:
            self.on_occupancy(self.sim.now, len(self._active))

    def _drain_progress(self) -> None:
        """Advance ``remaining`` of all active transfers to ``now``."""
        if not self._active:
            return
        rate = self.config.total_bandwidth_bps / len(self._active)
        for transfer in self._active:
            elapsed = self.sim.now - transfer.last_update
            transfer.remaining = max(0.0, transfer.remaining - elapsed * rate)
            transfer.last_update = self.sim.now

    def _reschedule(self) -> None:
        """Re-point completion events after membership changed."""
        for transfer in self._active:
            if transfer.handle is not None:
                transfer.handle.cancel()
                transfer.handle = None
        if not self._active:
            return
        rate = self.config.total_bandwidth_bps / len(self._active)
        soonest = min(self._active, key=lambda t: t.remaining)
        eta = soonest.remaining / rate
        soonest.handle = self.sim.after(eta, self._complete, soonest)

    def _complete(self, transfer: Transfer) -> None:
        self._drain_progress()
        # Floating-point drain may leave the finishing transfer with a
        # vanishing remainder; clamp it out.
        transfer.remaining = 0.0
        self._active.remove(transfer)
        self._reschedule()
        if self.on_occupancy is not None:
            self.on_occupancy(self.sim.now, len(self._active))
        transfer.on_done()

    def energy_j(self) -> float:
        """Off-chip transfer energy consumed so far."""
        return self.config.transfer_energy_j(self.total_bytes)
