"""Event primitives for the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle"]


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is (time, seq): ties break in scheduling order so the
    simulation is deterministic.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle allowing an event to be cancelled."""

    _event: Event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled
