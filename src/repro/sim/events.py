"""Event primitives for the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle", "JobArrival"]


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is (time, seq): ties break in scheduling order so the
    simulation is deterministic.  ``cancelled`` events stay in the
    heap as *tombstones* and are discarded lazily when popped (or in
    bulk when the owning simulator compacts its queue); ``executed``
    marks events that already fired, so a late ``cancel()`` cannot
    corrupt the simulator's pending-event accounting.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    executed: bool = field(compare=False, default=False)


@dataclass(frozen=True, order=True)
class JobArrival:
    """One timed open-system job arrival (the serving layer's unit).

    The closed-batch dispatcher sees its whole queue at t = 0; an open
    system does not -- jobs materialise while the simulation runs.  A
    :class:`JobArrival` is the record of one such materialisation: at
    ``time``, ``tenant`` submitted ``job``.  Arrival processes
    (:mod:`repro.serving.arrivals`) produce deterministic, time-sorted
    lists of these, and the dispatcher turns each into a first-class
    simulator event via :meth:`Simulator.at_arrival`.

    Ordering is (time, seq), mirroring :class:`Event`: ties break in
    generation order so open-system runs stay deterministic.
    """

    time: float
    seq: int
    tenant: str = field(compare=False, default="")
    job: Any = field(compare=False, default=None)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"arrival time must be non-negative, got {self.time}")


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle allowing an event to be cancelled.

    Cancellation is tombstone-based: the event is only flagged, never
    searched for in the heap (O(1) instead of O(n)); the simulator is
    notified so its O(1) pending count stays exact and it can compact
    the queue when tombstones pile up (processor-sharing transfers
    cancel and reschedule their completion on every membership change).
    """

    _event: Event
    _owner: Any = None

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was
        already cancelled."""
        event = self._event
        if event.cancelled or event.executed:
            return
        event.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still going to fire."""
        return not (self._event.cancelled or self._event.executed)
