"""Struct-of-arrays storage for in-flight job phases (the columnar
simulation hot path).

The object-based dispatcher models each launched job with four Python
closures (``begin_fill`` / ``after_fill`` / ``after_replicate`` /
``finish``), one :class:`~repro.sim.events.Event` object and one heap
handle per phase transition.  At tens of thousands of jobs that is the
simulator's allocation hot spot.

The columnar path replaces all of it with *rows* of a
:class:`FlightColumns` table: the in-flight state lives in parallel
NumPy arrays (phase state code, device ordinal, armed phase-end time,
allocation size, fill bytes) plus parallel object columns for the
per-row context (job, dispatch, profile, ...).  A phase transition is
a bare row index in the simulator's heap
(:meth:`~repro.sim.engine.Simulator.at_row`); the engine's chunked
drain fires every same-timestamp row through one registered handler,
which advances the row's state machine in place.  No per-phase
closures, no ``Event`` objects, no per-transition heap handle -- and
because row entries consume sequence numbers from the same counter as
ordinary events, the firing order is identical to the object path's by
construction (the byte-identical differential gates rely on this).

Rows are recycled through a free list, so the table's footprint is
bounded by the *concurrent* in-flight population, not by the total
number of jobs simulated.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FlightColumns",
    "PHASE_BEGIN_FILL",
    "PHASE_FILL_DONE",
    "PHASE_REPLICATE_DONE",
    "PHASE_COMPUTE_DONE",
]

#: Row state codes: which transition fires when the armed time is due.
PHASE_BEGIN_FILL = 0
PHASE_FILL_DONE = 1
PHASE_REPLICATE_DONE = 2
PHASE_COMPUTE_DONE = 3

_NUMERIC = ("state", "end_time", "device", "arrays", "t0", "attempt", "fill_bytes")
_OBJECT = ("job", "kind", "dispatch", "profile", "spec", "record", "flight", "alloc")


class FlightColumns:
    """Parallel columns describing every in-flight job phase row.

    Numeric columns are NumPy arrays (grown by doubling); object
    context rides in parallel Python lists.  The table itself is
    policy-free: the dispatcher owns the transition logic and this
    class owns the storage.
    """

    __slots__ = _NUMERIC + _OBJECT + ("free",)

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.state = np.zeros(capacity, dtype=np.int8)
        self.end_time = np.zeros(capacity, dtype=np.float64)
        self.device = np.zeros(capacity, dtype=np.int16)
        self.arrays = np.zeros(capacity, dtype=np.int64)
        self.t0 = np.zeros(capacity, dtype=np.float64)
        self.attempt = np.zeros(capacity, dtype=np.int64)
        self.fill_bytes = np.zeros(capacity, dtype=np.float64)
        for name in _OBJECT:
            setattr(self, name, [None] * capacity)
        # Popping from the tail hands out low indices first, which
        # keeps the live region of the arrays dense.
        self.free = list(range(capacity - 1, -1, -1))

    @property
    def capacity(self) -> int:
        return len(self.state)

    @property
    def in_flight(self) -> int:
        """Rows currently acquired (phase transitions armed or pending)."""
        return self.capacity - len(self.free)

    def acquire(self) -> int:
        """Claim a free row index, doubling the columns when full."""
        if not self.free:
            self._grow()
        return self.free.pop()

    def release(self, row: int) -> None:
        """Return a row to the free list, dropping its object refs so
        finished jobs do not outlive their flight."""
        for name in _OBJECT:
            getattr(self, name)[row] = None
        self.free.append(row)

    def _grow(self) -> None:
        old = self.capacity
        for name in _NUMERIC:
            column = getattr(self, name)
            setattr(
                self,
                name,
                np.concatenate([column, np.zeros(old, dtype=column.dtype)]),
            )
        for name in _OBJECT:
            getattr(self, name).extend([None] * old)
        self.free.extend(range(2 * old - 1, old - 1, -1))
