"""Execution traces: what ran where, when.

The dispatcher records one :class:`TraceRecord` per job phase (fill,
replication, compute).  From the trace we derive the quantities the
paper's evaluation reports: makespan, per-device busy time and
utilisation, and *scheduling bubbles* (device-idle gaps while work was
still waiting), which Section III-C5 identifies as the adaptive
scheduler's weakness that global scheduling removes.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Phase", "TraceRecord", "ExecutionTrace"]


class Phase(enum.Enum):
    FILL = "fill"
    REPLICATE = "replicate"
    COMPUTE = "compute"
    DRAIN = "drain"


@dataclass(frozen=True)
class TraceRecord:
    """One contiguous activity of one job on one device."""

    job_id: str
    device: str
    phase: Phase
    start: float
    end: float
    arrays: int = 0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("trace record ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Append-only trace with derived schedule metrics."""

    records: list[TraceRecord] = field(default_factory=list)

    def add(self, record: TraceRecord) -> None:
        self.records.append(record)

    def record(
        self,
        job_id: str,
        device: str,
        phase: Phase,
        start: float,
        end: float,
        arrays: int = 0,
    ) -> None:
        self.add(TraceRecord(job_id, device, phase, start, end, arrays))

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self.records:
            return 0.0
        return max(r.end for r in self.records)

    def devices(self) -> list[str]:
        return sorted({r.device for r in self.records})

    def job_ids(self) -> list[str]:
        return sorted({r.job_id for r in self.records})

    def busy_time(self, device: str) -> float:
        """Union length of the device's active intervals."""
        intervals = sorted(
            (r.start, r.end) for r in self.records if r.device == device
        )
        busy = 0.0
        cursor = None
        for start, end in intervals:
            if cursor is None or start > cursor:
                busy += end - start
                cursor = end
            elif end > cursor:
                busy += end - cursor
                cursor = end
        return busy

    def utilisation(self, device: str) -> float:
        span = self.makespan
        if span == 0:
            return 0.0
        return self.busy_time(device) / span

    def job_span(self, job_id: str) -> tuple[float, float]:
        records = [r for r in self.records if r.job_id == job_id]
        if not records:
            raise KeyError(f"no trace records for job {job_id!r}")
        return min(r.start for r in records), max(r.end for r in records)

    def job_latency(self, job_id: str) -> float:
        start, end = self.job_span(job_id)
        return end - start

    def bubble_time(self, device: str) -> float:
        """Idle time on ``device`` between its first and last activity."""
        intervals = sorted(
            (r.start, r.end) for r in self.records if r.device == device
        )
        if not intervals:
            return 0.0
        first = intervals[0][0]
        last = max(end for _, end in intervals)
        return (last - first) - self.busy_time(device)

    def phase_time(self, phase: Phase) -> float:
        """Total (possibly overlapping) time spent in ``phase``."""
        return sum(r.duration for r in self.records if r.phase is phase)

    def per_device_phase_breakdown(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = defaultdict(lambda: defaultdict(float))
        for r in self.records:
            out[r.device][r.phase.value] += r.duration
        return {device: dict(phases) for device, phases in out.items()}
