"""Execution traces: what ran where, when.

The dispatcher records one trace row per job phase (fill, replication,
compute).  From the trace we derive the quantities the paper's
evaluation reports: makespan, per-device busy time and utilisation,
and *scheduling bubbles* (device-idle gaps while work was still
waiting), which Section III-C5 identifies as the adaptive scheduler's
weakness that global scheduling removes.

Storage is columnar (struct-of-arrays): parallel append-only columns
-- job id, device, phase, start, end, arrays -- instead of a list of
Python objects.  :class:`TraceRecord` objects are materialised lazily,
only when a caller actually asks for :attr:`ExecutionTrace.records`;
the analytics run directly over the numeric columns with NumPy.  For
open-ended runs (1M+ jobs) a :class:`StreamingTrace` keeps memory flat:
each row is forwarded to a sink (e.g. a JSONL writer) and only O(1)
aggregates are retained in memory.
"""

from __future__ import annotations

import enum
from array import array
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Phase", "TraceRecord", "ExecutionTrace", "StreamingTrace"]


class Phase(enum.Enum):
    FILL = "fill"
    REPLICATE = "replicate"
    COMPUTE = "compute"
    DRAIN = "drain"

    # Identity hash (members are singletons): phase-keyed dict lookups
    # in the analytics skip Enum's Python-level name hash.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class TraceRecord:
    """One contiguous activity of one job on one device."""

    job_id: str
    device: str
    phase: Phase
    start: float
    end: float
    arrays: int = 0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("trace record ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """Append-only columnar trace with derived schedule metrics.

    The public surface is unchanged from the object-based trace:
    :meth:`record` / :meth:`add` append, :attr:`records` yields
    :class:`TraceRecord` objects (materialised on first access and
    cached until the next append).
    """

    __slots__ = (
        "_job_ids",
        "_devices",
        "_phases",
        "_starts",
        "_ends",
        "_arrays",
        "_materialised",
    )

    def __init__(self, records: list[TraceRecord] | None = None) -> None:
        self._job_ids: list[str] = []
        self._devices: list[str] = []
        self._phases: list[Phase] = []
        self._starts = array("d")
        self._ends = array("d")
        self._arrays = array("q")
        self._materialised: list[TraceRecord] | None = None
        for record in records or ():
            self.add(record)

    def __len__(self) -> int:
        return len(self._starts)

    def record(
        self,
        job_id: str,
        device: str,
        phase: Phase,
        start: float,
        end: float,
        arrays: int = 0,
    ) -> None:
        if end < start:
            raise ValueError("trace record ends before it starts")
        self._job_ids.append(job_id)
        self._devices.append(device)
        self._phases.append(phase)
        self._starts.append(start)
        self._ends.append(end)
        self._arrays.append(arrays)
        self._materialised = None

    def add(self, record: TraceRecord) -> None:
        self.record(
            record.job_id,
            record.device,
            record.phase,
            record.start,
            record.end,
            record.arrays,
        )

    @property
    def records(self) -> list[TraceRecord]:
        """The trace as :class:`TraceRecord` objects (lazy, cached)."""
        if self._materialised is None:
            self._materialised = [
                TraceRecord(*row)
                for row in zip(
                    self._job_ids,
                    self._devices,
                    self._phases,
                    self._starts,
                    self._ends,
                    self._arrays,
                )
            ]
        return self._materialised

    # -- columnar views -------------------------------------------------
    # Copies, not buffer views: a live view of an ``array`` would make
    # the next append raise BufferError ("exporting buffers").
    def starts(self) -> np.ndarray:
        return np.frombuffer(self._starts, dtype=np.float64).copy()

    def ends(self) -> np.ndarray:
        return np.frombuffer(self._ends, dtype=np.float64).copy()

    def _device_mask(self, device: str) -> np.ndarray:
        return np.fromiter(
            (d == device for d in self._devices),
            dtype=bool,
            count=len(self._devices),
        )

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self._ends:
            return 0.0
        return float(self.ends().max())

    def devices(self) -> list[str]:
        return sorted(set(self._devices))

    def job_ids(self) -> list[str]:
        return sorted(set(self._job_ids))

    def _intervals(self, device: str) -> np.ndarray:
        """(n, 2) start/end pairs on ``device``, sorted lexicographically
        (matching the object-based ``sorted()`` of tuples)."""
        mask = self._device_mask(device)
        pairs = np.column_stack((self.starts()[mask], self.ends()[mask]))
        if pairs.size:
            order = np.lexsort((pairs[:, 1], pairs[:, 0]))
            pairs = pairs[order]
        return pairs

    @staticmethod
    def _union_length(pairs: np.ndarray) -> float:
        """Union length of sorted intervals, vectorised: each interval
        contributes the part past the running maximum of earlier ends."""
        if not pairs.size:
            return 0.0
        starts, ends = pairs[:, 0], pairs[:, 1]
        cover = np.empty_like(ends)
        cover[0] = starts[0]
        np.maximum.accumulate(ends[:-1], out=cover[1:])
        cover[1:] = np.maximum(cover[1:], starts[1:])
        cover[0] = starts[0]
        return float(np.maximum(0.0, ends - cover).sum())

    def busy_time(self, device: str) -> float:
        """Union length of the device's active intervals."""
        return self._union_length(self._intervals(device))

    def utilisation(self, device: str) -> float:
        span = self.makespan
        if span == 0:
            return 0.0
        return self.busy_time(device) / span

    def job_span(self, job_id: str) -> tuple[float, float]:
        mask = np.fromiter(
            (j == job_id for j in self._job_ids),
            dtype=bool,
            count=len(self._job_ids),
        )
        if not mask.any():
            raise KeyError(f"no trace records for job {job_id!r}")
        return float(self.starts()[mask].min()), float(self.ends()[mask].max())

    def job_latency(self, job_id: str) -> float:
        start, end = self.job_span(job_id)
        return end - start

    def bubble_time(self, device: str) -> float:
        """Idle time on ``device`` between its first and last activity."""
        pairs = self._intervals(device)
        if not pairs.size:
            return 0.0
        first = float(pairs[0, 0])
        last = float(pairs[:, 1].max())
        return (last - first) - self._union_length(pairs)

    def phase_time(self, phase: Phase) -> float:
        """Total (possibly overlapping) time spent in ``phase``."""
        return sum(
            e - s
            for s, e, p in zip(self._starts, self._ends, self._phases)
            if p is phase
        )

    def per_device_phase_breakdown(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = defaultdict(lambda: defaultdict(float))
        for device, phase, start, end in zip(
            self._devices, self._phases, self._starts, self._ends
        ):
            out[device][phase.value] += end - start
        return {device: dict(phases) for device, phases in out.items()}


class StreamingTrace:
    """Trace sink for open-ended runs: rows stream out, memory stays flat.

    Implements the same :meth:`record` / :meth:`add` append interface
    as :class:`ExecutionTrace`, but keeps no per-row state: each row is
    forwarded to ``sink`` (a callable receiving ``(job_id, device,
    phase_value, start, end, arrays)`` tuples -- e.g. a JSONL writer or
    a downsampling aggregator) and only O(1) running aggregates stay in
    memory, so a 1M-job serving run does not hold 3M+ trace rows.

    Supported analytics are the aggregate subset: :attr:`makespan`,
    :meth:`devices`, :meth:`phase_time` and
    :meth:`per_device_phase_breakdown`.  Row-level queries
    (:attr:`records`, ``busy_time``...) need the full trace and raise
    :class:`TypeError`.
    """

    __slots__ = ("sink", "rows", "_makespan", "_phase_seconds", "_by_device")

    def __init__(self, sink: Callable[[tuple], None] | None = None) -> None:
        self.sink = sink
        self.rows = 0
        self._makespan = 0.0
        self._phase_seconds: dict[Phase, float] = {}
        self._by_device: dict[str, dict[str, float]] = {}

    def record(
        self,
        job_id: str,
        device: str,
        phase: Phase,
        start: float,
        end: float,
        arrays: int = 0,
    ) -> None:
        if end < start:
            raise ValueError("trace record ends before it starts")
        self.rows += 1
        if end > self._makespan:
            self._makespan = end
        duration = end - start
        self._phase_seconds[phase] = self._phase_seconds.get(phase, 0.0) + duration
        per_phase = self._by_device.setdefault(device, {})
        per_phase[phase.value] = per_phase.get(phase.value, 0.0) + duration
        if self.sink is not None:
            self.sink((job_id, device, phase.value, start, end, arrays))

    def add(self, record: TraceRecord) -> None:
        self.record(
            record.job_id,
            record.device,
            record.phase,
            record.start,
            record.end,
            record.arrays,
        )

    @property
    def makespan(self) -> float:
        return self._makespan

    def devices(self) -> list[str]:
        return sorted(self._by_device)

    def phase_time(self, phase: Phase) -> float:
        return self._phase_seconds.get(phase, 0.0)

    def per_device_phase_breakdown(self) -> dict[str, dict[str, float]]:
        return {device: dict(phases) for device, phases in self._by_device.items()}

    @property
    def records(self):
        raise TypeError(
            "StreamingTrace keeps no rows; attach a sink to capture them"
        )
