"""Energy accounting for simulation runs.

Energy is tracked as a ledger of (category, device) -> joules so the
Figure 14 breakdown (compute vs data transfer, per memory layer, vs
CPU/GPU baselines) can be regenerated from one run.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["EnergyCategory", "EnergyLedger"]


class EnergyCategory(enum.Enum):
    """Where the joules went."""

    COMPUTE = "compute"  # in-array operations
    FILL = "fill"  # loading operands into compute regions
    REPLICATION = "replication"  # in-memory data copies
    OFFCHIP = "offchip"  # main-memory / PCIe transfers
    HOST = "host"  # CPU-side pre/post processing
    STATIC = "static"  # leakage over the run


@dataclass
class EnergyLedger:
    """Accumulates joules by (category, device) pairs."""

    _entries: dict[tuple[EnergyCategory, str], float] = field(
        default_factory=lambda: defaultdict(float)
    )

    def add(self, category: EnergyCategory, device: str, joules: float) -> None:
        if joules < 0:
            raise ValueError("energy must be non-negative")
        self._entries[(category, device)] += joules

    def total(self) -> float:
        return sum(self._entries.values())

    def by_category(self) -> dict[EnergyCategory, float]:
        out: dict[EnergyCategory, float] = defaultdict(float)
        for (category, _), joules in self._entries.items():
            out[category] += joules
        return dict(out)

    def by_device(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for (_, device), joules in self._entries.items():
            out[device] += joules
        return dict(out)

    def get(self, category: EnergyCategory, device: str) -> float:
        return self._entries.get((category, device), 0.0)

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        merged = EnergyLedger()
        for (category, device), joules in self._entries.items():
            merged.add(category, device, joules)
        for (category, device), joules in other._entries.items():
            merged.add(category, device, joules)
        return merged

    def as_rows(self) -> list[tuple[str, str, float]]:
        """Stable, sorted (category, device, joules) rows for reports."""
        return sorted(
            (category.value, device, joules)
            for (category, device), joules in self._entries.items()
        )
