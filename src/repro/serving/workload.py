"""Open-system workload synthesis: the jobs the arrival stream carries.

The serving experiments need a stream of jobs whose device preferences
span the three memory layers, exactly like the paper's GNN/kernel
mixes -- without dragging a full graph pipeline into every arrival.
:class:`OpenWorkload` synthesises seeded jobs in three shapes:

* ``spmm``  -- fill-heavy, bandwidth bound (ReRAM/DRAM friendly),
* ``gemm``  -- compute-heavy with data reuse (SRAM friendly),
* ``bitwise`` -- bulk element-wise streaming (in-DRAM friendly).

Every profile derives from the ``random.Random`` the arrival process
threads through, so a (seed, rate, horizon) triple fully determines
the workload -- the serve report is reproducible byte-for-byte.

A trace entry may pin its shape with ``{"kernel": "gemm"}``; generated
processes draw shapes uniformly.
"""

from __future__ import annotations

import random

from ..core.job import Job, JobPerfProfile
from ..core.scheduler.base import MLIMPSystem

__all__ = ["KERNEL_SHAPES", "OpenWorkload"]

#: shape -> (fill_scale, compute_scale, replica_scale)
KERNEL_SHAPES: dict[str, tuple[float, float, float]] = {
    "spmm": (4.0, 0.6, 0.02),
    "gemm": (1.0, 1.6, 0.05),
    "bitwise": (0.5, 0.9, 0.01),
}


class OpenWorkload:
    """Seeded job factory for the serving layer's arrival processes.

    >>> from repro.harness.config import full_system
    >>> import random
    >>> wl = OpenWorkload(full_system())
    >>> job = wl.make_job(0, "tenant-0", random.Random(1), {})
    >>> sorted(k.value for k in job.profiles) == sorted(
    ...     k.value for k in full_system().kinds)
    True
    >>> job.tags["tenant"]
    'tenant-0'
    """

    def __init__(self, system: MLIMPSystem, base_time_s: float = 1e-5) -> None:
        self.system = system
        self.base_time_s = base_time_s

    def make_job(
        self, index: int, tenant: str, rng: random.Random, hint: dict
    ) -> Job:
        """One arrival's job; every memory layer gets a profile."""
        shape = hint.get("kernel") or rng.choice(sorted(KERNEL_SHAPES))
        if shape not in KERNEL_SHAPES:
            raise ValueError(
                f"unknown kernel shape {shape!r}; known: {sorted(KERNEL_SHAPES)}"
            )
        fill_scale, compute_scale, replica_scale = KERNEL_SHAPES[shape]
        base = self.base_time_s * (1.0 + 5.0 * rng.random())
        unit_arrays = rng.randint(2, 8)
        fill_kib = float(rng.randint(1, 64)) * fill_scale
        profiles = {
            kind: JobPerfProfile(
                unit_arrays=unit_arrays,
                t_load=0.0,
                t_replica_unit=base * replica_scale,
                t_compute_unit=base * compute_scale * rng.uniform(0.6, 1.6),
                waves_unit=16,
                fill_bytes=fill_kib * 1024.0,
                compute_energy_j=1e-9,
            )
            for kind in self.system.kinds
        }
        return Job(
            job_id=f"{tenant}/{shape}-{index}",
            kernel=shape,
            profiles=profiles,
            tags={"tenant": tenant, "shape": shape, "arrival_index": index},
        )
