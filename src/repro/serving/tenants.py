"""Multi-tenant admission control for open-system serving.

The :class:`OpenLoop` sits between the arrival stream and the
scheduler's :meth:`~repro.core.scheduler.base.DispatchPolicy.admit`
hook.  Each tenant owns a **bounded FIFO queue** (admission control:
an arrival against a full queue is shed, counted, and never enters
the system), and queued jobs are released to the policy by **stride
scheduling** over the tenant weights -- a tenant with weight 2 gets
twice the admissions of a weight-1 tenant under contention, while
idle tenants cost nothing.

Backpressure is two-level:

* ``queue_limit`` bounds each tenant's waiting line (shed on
  overflow, ``serving.shed.queue_full``), and
* ``max_backlog`` bounds how many released-but-undispatched jobs the
  policy may hold, so a slow scheduler never absorbs the whole
  arrival stream into its internal queues.

Jobs the policy itself cannot place (e.g. every fitting device died)
come back through :meth:`on_rejected` and are counted as
``serving.shed.unplaced``.

An optional :class:`~repro.serving.admission.AdmissionController`
adds a third, *predictive* gate ahead of the queues: arrivals whose
predicted sojourn misses their tenant SLO are rejected at the door
and counted as ``serving.shed.predicted``.  Without a controller the
loop takes exactly the historical code path.

The loop is **inert when empty**: with no arrivals it schedules no
simulation events and creates no metric series, which is what makes a
zero-rate serve run byte-identical to the closed-batch path (see
``tests/test_serving.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.job import Job
from ..obs.metrics import MetricsRegistry
from ..sim.events import JobArrival

__all__ = ["Tenant", "OpenLoop"]


@dataclass(frozen=True)
class Tenant:
    """One traffic class: a name, a share weight, a queue bound.

    ``slo_s`` overrides the run-level SLO for this tenant alone --
    predictive admission and the report's attainment both judge the
    tenant against it.  ``None`` (the default) inherits the run SLO.
    """

    name: str
    weight: float = 1.0
    queue_limit: int = 64
    slo_s: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name}: weight must be positive")
        if self.queue_limit < 1:
            raise ValueError(f"tenant {self.name}: queue_limit must be >= 1")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError(f"tenant {self.name}: slo_s must be positive")


@dataclass
class _TenantState:
    tenant: Tenant
    queue: deque = field(default_factory=deque)
    #: Stride-scheduling virtual time; the lowest pass goes next.
    pass_value: float = 0.0
    offered: int = 0
    admitted: int = 0
    shed_queue_full: int = 0
    shed_unplaced: int = 0
    shed_predicted: int = 0


class OpenLoop:
    """Arrival intake, tenant queues, and weighted release.

    The dispatcher drives it: ``on_arrival`` at each
    :class:`~repro.sim.events.JobArrival` event, then ``release`` at
    the top of every pump (the returned jobs are offered to
    ``policy.admit``), then ``on_rejected`` with whatever the policy
    could not place.
    """

    def __init__(
        self,
        arrivals: list[JobArrival],
        tenants: list[Tenant],
        max_backlog: int = 32,
        admission=None,
    ) -> None:
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1 (or nothing ever releases)")
        self.arrivals = sorted(arrivals, key=lambda a: (a.time, a.seq))
        self.max_backlog = max_backlog
        #: Optional predictive gate (AdmissionController); ``None``
        #: keeps the historical two-level backpressure path untouched.
        self.admission = admission
        self._tenants: dict[str, _TenantState] = {
            t.name: _TenantState(tenant=t) for t in tenants
        }
        if len(self._tenants) != len(tenants):
            raise ValueError("tenant names must be unique")
        for arrival in self.arrivals:
            if arrival.tenant not in self._tenants:
                raise ValueError(
                    f"arrival {arrival.seq} names unknown tenant "
                    f"{arrival.tenant!r}; known: {sorted(self._tenants)}"
                )
            if arrival.job is None:
                raise ValueError(f"arrival {arrival.seq} carries no job")
        #: job_id -> original arrival time (sojourn = finish - this).
        self.arrival_times: dict[str, float] = {}
        #: job_id -> tenant name, for attribution after release.
        self.job_tenants: dict[str, str] = {}
        self._metrics: MetricsRegistry | None = None

    # ------------------------------------------------------------------
    def bind(self, metrics: MetricsRegistry) -> None:
        """Attach the run's metrics registry (counters stay lazy: a
        loop that never sees an arrival creates no series)."""
        self._metrics = metrics

    def _count(self, name: str, tenant: str) -> None:
        if self._metrics is None:
            return
        self._metrics.counter(name).inc()
        self._metrics.counter(f"{name}.{tenant}").inc()

    # ------------------------------------------------------------------
    @property
    def tenants(self) -> list[Tenant]:
        return [state.tenant for state in self._tenants.values()]

    def tenant_stats(self) -> dict[str, dict[str, int]]:
        """Per-tenant intake counters (the serve report's backbone)."""
        return {
            name: {
                "offered": state.offered,
                "admitted": state.admitted,
                "shed_queue_full": state.shed_queue_full,
                "shed_unplaced": state.shed_unplaced,
                "shed_predicted": state.shed_predicted,
                "queued": len(state.queue),
            }
            for name, state in sorted(self._tenants.items())
        }

    def total_shed(self) -> int:
        return sum(
            s.shed_queue_full + s.shed_unplaced + s.shed_predicted
            for s in self._tenants.values()
        )

    def backlog(self) -> int:
        """Jobs waiting in tenant queues (not yet released)."""
        return sum(len(state.queue) for state in self._tenants.values())

    # ------------------------------------------------------------------
    def on_arrival(self, arrival: JobArrival, now: float) -> None:
        """Admission control: enqueue, or shed against a full queue.

        With a predictive controller attached, an arrival that passes
        the (cheap) queue-limit check is additionally judged on its
        predicted sojourn and shed as ``serving.shed.predicted`` on a
        forecast miss -- before any admitted-work bookkeeping."""
        state = self._tenants[arrival.tenant]
        state.offered += 1
        self._count("serving.offered", arrival.tenant)
        if len(state.queue) >= state.tenant.queue_limit:
            state.shed_queue_full += 1
            self._count("serving.shed.queue_full", arrival.tenant)
            return
        if self.admission is not None and not self.admission.decide(
            arrival.job, state.tenant, now
        ):
            state.shed_predicted += 1
            self._count("serving.shed.predicted", arrival.tenant)
            return
        state.queue.append(arrival)

    def release(self, now: float, policy_backlog: int) -> list[Job]:
        """Weighted-fair drain of the tenant queues, bounded by the
        policy backlog cap.  Pure bookkeeping: calling it with empty
        queues returns ``[]`` and touches nothing."""
        released: list[Job] = []
        while policy_backlog + len(released) < self.max_backlog:
            candidates = [
                (state.pass_value, name, state)
                for name, state in self._tenants.items()
                if state.queue
            ]
            if not candidates:
                break
            _, _, state = min(candidates)  # lowest pass, name tie-break
            state.pass_value += 1.0 / state.tenant.weight
            arrival = state.queue.popleft()
            state.admitted += 1
            self._count("serving.admitted", arrival.tenant)
            self.arrival_times[arrival.job.job_id] = arrival.time
            self.job_tenants[arrival.job.job_id] = arrival.tenant
            released.append(arrival.job)
        return released

    def on_rejected(self, jobs: list[Job], now: float) -> None:
        """The policy could not place these released jobs: shed."""
        for job in jobs:
            tenant = self.job_tenants.get(job.job_id, "")
            state = self._tenants.get(tenant)
            if state is None:  # pragma: no cover - defensive
                continue
            state.shed_unplaced += 1
            self._count("serving.shed.unplaced", tenant)
            self.arrival_times.pop(job.job_id, None)
            if self.admission is not None:
                self.admission.release(job.job_id)

    def on_finished(self, job_id: str) -> None:
        """Dispatcher hook for any job leaving the system -- completed
        or failed.  Pure admission bookkeeping: without a controller
        this is a no-op, so the historical paths stay byte-identical."""
        if self.admission is not None:
            self.admission.release(job_id)
