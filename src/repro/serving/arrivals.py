"""Arrival processes: when open-system jobs hit the runtime.

A closed batch hands the scheduler its whole queue at time zero; an
open system confronts it with jobs that arrive *while it runs*.  This
module generates the arrival timeline as a list of
:class:`~repro.sim.events.JobArrival` values -- plain data the
dispatcher turns into first-class simulation events.

Two processes cover the paper-style serving experiments:

* :class:`PoissonArrivals` -- a seeded memoryless stream at ``rate``
  jobs/second until ``horizon`` seconds, tenants drawn by weight.
  Everything derives from one ``random.Random(seed)``, so the same
  seed always produces the identical timeline (byte-identical serve
  reports; see ``tests/test_serving.py``).
* :class:`TraceArrivals` -- replays a JSON trace file, for measured
  or hand-crafted workloads.

Usage::

    process = PoissonArrivals(rate=50.0, horizon=1.0, seed=7,
                              tenants=["a", "b", "c"])
    arrivals = process.generate(workload.make_job)

Trace file format (a JSON list, times in seconds)::

    [{"time": 0.0001, "tenant": "a"},
     {"time": 0.0004, "tenant": "b", "kernel": "gemm"}]
"""

from __future__ import annotations

import abc
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..core.job import Job
from ..sim.events import JobArrival

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "TraceArrivals",
    "TimelineArrivals",
]

#: ``make_job(index, tenant, rng, hint)``: synthesises the job carried
#: by one arrival.  ``hint`` is the trace entry's extra fields (empty
#: for generated processes).
JobFactory = Callable[[int, str, random.Random, dict], Job]


class ArrivalProcess(abc.ABC):
    """Generates the timed arrival list for one serving run."""

    @abc.abstractmethod
    def generate(self, make_job: JobFactory) -> list[JobArrival]:
        """The full arrival timeline, sorted by (time, seq)."""


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Merged Poisson stream: exponential gaps, weighted tenant draw.

    ``rate`` is the aggregate arrival rate over all tenants in
    jobs/second; ``horizon`` bounds generation (the run itself then
    drains to completion).  ``weights`` defaults to uniform.
    """

    rate: float
    horizon: float
    seed: int
    tenants: tuple[str, ...] = ("tenant-0",)
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be non-negative, got {self.rate}")
        if self.horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {self.horizon}")
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.weights is not None and len(self.weights) != len(self.tenants):
            raise ValueError("one weight per tenant required")
        if self.weights is not None and any(w <= 0 for w in self.weights):
            raise ValueError("tenant weights must be positive")

    def generate(self, make_job: JobFactory) -> list[JobArrival]:
        rng = random.Random(self.seed)
        weights = list(self.weights) if self.weights is not None else None
        arrivals: list[JobArrival] = []
        now = 0.0
        seq = 0
        while self.rate > 0:
            now += rng.expovariate(self.rate)
            if now >= self.horizon:
                break
            tenant = rng.choices(list(self.tenants), weights=weights)[0]
            job = make_job(seq, tenant, rng, {})
            arrivals.append(JobArrival(time=now, seq=seq, tenant=tenant, job=job))
            seq += 1
        return arrivals


@dataclass(frozen=True)
class TimelineArrivals(ArrivalProcess):
    """A prebuilt arrival timeline: jobs already materialised.

    The cluster layer (:mod:`repro.cluster`) generates one timeline
    for the whole fleet, partitions it across nodes, and hands each
    node its slice through this process -- ``generate`` returns the
    stored arrivals verbatim (time-sorted, original sequence numbers
    kept) and never calls the job factory, so a node replays exactly
    the jobs placement assigned to it.
    """

    arrivals: tuple[JobArrival, ...]

    def generate(self, make_job: JobFactory) -> list[JobArrival]:
        return sorted(self.arrivals, key=lambda a: (a.time, a.seq))


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replays a recorded arrival trace (JSON list of entries).

    Each entry needs ``time`` (seconds) and ``tenant``; any further
    keys are passed to the job factory as its ``hint`` so traces can
    pin per-arrival workload shape.  Entries are stably sorted by
    time, so an unsorted trace is still deterministic.
    """

    path: str
    seed: int = 0
    _entries: tuple | None = field(default=None, compare=False)

    def entries(self) -> list[dict]:
        if self._entries is not None:
            return [dict(e) for e in self._entries]
        raw = json.loads(Path(self.path).read_text())
        if not isinstance(raw, list):
            raise ValueError(f"trace {self.path}: expected a JSON list")
        for i, entry in enumerate(raw):
            if "time" not in entry or "tenant" not in entry:
                raise ValueError(
                    f"trace {self.path}: entry {i} needs 'time' and 'tenant'"
                )
        return raw

    @classmethod
    def from_entries(cls, entries: list[dict], seed: int = 0) -> "TraceArrivals":
        """An in-memory trace (tests, programmatic workloads)."""
        return cls(
            path="<memory>",
            seed=seed,
            _entries=tuple(dict(e) for e in entries),
        )

    def generate(self, make_job: JobFactory) -> list[JobArrival]:
        rng = random.Random(self.seed)
        entries = sorted(enumerate(self.entries()), key=lambda pair: (pair[1]["time"], pair[0]))
        arrivals: list[JobArrival] = []
        for seq, (_, entry) in enumerate(entries):
            hint = {k: v for k, v in entry.items() if k not in ("time", "tenant")}
            tenant = str(entry["tenant"])
            job = make_job(seq, tenant, rng, hint)
            arrivals.append(
                JobArrival(
                    time=float(entry["time"]), seq=seq, tenant=tenant, job=job
                )
            )
        return arrivals
