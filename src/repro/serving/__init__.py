"""Open-system serving: arrivals, multi-tenant admission, SLO reports.

The closed-batch runtime answers "how fast does this batch finish";
this package answers the serving questions -- what sojourn time and
SLO attainment each tenant sees when jobs *arrive over time*, how the
three schedulers behave under contention, and how much load must be
shed to keep the system stable.  See ``docs/SCHEDULERS.md`` for where
arrival events enter each scheduling policy.

    python -m repro serve --arrivals poisson --rate 50 --tenants 3 --slo 10
"""

from .admission import AdmissionController, PredictiveAdmission
from .arrivals import (
    ArrivalProcess,
    PoissonArrivals,
    TimelineArrivals,
    TraceArrivals,
)
from .autoscale import AutoscalePolicy, Autoscaler, ScaleEvent, scale_system
from .report import ServingReport, TenantReport, build_serving_report
from .runtime import ServingResult, ServingRuntime
from .tenants import OpenLoop, Tenant
from .workload import KERNEL_SHAPES, OpenWorkload

__all__ = [
    "AdmissionController",
    "PredictiveAdmission",
    "ArrivalProcess",
    "PoissonArrivals",
    "TimelineArrivals",
    "TraceArrivals",
    "AutoscalePolicy",
    "Autoscaler",
    "ScaleEvent",
    "scale_system",
    "ServingReport",
    "TenantReport",
    "build_serving_report",
    "ServingResult",
    "ServingRuntime",
    "OpenLoop",
    "Tenant",
    "KERNEL_SHAPES",
    "OpenWorkload",
]
