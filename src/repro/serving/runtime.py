"""ServingRuntime: the open-system facade over the MLIMP runtime.

Where :class:`~repro.core.runtime.MLIMPRuntime` runs one closed batch
to completion, :class:`ServingRuntime` keeps the same scheduler +
dispatcher stack but feeds it an **arrival stream**: timed
:class:`~repro.sim.events.JobArrival` events enter the running
simulation, pass the multi-tenant admission layer
(:class:`~repro.serving.tenants.OpenLoop`), and reach the policy's
``admit`` hook while earlier jobs are still executing.  The run lasts
until the system drains -- the arrival horizon bounds *generation*,
not execution -- and the result carries a per-tenant SLO report.

Usage::

    from repro.harness.config import full_system
    from repro.serving import PoissonArrivals, ServingRuntime, Tenant

    runtime = ServingRuntime(full_system(), scheduler="adaptive")
    serving = runtime.serve(
        PoissonArrivals(rate=50.0, horizon=1.0, seed=7,
                        tenants=("a", "b")),
        tenants=[Tenant("a"), Tenant("b", weight=2.0)],
        slo_s=0.010,
    )
    print(serving.report)          # per-tenant p50/p95/p99 + SLO table
    serving.result                 # the underlying DispatchResult

Fault plans compose: ``serve(..., faults=plan)`` degrades the open
system exactly like the closed runs of ``repro.faults`` -- arrivals
keep landing while devices stall, derate, or die, and unplaceable
jobs are counted as shed rather than crashing the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dispatcher import Dispatcher, DispatchResult
from ..core.job import Job
from ..core.predictor import OraclePredictor, PerformancePredictor
from ..core.runtime import _SCHEDULERS
from ..core.scheduler.base import MLIMPSystem, Scheduler
from ..faults.plan import FaultPlan
from ..sim.mainmem import DDR4Config
from .admission import AdmissionController, PredictiveAdmission
from .arrivals import ArrivalProcess
from .report import ServingReport, build_serving_report
from .tenants import OpenLoop, Tenant
from .workload import OpenWorkload

__all__ = ["ServingResult", "ServingRuntime"]

#: Default per-tenant SLO when the caller names none: 10 ms.
DEFAULT_SLO_S = 0.010


@dataclass
class ServingResult:
    """One serving run: the raw dispatch result + the SLO report."""

    result: DispatchResult
    report: ServingReport
    open_loop: OpenLoop


@dataclass
class ServingRuntime:
    """Open-system serving on one MLIMP system."""

    system: MLIMPSystem
    scheduler: str | Scheduler = "adaptive"
    predictor: PerformancePredictor | None = None
    ddr4: DDR4Config | None = None
    #: Released-but-undispatched jobs the policy may hold at once.
    max_backlog: int = 32

    def __post_init__(self) -> None:
        if isinstance(self.scheduler, str) and self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(_SCHEDULERS)} or pass a Scheduler"
            )

    def _make_scheduler(self) -> Scheduler:
        if isinstance(self.scheduler, Scheduler):
            return self.scheduler
        predictor = self.predictor or OraclePredictor()
        return _SCHEDULERS[self.scheduler](predictor)

    # ------------------------------------------------------------------
    def serve(
        self,
        arrivals: ArrivalProcess,
        tenants: list[Tenant],
        slo_s: float = DEFAULT_SLO_S,
        initial_jobs: list[Job] | None = None,
        label: str = "",
        faults: FaultPlan | None = None,
        workload: OpenWorkload | None = None,
        admission: str | AdmissionController | None = None,
        admission_margin: float = 1.0,
    ) -> ServingResult:
        """Run the arrival stream to drain and report per-tenant SLOs.

        ``initial_jobs`` seeds the policy with a closed batch already
        queued at time zero (the closed-vs-open comparison's mixed
        mode); with an empty arrival stream and ``initial_jobs`` the
        run is byte-identical to ``MLIMPRuntime.run`` on that batch.

        ``admission`` selects the arrival-time gate: ``None`` or
        ``"shed"`` keep the historical shed-only backpressure (the
        exact pre-admission code path), ``"predictive"`` builds a
        :class:`~repro.serving.admission.PredictiveAdmission` around
        the runtime's predictor (oracle by default) and the run SLO
        scaled by ``admission_margin``; a ready-made controller
        instance is used as-is.
        """
        scheduler = self._make_scheduler()
        controller = self._make_admission(admission, slo_s, admission_margin)
        maker = workload or OpenWorkload(self.system)
        timeline = arrivals.generate(maker.make_job)
        open_loop = OpenLoop(
            timeline,
            tenants=tenants,
            max_backlog=self.max_backlog,
            admission=controller,
        )
        policy = scheduler.plan(list(initial_jobs or []), self.system)
        result = Dispatcher(self.system, self.ddr4).run(
            policy,
            label=label or scheduler.name,
            faults=faults,
            open_loop=open_loop,
            predictor=self.predictor,
        )
        report = build_serving_report(
            result,
            open_loop,
            slo_s,
            predictor=self.predictor,
            admission=controller,
        )
        return ServingResult(result=result, report=report, open_loop=open_loop)

    def _make_admission(
        self,
        admission: str | AdmissionController | None,
        slo_s: float,
        margin: float,
    ) -> AdmissionController | None:
        if admission is None or admission == "shed":
            return None
        if isinstance(admission, AdmissionController):
            return admission
        if admission == "predictive":
            return PredictiveAdmission(
                predictor=self.predictor or OraclePredictor(),
                system=self.system,
                slo_s=slo_s,
                margin=margin,
            )
        raise ValueError(
            f"unknown admission mode {admission!r}; choose 'shed', "
            "'predictive', or pass an AdmissionController"
        )
