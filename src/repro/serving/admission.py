"""Predictive SLO-aware admission control (the predict-time gate).

The bounded tenant queues of :class:`~repro.serving.tenants.OpenLoop`
shed load *after* the fact: a job is only rejected once a queue
physically overflows, so under sustained overload the system admits
work it can never finish inside the SLO and burns capacity on jobs
that arrive dead.  :class:`PredictiveAdmission` moves the decision to
arrival time, the way predict-time-based schedulers do (CraneSched's
``use_predict`` swaps the declared timelimit for a learned estimate):
the controller consults the serving stack's *performance predictor* --
oracle, offline MLP artifact, or the self-training
:class:`~repro.core.predictor.OnlinePredictor` -- and rejects any job
whose **predicted sojourn** would miss its tenant's SLO.

The sojourn forecast is a deterministic fluid model:

* *service* -- the predictor's best-device execution time at the unit
  allocation, ``min over kinds of estimate(job, kind).total_time(
  unit_arrays)`` (the same surface cluster placement sizes transfers
  with);
* *wait* -- the predicted work already admitted and not yet finished,
  divided by the system's total job slots (the fleet of parallel
  servers a fluid backlog drains through);
* admit iff ``wait + service <= slo * margin``.

Rejections surface as a first-class shed cause
(``serving.shed.predicted`` / ``shed_predicted`` in the report), and
the outstanding-work ledger is returned on every exit path: job
completion, job failure under faults, and unplaced-shed.  The
controller is pure bookkeeping -- it owns no simulator events and no
metric series -- so a loop constructed *without* one takes exactly
the pre-admission code path, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.job import Job
from ..core.predictor import PerformancePredictor
from ..core.scheduler.base import MLIMPSystem
from .tenants import Tenant

__all__ = ["AdmissionController", "PredictiveAdmission"]


class AdmissionController:
    """Interface: decide a job's fate at arrival time.

    ``decide`` runs once per arrival (before the queue-limit check);
    ``release`` runs once per admitted job leaving the system, on any
    path -- completed, failed, or shed as unplaced.
    """

    name = "admission"

    def decide(self, job: Job, tenant: Tenant, now: float) -> bool:
        raise NotImplementedError

    def release(self, job_id: str) -> None:  # pragma: no cover - interface
        pass


@dataclass
class PredictiveAdmission(AdmissionController):
    """Reject jobs whose predicted sojourn misses their tenant SLO.

    ``margin`` scales the SLO budget: 1.0 admits exactly up to the
    target, < 1.0 keeps headroom for prediction error, > 1.0 gambles
    on it.  A tenant with its own ``slo_s`` is judged against that
    instead of the run-level default.
    """

    predictor: PerformancePredictor
    system: MLIMPSystem
    slo_s: float
    margin: float = 1.0
    #: job_id -> predicted service seconds, while the job is in-system.
    outstanding: dict[str, float] = field(default_factory=dict)
    admitted: int = 0
    rejected: int = 0

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ValueError(f"slo must be positive, got {self.slo_s}")
        if self.margin <= 0:
            raise ValueError(f"margin must be positive, got {self.margin}")
        self._parallelism = max(
            1, sum(self.system.slots(kind) for kind in self.system.kinds)
        )
        self._outstanding_work = 0.0

    @property
    def name(self) -> str:  # type: ignore[override]
        return "predictive"

    # ------------------------------------------------------------------
    def service_estimate(self, job: Job) -> float:
        """Predicted best-device execution time at the unit allocation."""
        best = float("inf")
        for kind in job.profiles:
            if kind not in self.system.specs:
                continue
            est = self.predictor.estimate(job, kind)
            best = min(best, est.total_time(est.unit_arrays))
        return best

    def predicted_sojourn(self, job: Job) -> float:
        """Fluid-model forecast: queueing wait plus own service."""
        service = self.service_estimate(job)
        wait = self._outstanding_work / self._parallelism
        return wait + service

    def decide(self, job: Job, tenant: Tenant, now: float) -> bool:
        slo = tenant.slo_s if tenant.slo_s is not None else self.slo_s
        service = self.service_estimate(job)
        wait = self._outstanding_work / self._parallelism
        if wait + service > slo * self.margin:
            self.rejected += 1
            return False
        self.outstanding[job.job_id] = service
        self._outstanding_work += service
        self.admitted += 1
        return True

    def release(self, job_id: str) -> None:
        service = self.outstanding.pop(job_id, None)
        if service is not None:
            self._outstanding_work -= service
            if not self.outstanding:
                # Re-anchor the float accumulator whenever the system
                # drains, so subtraction residue never compounds across
                # a long replay horizon.
                self._outstanding_work = 0.0
