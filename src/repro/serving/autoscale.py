"""Feedback-driven pool autoscaling for long-horizon serving.

One MLIMP node's device pool is fixed for the life of a dispatch run
-- the simulator owns the allocators.  At *fleet* horizons the pool
is a knob: production schedulers grow and shrink capacity from the
same queue-depth and utilisation signals our runs already export
(``repro.obs`` gauges, the serving report's busy fractions and shed
rate).  This module is that control loop, run **between replay
windows** (the k8s-HPA cadence: observe a period, then resize), never
mid-simulation -- every individual window stays a deterministic,
byte-stable run on a fixed pool.

* :class:`AutoscalePolicy` is the threshold rule: scale **up** when
  the observed window shed load, saturated a device, or kept a deep
  release backlog; scale **down** when the pool was near-idle and
  nothing was shed.
* :class:`Autoscaler` applies the rule, holding the current integer
  ``scale`` and an auditable :class:`ScaleEvent` log; its state is
  two plain JSON values, so a replay checkpoint captures it exactly.
* :func:`scale_system` materialises a scale: every device's array
  count and job slots multiply by the factor
  (:func:`dataclasses.replace` on the frozen Table III specs), the
  same move ``harness.config.scaled_specs`` uses in the other
  direction.  Scale 1 returns the system untouched.

In cluster replays the scaled system is stamped onto **every node**
(the per-node autoscale passthrough): the cluster grows capacity in
place while placement keeps steering across the same node set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.scheduler.base import MLIMPSystem

__all__ = ["AutoscalePolicy", "ScaleEvent", "Autoscaler", "scale_system"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Threshold rule for the between-window scaling decision."""

    min_scale: int = 1
    max_scale: int = 4
    #: Scale up when any device's busy fraction exceeds this...
    up_utilisation: float = 0.70
    #: ...or the window shed more than this fraction of offered load...
    up_shed_rate: float = 0.0
    #: ...or the policy's release backlog averaged deeper than this.
    up_queue_depth: float = 8.0
    #: Scale down when the busiest device stayed under this fraction
    #: (and nothing was shed, and the backlog stayed shallow).
    down_utilisation: float = 0.25
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_scale < 1:
            raise ValueError("min_scale must be >= 1")
        if self.max_scale < self.min_scale:
            raise ValueError("max_scale must be >= min_scale")
        if self.step < 1:
            raise ValueError("step must be >= 1")
        if not 0.0 <= self.down_utilisation < self.up_utilisation:
            raise ValueError(
                "need 0 <= down_utilisation < up_utilisation, got "
                f"{self.down_utilisation} / {self.up_utilisation}"
            )


@dataclass(frozen=True)
class ScaleEvent:
    """One audited pool resize between two replay windows."""

    window: int
    from_scale: int
    to_scale: int
    reason: str

    def as_dict(self) -> dict:
        return {
            "window": self.window,
            "from_scale": self.from_scale,
            "to_scale": self.to_scale,
            "reason": self.reason,
        }


@dataclass
class Autoscaler:
    """The control loop: observe a window's signals, hold the scale."""

    policy: AutoscalePolicy = field(default_factory=AutoscalePolicy)
    scale: int = 0  # 0 -> start at policy.min_scale
    events: list[ScaleEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.scale == 0:
            self.scale = self.policy.min_scale
        if not self.policy.min_scale <= self.scale <= self.policy.max_scale:
            raise ValueError(
                f"scale {self.scale} outside "
                f"[{self.policy.min_scale}, {self.policy.max_scale}]"
            )

    # ------------------------------------------------------------------
    def observe(
        self,
        window: int,
        utilisation: float,
        queue_depth: float,
        shed_rate: float,
    ) -> int:
        """Feed one finished window's signals; returns the scale the
        *next* window should run at.

        ``utilisation`` is the window's busiest device fraction,
        ``queue_depth`` the time-weighted mean of the policy's release
        backlog (the ``jobs.pending`` gauge), ``shed_rate`` the
        window's shed fraction of offered load.
        """
        p = self.policy
        target = self.scale
        reason = ""
        if self.scale < p.max_scale and (
            shed_rate > p.up_shed_rate
            or utilisation > p.up_utilisation
            or queue_depth > p.up_queue_depth
        ):
            target = min(p.max_scale, self.scale + p.step)
            if shed_rate > p.up_shed_rate:
                reason = f"shed_rate {shed_rate:.3f} > {p.up_shed_rate:g}"
            elif utilisation > p.up_utilisation:
                reason = f"utilisation {utilisation:.3f} > {p.up_utilisation:g}"
            else:
                reason = f"queue_depth {queue_depth:.2f} > {p.up_queue_depth:g}"
        elif (
            self.scale > p.min_scale
            and shed_rate == 0.0
            and utilisation < p.down_utilisation
            and queue_depth <= p.up_queue_depth
        ):
            target = max(p.min_scale, self.scale - p.step)
            reason = f"utilisation {utilisation:.3f} < {p.down_utilisation:g}"
        if target != self.scale:
            self.events.append(
                ScaleEvent(
                    window=window,
                    from_scale=self.scale,
                    to_scale=target,
                    reason=reason,
                )
            )
            self.scale = target
        return self.scale

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: plain JSON, no floats beyond reasons."""
        return {
            "scale": self.scale,
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_state(cls, policy: AutoscalePolicy, state: dict) -> "Autoscaler":
        """Rebuild mid-replay state saved by :meth:`state_dict`."""
        return cls(
            policy=policy,
            scale=int(state["scale"]),
            events=[
                ScaleEvent(
                    window=int(e["window"]),
                    from_scale=int(e["from_scale"]),
                    to_scale=int(e["to_scale"]),
                    reason=str(e["reason"]),
                )
                for e in state.get("events", [])
            ],
        )


def scale_system(system: MLIMPSystem, scale: int | float) -> MLIMPSystem:
    """``scale`` copies of every device: array counts and job slots
    multiply, clocks/geometry/bandwidths stay at spec.  Scale 1 is the
    identity (the same object, so an unscaled replay window runs on a
    byte-identical system).

    The autoscaler always passes integers; fractional scales exist
    for heterogeneous cluster nodes
    (:meth:`~repro.cluster.spec.ClusterSpec.heterogeneous`) -- a weak
    node at ``scale=0.5`` keeps half the arrays and slots, floored at
    one of each so every device stays usable.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if scale == 1:
        return system
    return MLIMPSystem(
        specs={
            kind: replace(
                spec,
                num_arrays=max(1, int(round(spec.num_arrays * scale))),
                max_outstanding_jobs=max(
                    1, int(round(spec.max_outstanding_jobs * scale))
                ),
            )
            for kind, spec in system.specs.items()
        }
    )
