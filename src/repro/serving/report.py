"""Per-tenant SLO reporting for open-system serving runs.

A closed batch is judged by makespan; an open system is judged by
**sojourn time** -- how long each job spent in the system from its
arrival (not its dispatch) to its completion -- plus how much load had
to be shed to keep that sojourn bounded.  :func:`build_serving_report`
joins the dispatcher's job records with the
:class:`~repro.serving.tenants.OpenLoop`'s arrival bookkeeping into a
:class:`ServingReport`:

* per-tenant p50/p95/p99/mean sojourn (nearest-rank quantiles, the
  same definition as the dispatcher's tail latency),
* per-tenant SLO attainment (fraction of completed jobs whose sojourn
  met the target),
* shed counts split by cause (queue overflow vs unplaceable), and
* per-memory-layer utilisation from the trace analytics.

``str(report)`` renders the summary table; :meth:`ServingReport.as_dict`
is the JSON-ready schema the CLI emits and CI asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dispatcher import DispatchResult
from ..obs.analytics import build_report
from ..obs.metrics import nearest_rank
from .tenants import OpenLoop

__all__ = ["TenantReport", "ServingReport", "build_serving_report"]


@dataclass(frozen=True)
class TenantReport:
    """One tenant's view of the run.

    ``shed_predicted`` counts predictive-admission rejections (zero
    whenever no controller ran); ``slo_s`` carries the tenant's own
    SLO override when one was set (``None`` means the run-level SLO
    judged this tenant).  Both are new, feature-gated fields: their
    report keys are only emitted when the feature was active, keeping
    the historical schema byte-identical.
    """

    tenant: str
    offered: int
    admitted: int
    completed: int
    shed_queue_full: int
    shed_unplaced: int
    sojourn_mean_s: float
    sojourn_p50_s: float
    sojourn_p95_s: float
    sojourn_p99_s: float
    slo_attainment: float
    shed_predicted: int = 0
    slo_s: float | None = None

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_unplaced + self.shed_predicted

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def as_dict(self, include_admission: bool = False) -> dict:
        out = {
            "tenant": self.tenant,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed_queue_full": self.shed_queue_full,
            "shed_unplaced": self.shed_unplaced,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "sojourn_ms": {
                "mean": self.sojourn_mean_s * 1e3,
                "p50": self.sojourn_p50_s * 1e3,
                "p95": self.sojourn_p95_s * 1e3,
                "p99": self.sojourn_p99_s * 1e3,
            },
            "slo_attainment": self.slo_attainment,
        }
        if include_admission:
            out["shed_predicted"] = self.shed_predicted
        if self.slo_s is not None:
            out["slo_ms"] = self.slo_s * 1e3
        return out


@dataclass
class ServingReport:
    """Everything one open-system run produced, tenant by tenant."""

    scheduler: str
    makespan: float
    slo_s: float
    tenants: dict[str, TenantReport] = field(default_factory=dict)
    #: Busy fraction of the makespan, per memory layer.
    utilisation: dict[str, float] = field(default_factory=dict)
    #: Per-node utilisation/SLO sections of a cluster run
    #: (:mod:`repro.cluster`); empty -- and absent from
    #: :meth:`as_dict` -- for single-node serving runs, which keeps
    #: those byte-identical to the pre-cluster schema.
    nodes: dict[str, dict] = field(default_factory=dict)
    #: Name of the admission controller that gated arrivals ("" when
    #: the run used plain shed-only backpressure; the admission keys
    #: are then absent from :meth:`as_dict`, preserving the schema).
    admission: str = ""
    #: Predictor lifecycle counters (:attr:`OnlinePredictor.counters`);
    #: empty -- and absent from the dict/text output -- for predictors
    #: without a lifecycle.
    predictor: dict[str, int] = field(default_factory=dict)

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants.values())

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants.values())

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants.values())

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def shed_predicted(self) -> int:
        return sum(t.shed_predicted for t in self.tenants.values())

    @property
    def slo_attainment(self) -> float:
        """Attainment over all completed jobs (not a tenant average)."""
        total = self.completed
        if not total:
            return 1.0
        met = sum(t.slo_attainment * t.completed for t in self.tenants.values())
        return met / total

    def as_dict(self) -> dict:
        out = {
            "scheduler": self.scheduler,
            "makespan": self.makespan,
            "slo_ms": self.slo_s * 1e3,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "slo_attainment": self.slo_attainment,
            "tenants": {
                name: report.as_dict(include_admission=bool(self.admission))
                for name, report in sorted(self.tenants.items())
            },
            "utilisation": dict(sorted(self.utilisation.items())),
        }
        if self.admission:
            out["admission"] = self.admission
            out["shed_predicted"] = self.shed_predicted
        if self.predictor:
            out["predictor"] = {
                name: self.predictor[name] for name in sorted(self.predictor)
            }
        if self.nodes:
            out["nodes"] = {
                name: dict(section) for name, section in sorted(self.nodes.items())
            }
        return out

    def __str__(self) -> str:
        lines = [
            f"serving[{self.scheduler}]  makespan {self.makespan * 1e3:.3f} ms  "
            f"slo {self.slo_s * 1e3:.2f} ms  offered {self.offered}  "
            f"completed {self.completed}  shed {self.shed} "
            f"({self.shed_rate:.1%})  attainment {self.slo_attainment:.1%}",
            f"{'tenant':<12} {'off':>5} {'done':>5} {'shed':>5} "
            f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'slo':>6}",
        ]
        for name, t in sorted(self.tenants.items()):
            lines.append(
                f"{name:<12} {t.offered:>5} {t.completed:>5} {t.shed:>5} "
                f"{t.sojourn_p50_s * 1e3:>8.3f} {t.sojourn_p95_s * 1e3:>8.3f} "
                f"{t.sojourn_p99_s * 1e3:>8.3f} {t.slo_attainment:>6.1%}"
            )
        if self.utilisation:
            util = "  ".join(
                f"{dev}={frac:.1%}" for dev, frac in sorted(self.utilisation.items())
            )
            lines.append(f"utilisation  {util}")
        if self.admission:
            lines.append(
                f"admission[{self.admission}]  shed_predicted "
                f"{self.shed_predicted}"
            )
        if self.predictor:
            lines.append("predictor lifecycle:")
            for name in sorted(self.predictor):
                lines.append(f"  {name:32s} {self.predictor[name]}")
        if self.nodes:
            lines.append(
                f"{'node':<12} {'placed':>6} {'done':>5} {'shed':>5} "
                f"{'makespan ms':>12} {'slo':>6}  utilisation"
            )
            for name, section in sorted(self.nodes.items()):
                util = "  ".join(
                    f"{dev}={frac:.1%}"
                    for dev, frac in sorted(section.get("utilisation", {}).items())
                )
                lines.append(
                    f"{name:<12} {section.get('placed', 0):>6} "
                    f"{section.get('completed', 0):>5} "
                    f"{section.get('shed', 0):>5} "
                    f"{section.get('makespan', 0.0) * 1e3:>12.3f} "
                    f"{section.get('slo_attainment', 0.0):>6.1%}  {util}"
                )
        return "\n".join(lines)


def build_serving_report(
    result: DispatchResult,
    open_loop: OpenLoop,
    slo_s: float,
    predictor=None,
    admission=None,
) -> ServingReport:
    """Join dispatch records with arrival bookkeeping.

    Sojourn of a completed job is ``finished_at - arrival_time``; jobs
    injected by the *closed* part of a mixed run (no arrival record)
    do not contribute to tenant sojourns.  A tenant with its own
    ``slo_s`` is judged against that instead of the run-level SLO.
    ``predictor`` (when it carries lifecycle ``counters``) and
    ``admission`` (the run's controller, if any) land in the report's
    feature-gated sections.
    """
    if slo_s <= 0:
        raise ValueError(f"slo must be positive, got {slo_s}")
    sojourns: dict[str, list[float]] = {t.name: [] for t in open_loop.tenants}
    for job_id, record in result.records.items():
        arrived = open_loop.arrival_times.get(job_id)
        if arrived is None:
            continue
        tenant = open_loop.job_tenants[job_id]
        sojourns[tenant].append(record.finished_at - arrived)

    tenant_slo = {t.name: t.slo_s for t in open_loop.tenants}
    tenants: dict[str, TenantReport] = {}
    for name, stats in open_loop.tenant_stats().items():
        values = sorted(sojourns.get(name, []))
        effective_slo = tenant_slo.get(name) or slo_s
        met = sum(1 for v in values if v <= effective_slo)
        tenants[name] = TenantReport(
            tenant=name,
            offered=stats["offered"],
            admitted=stats["admitted"],
            completed=len(values),
            shed_queue_full=stats["shed_queue_full"],
            shed_unplaced=stats["shed_unplaced"],
            shed_predicted=stats["shed_predicted"],
            slo_s=tenant_slo.get(name),
            sojourn_mean_s=sum(values) / len(values) if values else 0.0,
            sojourn_p50_s=nearest_rank(values, 0.50) if values else 0.0,
            sojourn_p95_s=nearest_rank(values, 0.95) if values else 0.0,
            sojourn_p99_s=nearest_rank(values, 0.99) if values else 0.0,
            slo_attainment=met / len(values) if values else 1.0,
        )

    devices = build_report(result).devices
    utilisation = {name: report.utilisation for name, report in devices.items()}
    counters = getattr(predictor, "counters", None)
    return ServingReport(
        scheduler=result.scheduler_name,
        makespan=result.makespan,
        slo_s=slo_s,
        tenants=tenants,
        utilisation=utilisation,
        admission=admission.name if admission is not None else "",
        predictor=dict(counters) if counters else {},
    )
