"""Fault plans: deterministic, seedable device-fault descriptions.

The paper assumes fault-free devices; a production MLIMP runtime
cannot (ROADMAP north star; CLSA-CIM and MASIM both note that
multi-unit CIM schedulers must re-map work when a unit's effective
throughput changes at runtime).  A :class:`FaultPlan` describes the
device-level faults one dispatch run will experience:

``stall``
    The device is unavailable for ``duration`` seconds starting at
    ``time``.  Jobs in flight are aborted and retried with exponential
    backoff; new launches park until the stall clears.
``derate``
    From ``time`` on, every device-timed phase (fill write, replicate,
    compute) runs at ``factor`` of nominal throughput (0 < factor <= 1;
    a later event with factor 1.0 models a repair).
``fail``
    The device is permanently lost at ``time``.  In-flight and parked
    jobs are re-queued onto surviving devices via the scheduler's
    ``device_lost`` hook.
``wearout``
    Endurance-triggered permanent failure: the device dies once its
    cumulative fill/replication traffic in this run reaches
    ``threshold_bytes`` (see :mod:`repro.memories.endurance` for
    deriving thresholds from a :class:`~repro.memories.endurance.WearTracker`).

Plans are plain data: JSON round-trippable (``repro run --faults
plan.json``), seedably random for the property harness
(:meth:`FaultPlan.random` uses only :class:`random.Random`), and
independent of the simulator -- the dispatcher turns timed events into
first-class sim events when a run starts.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..memories.base import MemoryKind

__all__ = ["FaultKind", "FaultEvent", "RetryPolicy", "FaultPlan"]


class FaultKind(enum.Enum):
    """The injectable device-fault classes."""

    STALL = "stall"
    DERATE = "derate"
    FAIL = "fail"
    WEAROUT = "wearout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FaultEvent:
    """One fault against one device.

    ``time`` is the injection time in simulation seconds for the timed
    kinds (stall/derate/fail); wear-out events are traffic-triggered
    and carry ``threshold_bytes`` instead.
    """

    kind: FaultKind
    device: MemoryKind
    time: float = 0.0
    duration: float = 0.0
    factor: float = 1.0
    threshold_bytes: float = 0.0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind is not FaultKind.WEAROUT and self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.kind is FaultKind.STALL and self.duration <= 0:
            raise ValueError("stall faults need a positive duration")
        if self.kind is FaultKind.DERATE and not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"derate factor must be in (0, 1], got {self.factor}"
            )
        if self.kind is FaultKind.WEAROUT and self.threshold_bytes <= 0:
            raise ValueError("wearout faults need a positive threshold_bytes")

    @property
    def timed(self) -> bool:
        """Whether this fault fires at a fixed simulation time."""
        return self.kind is not FaultKind.WEAROUT

    def as_dict(self) -> dict:
        out: dict = {"kind": self.kind.value, "device": self.device.value}
        if self.timed:
            out["time"] = self.time
        if self.kind is FaultKind.STALL:
            out["duration"] = self.duration
        if self.kind is FaultKind.DERATE:
            out["factor"] = self.factor
        if self.kind is FaultKind.WEAROUT:
            out["threshold_bytes"] = self.threshold_bytes
        if self.reason:
            out["reason"] = self.reason
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            kind=FaultKind(data["kind"]),
            device=MemoryKind(data["device"]),
            time=float(data.get("time", 0.0)),
            duration=float(data.get("duration", 0.0)),
            factor=float(data.get("factor", 1.0)),
            threshold_bytes=float(data.get("threshold_bytes", 0.0)),
            reason=str(data.get("reason", "")),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff parameters for stall-aborted jobs.

    An aborted job retries after ``base_backoff_s``; every attempt that
    still finds the device stalled doubles the wait (``multiplier``)
    until ``max_attempts`` is exhausted, at which point the job is
    reported failed.
    """

    base_backoff_s: float = 1e-5
    multiplier: float = 2.0
    max_attempts: int = 16

    def __post_init__(self) -> None:
        if self.base_backoff_s <= 0:
            raise ValueError("base_backoff_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def as_dict(self) -> dict:
        return {
            "base_backoff_s": self.base_backoff_s,
            "multiplier": self.multiplier,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(
            base_backoff_s=float(data.get("base_backoff_s", 1e-5)),
            multiplier=float(data.get("multiplier", 2.0)),
            max_attempts=int(data.get("max_attempts", 16)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault events plus the retry policy."""

    events: tuple[FaultEvent, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int | None = None

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def timed_events(self) -> list[FaultEvent]:
        """Events injected at a fixed simulation time, time-ordered."""
        return sorted(
            (e for e in self.events if e.timed),
            key=lambda e: (e.time, e.device.value),
        )

    def wear_events(self) -> list[FaultEvent]:
        """Traffic-triggered wear-out events."""
        return [e for e in self.events if e.kind is FaultKind.WEAROUT]

    def devices(self) -> set[MemoryKind]:
        return {e.device for e in self.events}

    # -- construction ---------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def random(
        cls,
        seed: int,
        devices: list[MemoryKind],
        horizon_s: float,
        n_events: int = 3,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.STALL,
            FaultKind.DERATE,
            FaultKind.FAIL,
        ),
        max_failures: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> "FaultPlan":
        """Seeded random plan of *timed* faults within ``horizon_s``.

        Uses only :class:`random.Random`, so the plan -- and every run
        built on it -- is reproducible from ``seed`` alone.
        ``max_failures`` caps permanent failures (defaults to
        ``len(devices) - 1`` so at least one device survives).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not devices:
            raise ValueError("need at least one device to fault")
        rng = random.Random(seed)
        if max_failures is None:
            max_failures = max(0, len(devices) - 1)
        failed: set[MemoryKind] = set()
        events: list[FaultEvent] = []
        for _ in range(n_events):
            kind = rng.choice(list(kinds))
            if kind is FaultKind.FAIL:
                candidates = [d for d in devices if d not in failed]
                if len(failed) >= max_failures or not candidates:
                    kind = FaultKind.STALL
                    device = rng.choice(devices)
                else:
                    device = rng.choice(candidates)
                    failed.add(device)
            else:
                device = rng.choice(devices)
            time = rng.uniform(0.0, horizon_s)
            if kind is FaultKind.STALL:
                events.append(
                    FaultEvent(
                        kind=kind,
                        device=device,
                        time=time,
                        duration=rng.uniform(0.05, 0.5) * horizon_s,
                    )
                )
            elif kind is FaultKind.DERATE:
                events.append(
                    FaultEvent(
                        kind=kind,
                        device=device,
                        time=time,
                        factor=rng.uniform(0.2, 1.0),
                    )
                )
            else:
                events.append(FaultEvent(kind=kind, device=device, time=time))
        return cls(
            events=tuple(events), retry=retry or RetryPolicy(), seed=seed
        )

    # -- serialisation --------------------------------------------------
    def as_dict(self) -> dict:
        out: dict = {"events": [e.as_dict() for e in self.events]}
        out["retry"] = self.retry.as_dict()
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        retry = (
            RetryPolicy.from_dict(data["retry"])
            if "retry" in data
            else RetryPolicy()
        )
        return cls(
            events=tuple(
                FaultEvent.from_dict(e) for e in data.get("events", [])
            ),
            retry=retry,
            seed=data.get("seed"),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))
