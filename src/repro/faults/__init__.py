"""Fault injection & graceful degradation for MLIMP runs.

``repro.faults.plan``      FaultKind / FaultEvent / RetryPolicy / FaultPlan
``repro.faults.injector``  DeviceHealth + per-run FaultInjector state

A :class:`FaultPlan` (JSON- and seed-drivable) injects device stalls,
throughput derating, endurance wear-out and permanent failures into a
dispatch run as first-class sim events; the dispatcher and schedulers
degrade gracefully (retry with exponential backoff, re-queue onto
surviving devices) instead of crashing the batch.  See the README's
"Fault injection & degraded mode" section and
``tests/test_properties_faults.py`` for the invariants this subsystem
guarantees.
"""

from .injector import DeviceHealth, FaultInjector
from .plan import FaultEvent, FaultKind, FaultPlan, RetryPolicy

__all__ = [
    "DeviceHealth",
    "FaultInjector",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "RetryPolicy",
]
