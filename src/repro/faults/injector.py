"""Per-run fault state: device health, wear watching, fired faults.

The :class:`FaultInjector` is the dispatcher's view of a
:class:`~repro.faults.plan.FaultPlan` while a run executes.  It owns
no simulator events itself -- the dispatcher schedules the plan's
timed events and calls :meth:`apply` when one fires -- but it is the
single source of truth for device health (alive / derated / stalled),
for traffic-triggered wear-out thresholds, and for the end-of-run
fault summary attached to the
:class:`~repro.core.dispatcher.DispatchResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memories.base import MemoryKind
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["DeviceHealth", "FaultInjector"]


@dataclass
class DeviceHealth:
    """Mutable runtime health of one memory device."""

    alive: bool = True
    derate: float = 1.0
    stalled_until: float = 0.0
    failed_at: float | None = None
    reason: str = ""
    fill_bytes: float = 0.0

    def stalled(self, now: float) -> bool:
        return self.alive and now < self.stalled_until

    def usable(self, now: float) -> bool:
        """Can the device accept a launch right now?"""
        return self.alive and not self.stalled(now)

    @property
    def time_scale(self) -> float:
        """Multiplier on device-timed phase durations (>= 1)."""
        return 1.0 / self.derate

    def as_dict(self) -> dict:
        return {
            "alive": self.alive,
            "derate": self.derate,
            "stalled_until": self.stalled_until,
            "failed_at": self.failed_at,
            "reason": self.reason,
        }


class FaultInjector:
    """Health/wear bookkeeping for one dispatch run under a plan."""

    def __init__(self, plan: FaultPlan, kinds: list[MemoryKind]) -> None:
        self.plan = plan
        self.retry = plan.retry
        self.health: dict[MemoryKind, DeviceHealth] = {
            kind: DeviceHealth() for kind in kinds
        }
        # Wear-out thresholds are armed per device; the cheapest
        # threshold fires first and a dead device cannot wear out twice.
        self._wear_watch: dict[MemoryKind, list[FaultEvent]] = {}
        for event in plan.wear_events():
            self._wear_watch.setdefault(event.device, []).append(event)
        for events in self._wear_watch.values():
            events.sort(key=lambda e: e.threshold_bytes)
        self.fired: list[tuple[float, FaultEvent]] = []

    # ------------------------------------------------------------------
    def apply(self, event: FaultEvent, now: float) -> bool:
        """Mutate device health for one fired fault.

        Returns False when the fault is moot (device already dead), in
        which case the caller should not count or act on it.
        """
        health = self.health.get(event.device)
        if health is None or not health.alive:
            return False
        if event.kind is FaultKind.STALL:
            health.stalled_until = max(health.stalled_until, now + event.duration)
        elif event.kind is FaultKind.DERATE:
            health.derate = event.factor
        else:  # FAIL and WEAROUT both end the device
            health.alive = False
            health.failed_at = now
            health.reason = event.reason or event.kind.value
        self.fired.append((now, event))
        return True

    def record_fill(self, kind: MemoryKind, nbytes: float) -> FaultEvent | None:
        """Charge fill traffic; returns a wear-out event once its
        threshold is crossed (at most one -- the device dies with it)."""
        health = self.health.get(kind)
        if health is None:
            return None
        health.fill_bytes += nbytes
        watch = self._wear_watch.get(kind)
        if not watch or not health.alive:
            return None
        if health.fill_bytes >= watch[0].threshold_bytes:
            return watch.pop(0)
        return None

    # ------------------------------------------------------------------
    def alive_kinds(self) -> list[MemoryKind]:
        return [kind for kind, h in self.health.items() if h.alive]

    def dead_kinds(self) -> list[MemoryKind]:
        return [kind for kind, h in self.health.items() if not h.alive]

    def time_scale(self, kind: MemoryKind) -> float:
        return self.health[kind].time_scale

    def summary(self) -> dict:
        """JSON-ready end-of-run fault summary."""
        return {
            "plan_size": len(self.plan),
            "injected": [
                {"fired_at": at, **event.as_dict()} for at, event in self.fired
            ],
            "devices": {
                kind.value: health.as_dict()
                for kind, health in sorted(
                    self.health.items(), key=lambda kv: kv[0].value
                )
            },
        }
