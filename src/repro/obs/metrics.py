"""Lightweight run metrics: counters, gauges, histograms.

The dispatcher feeds a :class:`MetricsRegistry` while a run executes:
counters for dispatch/completion events, step-function gauges for
per-device slots-in-use, arrays-in-use, queue depth and DDR4 pipe
occupancy, and value histograms for latency-like samples.  Gauges keep
their full (time, value) series, so time-weighted summaries -- the
quantities behind the paper's utilisation-timeline figures -- can be
derived after the run without any periodic sampling thread.

Everything is plain Python with no locking: the simulation is
single-threaded and deterministic, and a registry belongs to exactly
one :meth:`~repro.core.dispatcher.Dispatcher.run` call.

Usage::

    result = Dispatcher(system).run(policy)        # fills result.metrics
    result.metrics.counters["jobs.dispatched"].value
    result.metrics.gauges["sram.slots_in_use"].time_weighted_mean(result.makespan)
    result.metrics.snapshot()                      # JSON-ready dict

Besides per-run registries, the module keeps *process-global runtime
counters* -- totals that outlive any single run, e.g. simulator events
executed across a whole benchmark suite.  The dispatcher feeds
``sim.events`` / ``sim.runs``; :func:`runtime_snapshot` combines them
with the perf-layer cache hit-rates (``repro.core.perfmodel`` and
``repro.isa.timing``), which is what ``python -m repro bench`` records
into ``BENCH_<date>.json``::

    from repro.obs.metrics import reset_runtime_counters, runtime_snapshot
    reset_runtime_counters()
    ... run experiments ...
    snap = runtime_snapshot()
    snap["counters"]["sim.events"]            # events executed since reset
    snap["caches"]["perfmodel.knee"]["hit_rate"]
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "nearest_rank",
    "runtime_counter_inc",
    "runtime_counters",
    "reset_runtime_counters",
    "runtime_state_set",
    "runtime_states",
    "runtime_snapshot",
]


def nearest_rank(sorted_values: list[float], quantile: float) -> float:
    """Nearest-rank quantile: value at index ``ceil(q * n) - 1``.

    This is the textbook definition the dispatcher's tail-latency
    metric also uses; ``quantile`` must be in (0, 1].
    """
    if not sorted_values:
        raise ValueError("nearest_rank of an empty sample")
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    index = max(0, math.ceil(quantile * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


@dataclass
class Counter:
    """Monotonically increasing event count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


@dataclass
class Gauge:
    """Step-function time series of one instantaneous quantity.

    ``set(t, v)`` appends a sample; between samples the gauge holds its
    last value, which is what the event-driven dispatcher produces
    (state only changes at events).  Samples at the same timestamp
    overwrite, so a burst of same-instant events leaves one point.
    """

    name: str
    samples: list[tuple[float, float]] = field(default_factory=list)

    def set(self, time: float, value: float) -> None:
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(
                f"gauge {self.name}: sample at {time} precedes {self.samples[-1][0]}"
            )
        if self.samples and time == self.samples[-1][0]:
            self.samples[-1] = (time, float(value))
        else:
            self.samples.append((time, float(value)))

    @property
    def value(self) -> float:
        """Most recent sample (0 before any sample)."""
        return self.samples[-1][1] if self.samples else 0.0

    @property
    def max_value(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    def time_weighted_mean(self, horizon: float | None = None) -> float:
        """Mean of the step function over [first sample, horizon]."""
        if not self.samples:
            return 0.0
        end = self.samples[-1][0] if horizon is None else horizon
        start = self.samples[0][0]
        if end <= start:
            return self.samples[-1][1]
        area = 0.0
        for (t0, v0), (t1, _) in zip(self.samples, self.samples[1:]):
            area += v0 * (min(t1, end) - t0)
        last_t, last_v = self.samples[-1]
        if end > last_t:
            area += last_v * (end - last_t)
        return area / (end - start)

    def time_in_state(self, horizon: float | None = None) -> dict[float, float]:
        """Time-weighted histogram: seconds spent at each gauge value."""
        out: dict[float, float] = {}
        if not self.samples:
            return out
        end = self.samples[-1][0] if horizon is None else horizon
        for (t0, v0), (t1, _) in zip(self.samples, self.samples[1:]):
            span = min(t1, end) - t0
            if span > 0:
                out[v0] = out.get(v0, 0.0) + span
        last_t, last_v = self.samples[-1]
        if end > last_t:
            out[last_v] = out.get(last_v, 0.0) + (end - last_t)
        return out


@dataclass
class Histogram:
    """Plain value histogram with nearest-rank quantiles."""

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def quantile(self, q: float) -> float:
        if not self.values:
            return 0.0
        return nearest_rank(sorted(self.values), q)


class MetricsRegistry:
    """Namespace of counters, gauges and histograms for one run."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def snapshot(self, horizon: float | None = None) -> dict:
        """JSON-ready summary of every metric."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {
                name: {
                    "last": g.value,
                    "max": g.max_value,
                    "time_weighted_mean": g.time_weighted_mean(horizon),
                    "samples": len(g.samples),
                }
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": h.mean(),
                    "p50": h.quantile(0.5),
                    "p99": h.quantile(0.99),
                }
                for name, h in sorted(self.histograms.items())
            },
        }


# ======================================================================
# Process-global runtime counters
# ======================================================================
# Totals that span runs (a per-run MetricsRegistry dies with its
# DispatchResult).  Per-process like everything else here: parallel
# experiment workers each accumulate their own counters.
_RUNTIME_COUNTERS: dict[str, float] = {}

# Last-value runtime state (not monotonic): e.g. the current derate
# factor of each device under fault injection (``faults.derate.sram``).
_RUNTIME_STATE: dict[str, float] = {}


def runtime_state_set(name: str, value: float) -> None:
    """Set a process-global last-value state entry."""
    _RUNTIME_STATE[name] = float(value)


def runtime_states() -> dict[str, float]:
    """Copy of the process-global state entries."""
    return dict(_RUNTIME_STATE)


def runtime_counter_inc(name: str, amount: float = 1.0) -> None:
    """Increment a process-global counter (e.g. ``"sim.events"``)."""
    if amount < 0:
        raise ValueError("counters only increase")
    _RUNTIME_COUNTERS[name] = _RUNTIME_COUNTERS.get(name, 0.0) + amount


def runtime_counters() -> dict[str, float]:
    """Copy of the process-global counters."""
    return dict(_RUNTIME_COUNTERS)


def reset_runtime_counters() -> None:
    """Zero the process-global counters and state (start of a bench
    interval)."""
    _RUNTIME_COUNTERS.clear()
    _RUNTIME_STATE.clear()


def runtime_snapshot() -> dict:
    """Global counters plus the perf-layer cache statistics.

    The cache stats are pulled lazily from ``repro.core.perfmodel``
    and ``repro.isa.timing`` so this module stays import-light (the
    dispatcher imports ``repro.obs`` -- a module-level import back
    into ``repro.core`` would be circular).
    """
    from ..core import perfmodel
    from ..isa import timing

    caches = {}
    caches.update(perfmodel.cache_stats())
    caches.update(timing.cache_stats())
    return {"counters": runtime_counters(), "state": runtime_states(), "caches": caches}
