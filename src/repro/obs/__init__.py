"""Observability for MLIMP runs: metrics, decision log, trace analytics.

The paper's evaluation (Figs. 12-19) reasons about per-device
utilisation timelines, phase overlap and scheduler-vs-oracle gaps;
this package makes those quantities first-class for *every* run:

``repro.obs.metrics``    counters / gauges / histograms fed by the dispatcher
``repro.obs.decisions``  per-dispatch predicted-vs-actual decision log
``repro.obs.analytics``  utilisation, bubbles, phase breakdown -> RunReport
``repro.obs.export``     JSON / CSV dumps (also behind ``python -m repro trace``)
"""

from .analytics import DeviceReport, RunReport, bubbles, build_report, merged_intervals
from .decisions import DecisionLog, DispatchDecision
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
    reset_runtime_counters,
    runtime_counter_inc,
    runtime_counters,
    runtime_snapshot,
    runtime_state_set,
    runtime_states,
)
from .export import result_payload, trace_rows, write_results_json, write_trace_csv

__all__ = [
    "DeviceReport",
    "RunReport",
    "bubbles",
    "build_report",
    "merged_intervals",
    "DecisionLog",
    "DispatchDecision",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "nearest_rank",
    "reset_runtime_counters",
    "runtime_counter_inc",
    "runtime_counters",
    "runtime_snapshot",
    "runtime_state_set",
    "runtime_states",
    "result_payload",
    "trace_rows",
    "write_results_json",
    "write_trace_csv",
]
