"""JSON / CSV exporters for dispatch runs.

One :func:`result_payload` dict per run -- the derived report, the
raw trace timeline, the decision log and the metrics snapshot --
written by :func:`write_results_json`; :func:`write_trace_csv` dumps
the flat per-phase timeline for spreadsheet/Perfetto-style analysis.
Both accept a single :class:`~repro.core.dispatcher.DispatchResult`
or a list of them (multi-batch runs), tagging each row with its run
index.

Usage::

    from repro.obs import write_results_json, write_trace_csv

    result = runtime.run()
    write_results_json(result, "runs.json")   # report + timeline + decisions
    write_trace_csv(result, "trace.csv")      # run,job_id,device,phase,start,...

    # Multi-batch: pass the list; rows carry their run index.
    write_results_json(summary.results, "epoch.json")

The same artifacts are available from the CLI::

    python -m repro trace collab --json runs.json --csv trace.csv
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .analytics import build_report

__all__ = [
    "trace_rows",
    "result_payload",
    "write_results_json",
    "write_trace_csv",
]

_CSV_COLUMNS = ["run", "job_id", "device", "phase", "start", "end", "duration", "arrays"]


def trace_rows(result, run: int = 0) -> list[dict]:
    """Flat timeline rows for one run's trace."""
    return [
        {
            "run": run,
            "job_id": r.job_id,
            "device": r.device,
            "phase": r.phase.value,
            "start": r.start,
            "end": r.end,
            "duration": r.duration,
            "arrays": r.arrays,
        }
        for r in result.trace.records
    ]


def result_payload(result, run: int = 0) -> dict:
    """Everything one run produced, as JSON-ready data."""
    decisions = getattr(result, "decisions", None)
    metrics = getattr(result, "metrics", None)
    return {
        "run": run,
        "scheduler": result.scheduler_name,
        "makespan": result.makespan,
        "report": build_report(result).as_dict(),
        "trace": trace_rows(result, run),
        "decisions": (
            [d.as_dict() for d in decisions] if decisions is not None else []
        ),
        "metrics": (
            metrics.snapshot(result.makespan) if metrics is not None else None
        ),
        "energy_j": result.energy.total(),
        "faults": getattr(result, "fault_summary", None),
        "failed_jobs": dict(getattr(result, "failed_jobs", {}) or {}),
    }


def _as_results(results) -> list:
    return list(results) if isinstance(results, (list, tuple)) else [results]


def write_results_json(results, path: str | Path) -> Path:
    """Write one or several runs to ``path`` as a JSON document."""
    path = Path(path)
    runs = [result_payload(r, i) for i, r in enumerate(_as_results(results))]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"runs": runs}, indent=2, sort_keys=True))
    return path

def write_trace_csv(results, path: str | Path) -> Path:
    """Write the flat phase timeline of one or several runs as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_COLUMNS)
        writer.writeheader()
        for run, result in enumerate(_as_results(results)):
            writer.writerows(trace_rows(result, run))
    return path
