"""Trace analytics: the numbers behind the paper's timeline figures.

Figures 12-19 of the paper are statements about *where time goes*:
per-device utilisation, fill/replicate/compute overlap, and the
scheduling bubbles that separate the adaptive scheduler from the
global one (Section III-C5).  This module derives all of them from an
:class:`~repro.sim.trace.ExecutionTrace` and packages the result as a
:class:`RunReport`, reachable from any run via
:meth:`repro.core.dispatcher.DispatchResult.report`.

Usage::

    result = runtime.run()
    report = result.report()          # RunReport (str() renders the table)
    print(report)

    sram = report.devices["sram"]     # one DeviceReport per device
    sram.utilisation                  # busy fraction of the makespan
    sram.bubble_count                 # scheduling gaps (Section III-C5)
    sram.phase_seconds["fill"]        # fill / replicate / compute split
    report.as_dict()                  # JSON-ready form

    # or derive it directly from a DispatchResult:
    from repro.obs import build_report
    report = build_report(result)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.trace import ExecutionTrace

__all__ = ["DeviceReport", "RunReport", "merged_intervals", "bubbles", "build_report"]

#: Gaps shorter than this fraction of the device's active span are
#: measurement noise (event ordering, dispatch overhead), not bubbles.
MIN_BUBBLE_FRACTION = 1e-9


def merged_intervals(trace: ExecutionTrace, device: str) -> list[tuple[float, float]]:
    """The device's activity as disjoint, sorted (start, end) intervals."""
    intervals = sorted(
        (r.start, r.end) for r in trace.records if r.device == device
    )
    merged: list[tuple[float, float]] = []
    for start, end in intervals:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def bubbles(
    trace: ExecutionTrace, device: str, min_gap: float | None = None
) -> tuple[int, float]:
    """Idle gaps on ``device`` between its first and last activity.

    Returns ``(count, total_idle_seconds)``.  ``min_gap`` filters
    floating-point slivers; it defaults to a tiny fraction of the
    device's active span.
    """
    merged = merged_intervals(trace, device)
    if len(merged) < 2:
        return 0, 0.0
    if min_gap is None:
        span = merged[-1][1] - merged[0][0]
        min_gap = span * MIN_BUBBLE_FRACTION
    count, total = 0, 0.0
    for (_, end), (start, _) in zip(merged, merged[1:]):
        gap = start - end
        if gap > min_gap:
            count += 1
            total += gap
    return count, total


@dataclass(frozen=True)
class DeviceReport:
    """One device's share of the run."""

    device: str
    first_activity: float
    last_activity: float
    busy_time: float
    utilisation: float
    bubble_count: int
    bubble_time: float
    phase_seconds: dict[str, float]
    jobs: int

    def as_dict(self) -> dict:
        return {
            "device": self.device,
            "first_activity": self.first_activity,
            "last_activity": self.last_activity,
            "busy_time": self.busy_time,
            "utilisation": self.utilisation,
            "bubble_count": self.bubble_count,
            "bubble_time": self.bubble_time,
            "phase_seconds": dict(self.phase_seconds),
            "jobs": self.jobs,
        }


@dataclass
class RunReport:
    """Everything the observability layer derives from one run."""

    scheduler: str
    makespan: float
    n_jobs: int
    mean_latency: float
    p99_latency: float
    devices: dict[str, DeviceReport] = field(default_factory=dict)
    predictor: dict | None = None
    #: Fault-injection summary (None for fault-free runs): plan size,
    #: injected/retried/re-queued/failed counts, per-device health and
    #: migrations, and the makespan overhead vs the fault-free baseline
    #: when one was recorded.
    degradation: dict | None = None

    def as_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "makespan": self.makespan,
            "n_jobs": self.n_jobs,
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "devices": {name: dev.as_dict() for name, dev in self.devices.items()},
            "predictor": self.predictor,
            "degradation": self.degradation,
        }

    def __str__(self) -> str:
        lines = [
            f"== dispatch report ({self.scheduler or 'unlabelled'}) ==",
            f"makespan {_fmt_time(self.makespan)}  jobs {self.n_jobs}  "
            f"mean latency {_fmt_time(self.mean_latency)}  "
            f"p99 {_fmt_time(self.p99_latency)}",
        ]
        phases = sorted({p for dev in self.devices.values() for p in dev.phase_seconds})
        header = ["device", "jobs", "util", "busy", "bubbles", "idle"] + phases
        rows = [header]
        for name in sorted(self.devices):
            dev = self.devices[name]
            rows.append(
                [
                    name,
                    str(dev.jobs),
                    f"{dev.utilisation:.3f}",
                    _fmt_time(dev.busy_time),
                    str(dev.bubble_count),
                    _fmt_time(dev.bubble_time),
                ]
                + [_fmt_time(dev.phase_seconds.get(p, 0.0)) for p in phases]
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if self.predictor is None:
            lines.append("predictor error: n/a (no predictions recorded)")
        else:
            p = self.predictor
            lines.append(
                f"predictor error: n={p['count']}  "
                f"mean |err| {p['mean_abs_rel_error'] * 100:.1f}%  "
                f"p50 {p['p50_abs_rel_error'] * 100:.1f}%  "
                f"p90 {p['p90_abs_rel_error'] * 100:.1f}%  "
                f"bias {p['mean_signed_rel_error'] * 100:+.1f}%"
            )
        if self.degradation is not None:
            d = self.degradation
            lines.append(
                f"degraded mode: {int(d['faults_injected'])} faults injected "
                f"(plan {int(d['plan_size'])})  "
                f"retried {int(d['jobs_retried'])}  "
                f"re-queued {int(d['jobs_requeued'])}  "
                f"failed {int(d['jobs_failed'])}"
            )
            for device, count in sorted(d["migrated_off"].items()):
                lines.append(f"  migrated off {device}: {int(count)} jobs")
            dead = [
                name
                for name, health in sorted(d["devices"].items())
                if not health.get("alive", True)
            ]
            if dead:
                lines.append("  lost devices: " + ", ".join(dead))
            if d.get("makespan_overhead") is not None:
                lines.append(
                    "  makespan vs fault-free: "
                    f"{_fmt_time(d['fault_free_makespan'])} -> "
                    f"{_fmt_time(self.makespan)} "
                    f"({d['makespan_overhead'] * 100:+.1f}%)"
                )
        return "\n".join(lines)


def build_report(result) -> RunReport:
    """Derive the :class:`RunReport` for one
    :class:`~repro.core.dispatcher.DispatchResult`."""
    trace = result.trace
    jobs_per_device: dict[str, int] = {}
    for record in result.records.values():
        device = record.kind.value
        jobs_per_device[device] = jobs_per_device.get(device, 0) + 1
    devices: dict[str, DeviceReport] = {}
    for device in trace.devices():
        merged = merged_intervals(trace, device)
        bubble_count, bubble_time = bubbles(trace, device)
        devices[device] = DeviceReport(
            device=device,
            first_activity=merged[0][0],
            last_activity=merged[-1][1],
            busy_time=trace.busy_time(device),
            utilisation=trace.utilisation(device),
            bubble_count=bubble_count,
            bubble_time=bubble_time,
            phase_seconds={
                phase: seconds
                for phase, seconds in trace.per_device_phase_breakdown()
                .get(device, {})
                .items()
            },
            jobs=jobs_per_device.get(device, 0),
        )
    decisions = getattr(result, "decisions", None)
    return RunReport(
        scheduler=result.scheduler_name,
        makespan=result.makespan,
        n_jobs=len(result.records),
        mean_latency=result.mean_latency(),
        p99_latency=result.tail_latency(0.99),
        devices=devices,
        predictor=decisions.error_summary() if decisions is not None else None,
        degradation=_degradation_summary(result),
    )


def _degradation_summary(result) -> dict | None:
    """The report's fault-injection section, reconciled against the
    run's metric counters (``faults.injected``, ``jobs.retried``,
    ``jobs.requeued`` / ``jobs.requeued.<device>``, ``failed_jobs``)."""
    fault_summary = getattr(result, "fault_summary", None)
    if fault_summary is None:
        return None
    metrics = getattr(result, "metrics", None)
    counters = metrics.counters if metrics is not None else {}

    def value(name: str) -> float:
        return counters[name].value if name in counters else 0.0

    migrated = {
        name.split(".", 2)[2]: counter.value
        for name, counter in counters.items()
        if name.startswith("jobs.requeued.")
    }
    failed = dict(getattr(result, "failed_jobs", {}) or {})
    fault_free = getattr(result, "fault_free_makespan", None)
    return {
        "plan_size": fault_summary.get("plan_size", 0),
        "faults_injected": value("faults.injected"),
        "jobs_retried": value("jobs.retried"),
        "jobs_requeued": value("jobs.requeued"),
        "jobs_failed": len(failed),
        "failed_jobs": failed,
        "migrated_off": migrated,
        "devices": fault_summary.get("devices", {}),
        "fault_free_makespan": fault_free,
        "makespan_overhead": (
            result.makespan / fault_free - 1.0
            if fault_free is not None and fault_free > 0
            else None
        ),
    }


def _fmt_time(seconds: float) -> str:
    """Human-scaled time (kept local: obs sits below the harness)."""
    if seconds == 0:
        return "0"
    for unit, factor in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6), ("ns", 1e-9)):
        if abs(seconds) >= factor:
            return f"{seconds / factor:.2f}{unit}"
    return f"{seconds:.2e}s"
