"""Scheduler decision log: every dispatch, predicted vs. actual.

The paper's predictor study (Section III-E, Fig. 10/15) asks how much
scheduling quality suffers when the performance predictor is wrong.
To make that measurable on *every* run -- not only in the dedicated
predictor experiments -- the dispatcher records one
:class:`DispatchDecision` per launched job: the chosen memory, the
allocation, the total time the scheduler's estimate
(:class:`~repro.core.perfmodel.ScaleFreeEstimate` or
:class:`~repro.core.perfmodel.ProfileEstimate`) predicted for that
allocation, and -- once the job finishes -- the actual latency from
the :class:`~repro.core.dispatcher.JobRecord`.  Predictor error then
falls out as a per-run metric via :meth:`DecisionLog.error_summary`.

Usage::

    result = runtime.run()
    log = result.decisions
    log.error_summary()         # {"count": ..., "mean_abs_rel_error": ...,
                                #  "p50_abs_rel_error": ..., "p90_abs_rel_error": ...}
    worst = max(log, key=lambda d: abs(d.relative_error or 0.0))
    print(worst.job_id, worst.device, worst.predicted_time, worst.actual_time)

    # Slice by device to see where the predictor struggles:
    reram = [d for d in log if d.device == "reram"]
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import nearest_rank

__all__ = ["DispatchDecision", "DecisionLog"]


@dataclass
class DispatchDecision:
    """One launch decision and its eventual outcome."""

    job_id: str
    device: str
    arrays: int
    decided_at: float
    predicted_time: float | None = None
    queue_depth: int = 0
    actual_time: float | None = None

    @property
    def resolved(self) -> bool:
        """Both sides of the prediction are known."""
        return self.predicted_time is not None and self.actual_time is not None

    @property
    def absolute_error(self) -> float | None:
        if not self.resolved:
            return None
        return abs(self.actual_time - self.predicted_time)

    @property
    def relative_error(self) -> float | None:
        """Signed (actual - predicted) / actual; negative = overestimate."""
        if not self.resolved or self.actual_time <= 0:
            return None
        return (self.actual_time - self.predicted_time) / self.actual_time

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "device": self.device,
            "arrays": self.arrays,
            "decided_at": self.decided_at,
            "predicted_time": self.predicted_time,
            "actual_time": self.actual_time,
            "queue_depth": self.queue_depth,
            "relative_error": self.relative_error,
        }


class DecisionLog:
    """Append-only log of dispatch decisions for one run."""

    def __init__(self) -> None:
        self._decisions: list[DispatchDecision] = []
        self._by_job: dict[str, DispatchDecision] = {}

    def record(
        self,
        job_id: str,
        device: str,
        arrays: int,
        decided_at: float,
        predicted_time: float | None = None,
        queue_depth: int = 0,
    ) -> DispatchDecision:
        if job_id in self._by_job:
            raise ValueError(f"decision for job {job_id!r} already recorded")
        decision = DispatchDecision(
            job_id=job_id,
            device=device,
            arrays=arrays,
            decided_at=decided_at,
            predicted_time=predicted_time,
            queue_depth=queue_depth,
        )
        self._decisions.append(decision)
        self._by_job[job_id] = decision
        return decision

    def complete(self, job_id: str, actual_time: float) -> None:
        """Attach the measured latency once the job finished."""
        try:
            self._by_job[job_id].actual_time = actual_time
        except KeyError:
            raise KeyError(f"no decision recorded for job {job_id!r}") from None

    # ------------------------------------------------------------------
    @property
    def decisions(self) -> list[DispatchDecision]:
        return list(self._decisions)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self):
        return iter(self._decisions)

    def __contains__(self, job_id: str) -> bool:
        """A decision for ``job_id`` is already recorded (fault-retry
        relaunches consult this to keep the log one-entry-per-job)."""
        return job_id in self._by_job

    def error_summary(self) -> dict | None:
        """Predictor-error statistics over the resolved decisions.

        Returns ``None`` when no decision carried a prediction (e.g.
        hand-built policies); otherwise a dict with the decision count,
        mean/percentile *absolute* relative error, and the signed mean
        (bias: positive = the predictor underestimates).
        """
        resolved = [d for d in self._decisions if d.resolved and d.actual_time > 0]
        if not resolved:
            return None
        abs_errors = sorted(abs(d.relative_error) for d in resolved)
        signed = [d.relative_error for d in resolved]
        return {
            "count": len(resolved),
            "mean_abs_rel_error": sum(abs_errors) / len(abs_errors),
            "p50_abs_rel_error": nearest_rank(abs_errors, 0.5),
            "p90_abs_rel_error": nearest_rank(abs_errors, 0.9),
            "max_abs_rel_error": abs_errors[-1],
            "mean_signed_rel_error": sum(signed) / len(signed),
        }
