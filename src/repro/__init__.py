"""repro: a reproduction of "Multi-Layer In-Memory Processing" (MICRO 2022).

Simulator and scheduler stack for systems with multiple in-memory
compute layers (SRAM LLC / DRAM / ReRAM).  See README.md for the
architecture tour and DESIGN.md for the paper-to-module map.

Subpackages
-----------
``repro.memories``   device models (Table III), allocator, Figure 1 data
``repro.isa``        SIMD-DFG frontend, lowering, cross-compiler
``repro.sim``        event engine, DDR4 pipe, energy, traces
``repro.kernels``    GEMM / SpMM / Vadd mappings
``repro.gnn``        graphs, OGB analogs, sampler, GCN job streams
``repro.apps``       Table II data-parallel applications and combos
``repro.core``       jobs, Eq. 1-3 model, predictors, schedulers, runtime
``repro.faults``     fault plans, injector, graceful degradation
``repro.obs``        metrics, decision log, trace analytics, exporters
``repro.ml``         from-scratch MLP and gradient-boosted trees
``repro.baselines``  Xeon / Titan XP roofline models
``repro.harness``    per-figure experiment runners and ablations
"""

from . import (
    apps,
    baselines,
    core,
    faults,
    gnn,
    harness,
    isa,
    kernels,
    memories,
    ml,
    obs,
    sim,
)
from .core import (
    AdaptiveScheduler,
    Dispatcher,
    GlobalScheduler,
    Job,
    JobPerfProfile,
    LJFScheduler,
    MLIMPSystem,
    MLPPredictor,
    NoisyPredictor,
    OraclePredictor,
    oracle_makespan,
)
from .faults import FaultEvent, FaultKind, FaultPlan, RetryPolicy
from .memories import DEFAULT_SPECS, MemoryKind, MemorySpec

__version__ = "1.0.0"

__all__ = [
    "apps",
    "baselines",
    "core",
    "faults",
    "gnn",
    "harness",
    "isa",
    "kernels",
    "memories",
    "ml",
    "obs",
    "sim",
    "AdaptiveScheduler",
    "Dispatcher",
    "GlobalScheduler",
    "Job",
    "JobPerfProfile",
    "LJFScheduler",
    "MLIMPSystem",
    "MLPPredictor",
    "NoisyPredictor",
    "OraclePredictor",
    "oracle_makespan",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "RetryPolicy",
    "DEFAULT_SPECS",
    "MemoryKind",
    "MemorySpec",
    "__version__",
]
