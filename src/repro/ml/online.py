"""Building blocks for the online predictor lifecycle.

The paper trains its MLP cost model offline per mother graph (III-E);
a serving deployment additionally needs the train/deploy/monitor/
retrain loop.  This module holds the two generic, dependency-free
pieces of that loop:

* :class:`ReplayBuffer` -- a bounded FIFO of (features, target)
  observations harvested from dispatcher job completions, replayed
  into :meth:`MLPRegressor.partial_fit` at retraining time;
* :class:`DriftTracker` -- a rolling window of (actual, predicted)
  pairs scored with :func:`repro.ml.metrics.relative_rmse`, used to
  gate the model behind the analytical fallback while its error
  exceeds a bound.

The dispatcher-facing wrapper that combines them with the two-stage
predictor lives in :class:`repro.core.predictor.OnlinePredictor`
(``core`` already imports ``ml``; keeping this module core-free avoids
an import cycle).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .metrics import relative_rmse

__all__ = ["ReplayBuffer", "DriftTracker"]


class ReplayBuffer:
    """Bounded FIFO of (features, target) training observations.

    Once ``capacity`` is reached the oldest observation is dropped, so
    retraining always sees the most recent window of dispatch actuals.
    All observations must share one feature length; the first ``add``
    fixes it.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rows: deque[tuple[np.ndarray, float]] = deque(maxlen=capacity)
        self._n_features: int | None = None

    def add(self, features, target: float) -> None:
        x = np.asarray(features, dtype=float).ravel()
        if self._n_features is None:
            if x.shape[0] == 0:
                raise ValueError("features must be non-empty")
            self._n_features = x.shape[0]
        elif x.shape[0] != self._n_features:
            raise ValueError(
                f"feature length mismatch: buffer holds {self._n_features}, "
                f"got {x.shape[0]}"
            )
        self._rows.append((x, float(target)))

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(X, y)`` of everything currently buffered."""
        if not self._rows:
            raise ValueError("buffer is empty")
        X = np.stack([x for x, _ in self._rows])
        y = np.array([t for _, t in self._rows])
        return X, y

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)


class DriftTracker:
    """Rolling relative-RMSE of model predictions against actuals.

    ``value()`` is ``None`` until ``min_samples`` pairs have been seen
    (fresh models get a grace window instead of an instant verdict);
    after a retrain call :meth:`reset` so stale pre-update errors do
    not keep the new model gated.
    """

    def __init__(self, window: int = 64, min_samples: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.window = window
        self.min_samples = min_samples
        self._pairs: deque[tuple[float, float]] = deque(maxlen=window)

    def add(self, actual: float, predicted: float) -> None:
        self._pairs.append((float(actual), float(predicted)))

    def value(self) -> float | None:
        """Relative RMSE over the window, or ``None`` if undecided."""
        if len(self._pairs) < self.min_samples:
            return None
        actual = np.array([a for a, _ in self._pairs])
        if np.mean(np.abs(actual)) == 0.0:
            return None  # relative error undefined on all-zero actuals
        predicted = np.array([p for _, p in self._pairs])
        return float(relative_rmse(actual, predicted))

    def drifting(self, bound: float) -> bool:
        """True when the window is decided *and* above ``bound``."""
        value = self.value()
        return value is not None and value > bound

    def reset(self) -> None:
        self._pairs.clear()

    def __len__(self) -> int:
        return len(self._pairs)
