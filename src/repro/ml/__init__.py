"""From-scratch regressors and metrics for the performance predictor."""

from .forest import GradientBoostedTrees, RegressionTree
from .metrics import r2_score, relative_rmse, rmse
from .mlp import MLPRegressor
from .online import DriftTracker, ReplayBuffer
from .scaling import StandardScaler

__all__ = [
    "DriftTracker",
    "GradientBoostedTrees",
    "MLPRegressor",
    "RegressionTree",
    "ReplayBuffer",
    "StandardScaler",
    "r2_score",
    "relative_rmse",
    "rmse",
]
