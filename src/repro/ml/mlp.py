"""NumPy multi-layer perceptron regressor.

The paper's performance predictor uses MLP regressors with "two hidden
layers with 16 and 8 nodes" (III-E), trained per mother graph, then
deployed with negligible inference cost.  This is a from-scratch
implementation: ReLU hidden layers, linear output, squared loss, Adam
optimiser, mini-batch training with a deterministic seed.  Inputs and
targets are standardised internally so callers pass raw features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .scaling import StandardScaler

__all__ = ["MLPRegressor"]


@dataclass
class MLPRegressor:
    """Small fully-connected regressor.

    Parameters
    ----------
    hidden:
        Hidden layer widths; the paper's predictor uses ``(16, 8)``.
    epochs, batch_size, learning_rate:
        Adam training hyper-parameters.
    l2:
        Weight decay.
    seed:
        Seed for init and batch shuffling; training is deterministic.
    """

    hidden: tuple[int, ...] = (16, 8)
    epochs: int = 300
    batch_size: int = 32
    learning_rate: float = 1e-2
    l2: float = 1e-5
    seed: int = 0
    _weights: list[np.ndarray] = field(default_factory=list, repr=False)
    _biases: list[np.ndarray] = field(default_factory=list, repr=False)
    _x_scaler: StandardScaler = field(default_factory=StandardScaler, repr=False)
    _y_scaler: StandardScaler = field(default_factory=StandardScaler, repr=False)
    loss_history_: list[float] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    def _init_params(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = (n_features, *self.hidden, 1)
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)  # He init for ReLU
            self._weights.append(rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        out = X
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ W + b
            if i != last:
                out = np.maximum(out, 0.0)
            activations.append(out)
        return out, activations

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "MLPRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1, 1)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 samples")

        Xs = self._x_scaler.fit_transform(X)
        ys = self._y_scaler.fit_transform(y)

        rng = np.random.default_rng(self.seed)
        self._init_params(X.shape[1], rng)
        n = Xs.shape[0]
        batch = min(self.batch_size, n)

        # Adam state
        m_w = [np.zeros_like(W) for W in self._weights]
        v_w = [np.zeros_like(W) for W in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        self.loss_history_ = []
        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = Xs[idx], ys[idx]
                pred, acts = self._forward(xb)
                err = pred - yb
                epoch_loss += float(np.sum(err**2))

                # Backprop
                grad = 2.0 * err / len(idx)
                grads_w: list[np.ndarray] = [None] * len(self._weights)  # type: ignore
                grads_b: list[np.ndarray] = [None] * len(self._biases)  # type: ignore
                for layer in range(len(self._weights) - 1, -1, -1):
                    a_in = acts[layer]
                    grads_w[layer] = a_in.T @ grad + self.l2 * self._weights[layer]
                    grads_b[layer] = grad.sum(axis=0)
                    if layer > 0:
                        grad = grad @ self._weights[layer].T
                        grad = grad * (acts[layer] > 0.0)

                # Adam update
                step += 1
                for layer in range(len(self._weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    m_w_hat = m_w[layer] / (1 - beta1**step)
                    v_w_hat = v_w[layer] / (1 - beta2**step)
                    m_b_hat = m_b[layer] / (1 - beta1**step)
                    v_b_hat = v_b[layer] / (1 - beta2**step)
                    self._weights[layer] -= (
                        self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    )
                    self._biases[layer] -= (
                        self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)
                    )
            self.loss_history_.append(epoch_loss / n)
        return self

    def predict(self, X) -> np.ndarray:
        if not self._weights:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        Xs = self._x_scaler.transform(X)
        pred, _ = self._forward(Xs)
        out = self._y_scaler.inverse_transform(pred).ravel()
        return out[0] if single else out

    @property
    def n_parameters(self) -> int:
        """Trainable parameter count (the paper's storage-cost point)."""
        return int(
            sum(W.size for W in self._weights) + sum(b.size for b in self._biases)
        )
