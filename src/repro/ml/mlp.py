"""NumPy multi-layer perceptron regressor.

The paper's performance predictor uses MLP regressors with "two hidden
layers with 16 and 8 nodes" (III-E), trained per mother graph, then
deployed with negligible inference cost.  This is a from-scratch
implementation: ReLU hidden layers, linear output, squared loss, Adam
optimiser, mini-batch training with a deterministic seed.  Inputs and
targets are standardised internally so callers pass raw features.

Beyond one-shot :meth:`MLPRegressor.fit`, the regressor supports the
predictor-lifecycle operations the online-learning path needs:

* :meth:`MLPRegressor.partial_fit` -- warm-start training that reuses
  the existing weights *and* Adam moments, merging the new batch into
  the input/target scalers (Chan's parallel update) while linearly
  compensating the first/last layer so the learned function is
  unchanged by the re-normalisation itself;
* :meth:`MLPRegressor.to_dict` / :meth:`MLPRegressor.from_dict` --
  JSON-ready serialisation of the full training state (weights,
  scalers, Adam moments, update counter), so a saved model continues
  training exactly where the in-memory one would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .scaling import StandardScaler

__all__ = ["MLPRegressor"]

#: Serialisation schema version for :meth:`MLPRegressor.to_dict`.
MLP_STATE_VERSION = 1


@dataclass
class MLPRegressor:
    """Small fully-connected regressor.

    Parameters
    ----------
    hidden:
        Hidden layer widths; the paper's predictor uses ``(16, 8)``.
    epochs, batch_size, learning_rate:
        Adam training hyper-parameters.
    l2:
        Weight decay.
    seed:
        Seed for init and batch shuffling; training is deterministic.
    """

    hidden: tuple[int, ...] = (16, 8)
    epochs: int = 300
    batch_size: int = 32
    learning_rate: float = 1e-2
    l2: float = 1e-5
    seed: int = 0
    _weights: list[np.ndarray] = field(default_factory=list, repr=False)
    _biases: list[np.ndarray] = field(default_factory=list, repr=False)
    _x_scaler: StandardScaler = field(default_factory=StandardScaler, repr=False)
    _y_scaler: StandardScaler = field(default_factory=StandardScaler, repr=False)
    _adam: dict | None = field(default=None, repr=False)
    #: How many :meth:`partial_fit` updates have been applied (drives
    #: the per-update shuffling seed, so training stays deterministic
    #: across a save/load round trip).
    n_updates_: int = field(default=0, repr=False)
    loss_history_: list[float] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    def _init_params(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = (n_features, *self.hidden, 1)
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)  # He init for ReLU
            self._weights.append(rng.normal(0.0, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _fresh_adam(self) -> dict:
        return {
            "m_w": [np.zeros_like(W) for W in self._weights],
            "v_w": [np.zeros_like(W) for W in self._weights],
            "m_b": [np.zeros_like(b) for b in self._biases],
            "v_b": [np.zeros_like(b) for b in self._biases],
            "step": 0,
        }

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        out = X
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ W + b
            if i != last:
                out = np.maximum(out, 0.0)
            activations.append(out)
        return out, activations

    def _run_epochs(
        self, Xs: np.ndarray, ys: np.ndarray, epochs: int, rng: np.random.Generator
    ) -> None:
        """Mini-batch Adam over standardised data, continuing from the
        persistent optimiser state in ``self._adam``."""
        n = Xs.shape[0]
        batch = min(self.batch_size, n)
        adam = self._adam
        m_w, v_w = adam["m_w"], adam["v_w"]
        m_b, v_b = adam["m_b"], adam["v_b"]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = Xs[idx], ys[idx]
                pred, acts = self._forward(xb)
                err = pred - yb
                epoch_loss += float(np.sum(err**2))

                # Backprop
                grad = 2.0 * err / len(idx)
                grads_w: list[np.ndarray] = [None] * len(self._weights)  # type: ignore
                grads_b: list[np.ndarray] = [None] * len(self._biases)  # type: ignore
                for layer in range(len(self._weights) - 1, -1, -1):
                    a_in = acts[layer]
                    grads_w[layer] = a_in.T @ grad + self.l2 * self._weights[layer]
                    grads_b[layer] = grad.sum(axis=0)
                    if layer > 0:
                        grad = grad @ self._weights[layer].T
                        grad = grad * (acts[layer] > 0.0)

                # Adam update
                adam["step"] += 1
                step = adam["step"]
                for layer in range(len(self._weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    m_w_hat = m_w[layer] / (1 - beta1**step)
                    v_w_hat = v_w[layer] / (1 - beta2**step)
                    m_b_hat = m_b[layer] / (1 - beta1**step)
                    v_b_hat = v_b[layer] / (1 - beta2**step)
                    self._weights[layer] -= (
                        self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    )
                    self._biases[layer] -= (
                        self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)
                    )
            self.loss_history_.append(epoch_loss / n)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(X, y, min_samples: int) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1, 1)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] < min_samples:
            raise ValueError(f"need at least {min_samples} samples")
        return X, y

    def fit(self, X, y) -> "MLPRegressor":
        X, y = self._validate(X, y, min_samples=2)

        Xs = self._x_scaler.fit_transform(X)
        ys = self._y_scaler.fit_transform(y)

        rng = np.random.default_rng(self.seed)
        self._init_params(X.shape[1], rng)
        self._adam = self._fresh_adam()
        self.n_updates_ = 0
        self.loss_history_ = []
        self._run_epochs(Xs, ys, self.epochs, rng)
        return self

    def partial_fit(self, X, y, epochs: int | None = None) -> "MLPRegressor":
        """Warm-start update on a new batch of observations.

        The first call on an unfitted model is :meth:`fit`.  Later
        calls keep the existing weights and Adam moments and run
        ``epochs`` (default: the constructor's ``epochs``) of
        mini-batch Adam over the new batch only.  Batches smaller than
        ``batch_size`` -- down to a single sample -- are fine.

        Scaler refresh is *safe*: the new batch is merged into the
        input/target statistics (Chan's parallel update), and the
        first-layer weights/bias and output layer are linearly
        compensated for the changed normalisation, so re-scaling alone
        never moves the learned function.  (Adam moments are kept
        as-is across the re-parameterisation -- they are running
        gradient averages, not part of the function.)  Shuffling is
        seeded from ``(seed, update counter)``, so an update sequence
        is deterministic and survives a save/load round trip.
        """
        if not self._weights:
            return self.fit(X, y)
        X, y = self._validate(X, y, min_samples=1)
        n_features = self._x_scaler.mean_.shape[0]
        if X.shape[1] != n_features:
            raise ValueError(
                f"feature count mismatch: model has {n_features}, got {X.shape[1]}"
            )

        old_x_mean = self._x_scaler.mean_.copy()
        old_x_scale = self._x_scaler.scale_.copy()
        old_y_mean = self._y_scaler.mean_.copy()
        old_y_scale = self._y_scaler.scale_.copy()
        self._x_scaler.partial_fit(X)
        self._y_scaler.partial_fit(y)
        self._compensate_rescaling(old_x_mean, old_x_scale, old_y_mean, old_y_scale)

        Xs = self._x_scaler.transform(X)
        ys = self._y_scaler.transform(y)
        self.n_updates_ += 1
        rng = np.random.default_rng((self.seed, self.n_updates_))
        self._run_epochs(Xs, ys, self.epochs if epochs is None else epochs, rng)
        return self

    def _compensate_rescaling(
        self,
        old_x_mean: np.ndarray,
        old_x_scale: np.ndarray,
        old_y_mean: np.ndarray,
        old_y_scale: np.ndarray,
    ) -> None:
        """Re-express the network under the refreshed scalers.

        With inputs ``z_old = (x - m0) / s0`` and ``z_new = (x - m1) / s1``
        we have ``z_old = z_new * (s1 / s0) + (m1 - m0) / s0``, so folding
        the ratio into the first layer (and the analogous inverse map
        into the output layer) leaves the end-to-end function on raw
        ``x``/``y`` exactly where training left it.
        """
        ratio = self._x_scaler.scale_ / old_x_scale
        shift = (self._x_scaler.mean_ - old_x_mean) / old_x_scale
        first = self._weights[0]
        self._biases[0] = self._biases[0] + shift @ first
        self._weights[0] = first * ratio[:, None]

        sy0, my0 = float(old_y_scale[0]), float(old_y_mean[0])
        sy1 = float(self._y_scaler.scale_[0])
        my1 = float(self._y_scaler.mean_[0])
        self._weights[-1] = self._weights[-1] * (sy0 / sy1)
        self._biases[-1] = (self._biases[-1] * sy0 + my0 - my1) / sy1

    def predict(self, X) -> np.ndarray:
        if not self._weights:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        Xs = self._x_scaler.transform(X)
        pred, _ = self._forward(Xs)
        out = self._y_scaler.inverse_transform(pred).ravel()
        return out[0] if single else out

    @property
    def n_parameters(self) -> int:
        """Trainable parameter count (the paper's storage-cost point)."""
        return int(
            sum(W.size for W in self._weights) + sum(b.size for b in self._biases)
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready full training state.

        Floats survive a ``json.dumps``/``loads`` round trip exactly
        (repr-based shortest round-trip encoding), so a reloaded model
        predicts byte-identically and -- because the Adam moments and
        update counter ride along -- continues ``partial_fit`` training
        exactly where the saved one stopped.
        """
        payload: dict = {
            "version": MLP_STATE_VERSION,
            "hidden": list(self.hidden),
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "learning_rate": self.learning_rate,
            "l2": self.l2,
            "seed": self.seed,
            "fitted": bool(self._weights),
            "n_updates": int(self.n_updates_),
            "x_scaler": self._x_scaler.to_dict(),
            "y_scaler": self._y_scaler.to_dict(),
        }
        if self._weights:
            payload["weights"] = [W.tolist() for W in self._weights]
            payload["biases"] = [b.tolist() for b in self._biases]
            adam = self._adam or self._fresh_adam()
            payload["adam"] = {
                "step": int(adam["step"]),
                "m_w": [m.tolist() for m in adam["m_w"]],
                "v_w": [v.tolist() for v in adam["v_w"]],
                "m_b": [m.tolist() for m in adam["m_b"]],
                "v_b": [v.tolist() for v in adam["v_b"]],
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MLPRegressor":
        """Rebuild a regressor saved with :meth:`to_dict`."""
        version = payload.get("version")
        if version != MLP_STATE_VERSION:
            raise ValueError(
                f"unsupported MLPRegressor state version {version!r} "
                f"(this build reads version {MLP_STATE_VERSION})"
            )
        model = cls(
            hidden=tuple(payload["hidden"]),
            epochs=int(payload["epochs"]),
            batch_size=int(payload["batch_size"]),
            learning_rate=float(payload["learning_rate"]),
            l2=float(payload["l2"]),
            seed=int(payload["seed"]),
        )
        model._x_scaler = StandardScaler.from_dict(payload["x_scaler"])
        model._y_scaler = StandardScaler.from_dict(payload["y_scaler"])
        model.n_updates_ = int(payload.get("n_updates", 0))
        if payload.get("fitted"):
            model._weights = [np.asarray(W, dtype=float) for W in payload["weights"]]
            model._biases = [np.asarray(b, dtype=float) for b in payload["biases"]]
            adam = payload["adam"]
            model._adam = {
                "m_w": [np.asarray(m, dtype=float) for m in adam["m_w"]],
                "v_w": [np.asarray(v, dtype=float) for v in adam["v_w"]],
                "m_b": [np.asarray(m, dtype=float) for m in adam["m_b"]],
                "v_b": [np.asarray(v, dtype=float) for v in adam["v_b"]],
                "step": int(adam["step"]),
            }
        return model
