"""Feature standardisation for the regressors."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Zero-mean unit-variance scaling with degenerate-column guards.

    Besides the usual :meth:`fit`/:meth:`transform` pair the scaler
    supports *incremental* statistics (:meth:`partial_fit`, Chan's
    parallel-variance merge) so the online-learning path can refresh
    its normalisation from streamed observations, and JSON-ready
    serialisation (:meth:`to_dict`/:meth:`from_dict`) so a fitted
    scaler rides along inside a saved predictor artifact.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None
        self.var_: np.ndarray | None = None
        self.n_samples_seen_: int = 0

    def _set_scale(self) -> None:
        scale = np.sqrt(self.var_)
        scale[scale == 0.0] = 1.0  # constant columns pass through centred
        self.scale_ = scale

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        self.mean_ = X.mean(axis=0)
        self.var_ = X.var(axis=0)
        self.n_samples_seen_ = X.shape[0]
        self._set_scale()
        return self

    def partial_fit(self, X) -> "StandardScaler":
        """Merge a new batch into the running mean/variance.

        The first call is equivalent to :meth:`fit`; later calls merge
        batch statistics with Chan's parallel update, so feeding the
        data in chunks matches one :meth:`fit` over the concatenation
        (up to floating-point rounding).
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        if self.mean_ is None:
            return self.fit(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError("feature count mismatch")
        n1, n2 = self.n_samples_seen_, X.shape[0]
        n = n1 + n2
        mean2 = X.mean(axis=0)
        var2 = X.var(axis=0)
        delta = mean2 - self.mean_
        m2_total = self.var_ * n1 + var2 * n2 + delta**2 * (n1 * n2 / n)
        self.mean_ = self.mean_ + delta * (n2 / n)
        self.var_ = m2_total / n
        self.n_samples_seen_ = n
        self._set_scale()
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=float)
        n_features = self.mean_.shape[0]
        if X.ndim == 1:
            # Only a vector of exactly `n_features` entries is an
            # unambiguous single sample; anything else used to be
            # silently reshaped to one bogus row -- reject it instead.
            if X.shape[0] != n_features:
                raise ValueError(
                    f"ambiguous 1-D input of length {X.shape[0]}: a single "
                    f"sample must have {n_features} features; pass a 2-D "
                    "array for multiple samples"
                )
            X = X.reshape(1, -1)
        if X.shape[1] != n_features:
            raise ValueError("feature count mismatch")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready state (floats survive the round trip exactly)."""
        if self.mean_ is None:
            return {"fitted": False}
        return {
            "fitted": True,
            "mean": self.mean_.tolist(),
            "var": self.var_.tolist(),
            "scale": self.scale_.tolist(),
            "n_samples_seen": int(self.n_samples_seen_),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StandardScaler":
        scaler = cls()
        if not payload.get("fitted"):
            return scaler
        scaler.mean_ = np.asarray(payload["mean"], dtype=float)
        scaler.var_ = np.asarray(payload["var"], dtype=float)
        scaler.scale_ = np.asarray(payload["scale"], dtype=float)
        scaler.n_samples_seen_ = int(payload["n_samples_seen"])
        return scaler
