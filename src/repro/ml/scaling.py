"""Feature standardisation for the regressors."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Zero-mean unit-variance scaling with degenerate-column guards."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant columns pass through centred
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError("feature count mismatch")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_
