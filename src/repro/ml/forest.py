"""Gradient-boosted regression trees (XGBoost stand-in).

Section III-E notes that "random forest based solutions such as XGBoost
can achieve up to 2x better accuracy (RMSE), while requiring
significantly more computation and parameter storage cost compared to
MLP".  To reproduce that comparison offline we implement plain
gradient boosting with squared loss over exact-split regression trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class RegressionTree:
    """CART-style regression tree with exact splits on each feature."""

    max_depth: int = 3
    min_samples_leaf: int = 2
    _root: _Node | None = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("bad training data shapes")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        n, d = X.shape
        base_sse = float(np.sum((y - y.mean()) ** 2))
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for feature in range(d):
            order = np.argsort(X[:, feature], kind="stable")
            xs, ys = X[order, feature], y[order]
            # Prefix sums give each split's SSE in O(n).
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys**2)
            total, total2 = csum[-1], csum2[-1]
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                left_sse = csum2[i - 1] - csum[i - 1] ** 2 / i
                right_n = n - i
                right_sum = total - csum[i - 1]
                right_sse = (total2 - csum2[i - 1]) - right_sum**2 / right_n
                gain = base_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    threshold = (
                        (xs[i - 1] + xs[i]) / 2.0 if i < n else xs[i - 1]
                    )
                    best = (feature, float(threshold))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def n_nodes(self) -> int:
        def count(node: _Node | None) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        return count(self._root)


@dataclass
class GradientBoostedTrees:
    """Squared-loss gradient boosting over :class:`RegressionTree`."""

    n_estimators: int = 100
    learning_rate: float = 0.1
    max_depth: int = 3
    min_samples_leaf: int = 2
    subsample: float = 1.0
    seed: int = 0
    _trees: list[RegressionTree] = field(default_factory=list, repr=False)
    _base: float = field(default=0.0, repr=False)

    def fit(self, X, y) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("bad training data shapes")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        rng = np.random.default_rng(self.seed)
        self._base = float(y.mean())
        self._trees = []
        pred = np.full_like(y, self._base, dtype=float)
        n = X.shape[0]
        sample_size = max(2 * self.min_samples_leaf, int(self.subsample * n))
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0 and sample_size < n:
                idx = rng.choice(n, size=sample_size, replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(X[idx], residual[idx])
            self._trees.append(tree)
            pred += self.learning_rate * tree.predict(X)
        return self

    def predict(self, X) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X.reshape(1, -1)
        pred = np.full(X.shape[0], self._base)
        for tree in self._trees:
            pred += self.learning_rate * tree.predict(X)
        return pred[0] if single else pred

    @property
    def n_parameters(self) -> int:
        """Stored node count -- the storage-cost comparison vs MLP."""
        return sum(tree.n_nodes * 3 for tree in self._trees)
