"""Regression metrics used to evaluate the performance predictor."""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "rmse", "relative_rmse"]


def _as_1d(values) -> np.ndarray:
    array = np.asarray(values, dtype=float).ravel()
    if array.size == 0:
        raise ValueError("empty input")
    return array


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Matches the convention the paper quotes (median R^2 of 0.998 for
    the scale-free fit, 0.995 for the cycle predictor): 1 minus the
    ratio of residual to total sum of squares.

    Degenerate case: when the target is constant, the total sum of
    squares is zero and the usual formula would divide by zero.  We
    return 1.0 if the predictions are exact and 0.0 otherwise --
    i.e. any error on a constant target counts as no better than the
    trivial mean predictor.
    """
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true = _as_1d(y_true)
    y_pred = _as_1d(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def relative_rmse(y_true, y_pred) -> float:
    """RMSE as a fraction of the mean target.

    The paper reports "RMSE of 22% of the mean cycles" -- this is that
    quantity.
    """
    y_true = _as_1d(y_true)
    mean = float(np.mean(y_true))
    if mean == 0.0:
        raise ValueError("mean of targets is zero; relative RMSE undefined")
    return rmse(y_true, y_pred) / abs(mean)
