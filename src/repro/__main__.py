"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig16            # one experiment
    python -m repro run fig13 fig14      # several
    python -m repro run all --parallel 4 # everything, across 4 workers
    python -m repro specs                # Table III device summary
    python -m repro trace A              # observability report for combo A
    python -m repro trace collab --scheduler adaptive --json out.json
    python -m repro bench --quick        # timed perf suite -> BENCH_<date>.json
    python -m repro serve --arrivals poisson --rate 50 --tenants 3 --slo 10
    python -m repro predictor train --dataset collab --out pred.json
    python -m repro serve --predictor online   # self-training serve run
    python -m repro cluster --nodes 4 --rate 200 --placement hash
    python -m repro cluster --nodes 2 --fail-node node-1:0.5 --json out.json
    python -m repro serve --admission predictive --slo 0.1 --rate 2e6
    python -m repro replay --windows 6 --admission predictive --autoscale
    python -m repro replay --halt-after 3 --checkpoint ck.json
"""

from __future__ import annotations

import argparse
import sys
import time


def _registry() -> dict:
    from .harness.experiments import full_registry

    return full_registry()


def cmd_list() -> int:
    registry = _registry()
    width = max(len(name) for name in registry)
    for name, fn in registry.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{name.ljust(width)}  {doc}")
    return 0


def cmd_specs() -> int:
    from .memories import DEFAULT_SPECS

    for kind, spec in DEFAULT_SPECS.items():
        print(
            f"{kind.value:6s} {spec.name:24s} {spec.num_arrays:6d} arrays  "
            f"{spec.total_alus / 1e6:6.2f}M ALUs  {spec.capacity_mb:8.0f} MB  "
            f"{spec.clock_mhz:6.0f} MHz  MAC {spec.mac_cycles_2op} cyc"
        )
    return 0


def cmd_fault_demo(args: argparse.Namespace) -> int:
    """Run one combo under a fault plan and print its degraded report."""
    from .harness.faultdemo import run_fault_demo

    result = run_fault_demo(
        args.faults, scheduler=args.scheduler, combo=args.combo
    )
    print(result.report())
    if result.failed_jobs:
        print(
            f"{len(result.failed_jobs)} jobs failed under the plan",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_run(names: list[str], parallel: int | None = None) -> int:
    registry = _registry()
    if not names:
        print("run needs experiment names (or --faults PLAN)", file=sys.stderr)
        print("use 'python -m repro list'", file=sys.stderr)
        return 2
    if names == ["all"]:
        names = list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use 'python -m repro list'", file=sys.stderr)
        return 2
    if parallel is not None and len(names) > 1:
        from .harness.experiments import run_experiment_grid

        start = time.time()
        results = run_experiment_grid(names, max_workers=parallel or None)
        for name, report in results:
            print(report)
            print(f"[{name}]\n")
        print(f"[{len(names)} experiments: {time.time() - start:.1f}s total]")
        return 0
    for name in names:
        start = time.time()
        report = registry[name]()
        print(report)
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Time the pinned perf suite and write ``BENCH_<date>.json``."""
    import json

    from .harness.bench import (
        check_cache_health,
        check_regression,
        run_bench,
        write_bench_json,
    )

    payload = run_bench(
        quick=args.quick, include_baseline=not args.no_baseline
    )
    width = max(len(name) for name in payload["targets"])
    for name, entry in payload["targets"].items():
        line = (
            f"{name.ljust(width)}  {entry['wall_s']:8.3f}s  "
            f"{entry['events']:>9,.0f} events  "
            f"{entry['events_per_sec']:>12,.0f} ev/s"
        )
        baseline = payload.get("baseline") or {}
        if name in baseline:
            ratio = baseline[name]["wall_s"] / max(entry["wall_s"], 1e-12)
            line += f"  {ratio:5.2f}x vs baseline"
        print(line)
    totals = payload["totals"]
    summary = (
        f"{'TOTAL'.ljust(width)}  {totals['wall_s']:8.3f}s  "
        f"{totals['events']:>9,.0f} events  "
        f"{totals['events_per_sec']:>12,.0f} ev/s"
    )
    if "speedup_vs_baseline" in totals:
        summary += f"  {totals['speedup_vs_baseline']:5.2f}x vs baseline"
    print(summary)
    for cache in ("perfmodel.knee", "perfmodel.min_time"):
        stats = payload["caches"].get(cache, {})
        print(f"{cache} hit rate: {stats.get('hit_rate', 0.0):.1%}")
    path = write_bench_json(payload, args.out)
    print(f"wrote {path}")
    health = check_cache_health(payload)
    for failure in health:
        print(f"CACHE HEALTH: {failure}", file=sys.stderr)
    if health:
        return 1
    if args.check:
        reference = json.loads(open(args.check).read())
        failures = check_regression(payload, reference, args.max_regression)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression check vs {args.check}: ok")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one workload and print its per-device dispatch report."""
    from .apps import COMBOS, combo_jobs
    from .core.runtime import MLIMPRuntime
    from .gnn import DATASETS
    from .obs import write_results_json, write_trace_csv

    if args.target in COMBOS:
        from .harness.config import full_system
        from .memories import DEFAULT_SPECS

        runtime = MLIMPRuntime(full_system(), scheduler=args.scheduler)
        runtime.submit_many(combo_jobs(args.target, DEFAULT_SPECS))
        results = [runtime.run(label=f"{args.scheduler}/{args.target}")]
    elif args.target in DATASETS:
        from .core.predictor import OraclePredictor
        from .core.runtime import _SCHEDULERS
        from .harness.gnn import build_workload, run_workload

        if args.batches < 1:
            print("--batches must be at least 1", file=sys.stderr)
            return 2
        workload = build_workload(args.target, num_batches=args.batches)
        scheduler = _SCHEDULERS[args.scheduler](OraclePredictor())
        summary = run_workload(workload, scheduler)
        results = summary.results
    else:
        known = sorted(COMBOS) + sorted(DATASETS)
        print(
            f"unknown trace target {args.target!r}; "
            f"choose a combo or dataset: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2

    for run_index, result in enumerate(results):
        if len(results) > 1:
            print(f"-- batch {run_index} --")
        print(result.report())
        print()
    if args.json:
        write_results_json(results, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        write_trace_csv(results, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _predictor_eval_rows(predictor, jobs) -> list[tuple[str, int, float, float]]:
    """Per-memory (kind, n, r2, rel_rmse) of unit-compute predictions."""
    import numpy as np

    from .ml import r2_score, relative_rmse

    kinds = sorted(
        {kind for job in jobs for kind in job.profiles}, key=lambda k: k.value
    )
    rows = []
    for kind in kinds:
        actual = np.array([job.profile(kind).t_compute_unit for job in jobs])
        predicted = np.array(
            [predictor.predict_unit_compute(job, kind) for job in jobs]
        )
        rows.append(
            (
                kind.value,
                len(jobs),
                r2_score(np.log(actual), np.log(predicted)),
                relative_rmse(actual, predicted),
            )
        )
    return rows


def cmd_predictor(args: argparse.Namespace) -> int:
    """Train, evaluate, or export a reusable MLP predictor artifact."""
    from .core.predictor import MLPPredictor

    if args.action == "train":
        from .harness.gnn import build_workload

        workload = build_workload(args.dataset)
        predictor = MLPPredictor(epochs=args.epochs, seed=args.seed)
        predictor.train(workload.training_jobs)
        path = predictor.save(args.out)
        print(f"trained on {len(workload.training_jobs)} held-out "
              f"{args.dataset} SpMM jobs; wrote {path}")
        for kind, n, r2, rel in _predictor_eval_rows(
            predictor, workload.spmm_jobs()
        ):
            print(f"{kind:6s} n={n:4d}  log-R2 {r2:6.3f}  rel-RMSE {rel:6.3f}")
        return 0

    predictor = MLPPredictor.load(args.model)
    if args.action == "eval":
        from .harness.gnn import build_workload

        workload = build_workload(args.dataset)
        rows = _predictor_eval_rows(predictor, workload.spmm_jobs())
        worst = 0.0
        for kind, n, r2, rel in rows:
            print(f"{kind:6s} n={n:4d}  log-R2 {r2:6.3f}  rel-RMSE {rel:6.3f}")
            worst = max(worst, rel)
        if args.max_rel_rmse is not None and worst > args.max_rel_rmse:
            print(
                f"FAIL: worst rel-RMSE {worst:.3f} exceeds the "
                f"--max-rel-rmse {args.max_rel_rmse} gate",
                file=sys.stderr,
            )
            return 1
        return 0

    # export: summarise the artifact; --out re-writes the canonical
    # JSON (byte-identical for an untouched artifact).
    state = predictor.to_dict()
    kinds = sorted(state.get("cycle_models", {}))
    print(
        f"mlimp-predictor v{state['version']}  "
        f"hidden={tuple(state['hidden'])}  epochs={state['epochs']}  "
        f"seed={state['seed']}"
    )
    print(
        f"features: {state['feature_schema']['n_features']} "
        f"({state['feature_schema']['transform']})"
    )
    print(f"cycle models: {', '.join(kinds) if kinds else 'none (untrained)'}")
    if args.out:
        path = predictor.save(args.out)
        print(f"wrote {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Open-system serving run: arrivals, admission, per-tenant SLOs."""
    import json

    from .faults.plan import FaultPlan
    from .harness.config import full_system, gnn_system
    from .serving import (
        PoissonArrivals,
        ServingRuntime,
        Tenant,
        TraceArrivals,
    )

    if args.tenants < 1:
        print("--tenants must be at least 1", file=sys.stderr)
        return 2
    if args.slo <= 0:
        print("--slo must be positive (milliseconds)", file=sys.stderr)
        return 2
    if args.arrivals == "poisson":
        tenant_names = tuple(f"tenant-{i}" for i in range(args.tenants))
        process = PoissonArrivals(
            rate=args.rate,
            horizon=args.horizon,
            seed=args.seed,
            tenants=tenant_names,
        )
    else:
        if not args.trace_file:
            print("--arrivals trace needs --trace-file PATH", file=sys.stderr)
            return 2
        process = TraceArrivals(path=args.trace_file, seed=args.seed)
        tenant_names = tuple(
            sorted({str(e["tenant"]) for e in process.entries()})
        )
        if not tenant_names:
            print(f"trace {args.trace_file} has no arrivals", file=sys.stderr)
            return 2
    # Earlier tenants get higher weights (a deliberate asymmetry so the
    # weighted-fair release is visible in the report).
    tenants = [
        Tenant(
            name,
            weight=float(len(tenant_names) - i),
            queue_limit=args.queue_limit,
        )
        for i, name in enumerate(tenant_names)
    ]
    faults = FaultPlan.load(args.faults) if args.faults else None
    system = gnn_system() if args.system == "gnn" else full_system()
    predictor = None
    if args.predictor == "online":
        from .core.predictor import OnlinePredictor

        predictor = OnlinePredictor(seed=args.seed)
    elif args.predictor != "oracle":
        from .core.predictor import MLPPredictor

        predictor = MLPPredictor.load(args.predictor)
    runtime = ServingRuntime(
        system,
        scheduler=args.scheduler,
        max_backlog=args.max_backlog,
        predictor=predictor,
    )
    serving = runtime.serve(
        process,
        tenants=tenants,
        slo_s=args.slo * 1e-3,
        faults=faults,
        label=f"{args.scheduler}/serve",
        admission=args.admission,
        admission_margin=args.admission_margin,
    )
    # The report itself carries the admission line and the predictor
    # lifecycle counters now -- in both the text and the JSON forms.
    print(serving.report)
    if args.json:
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(serving.report.as_dict(), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Cluster serving run: placement, sharded node sims, merged SLOs."""
    import json

    from .cluster import ClusterRuntime, ClusterSpec, InterconnectSpec, NodeFault
    from .faults.plan import FaultPlan
    from .harness.config import full_system, gnn_system
    from .serving import PoissonArrivals, Tenant

    if args.nodes < 1:
        print("--nodes must be at least 1", file=sys.stderr)
        return 2
    if args.tenants < 1:
        print("--tenants must be at least 1", file=sys.stderr)
        return 2
    if args.slo <= 0:
        print("--slo must be positive (milliseconds)", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2
    system = gnn_system() if args.system == "gnn" else full_system()
    interconnect = InterconnectSpec(contention=args.contention)
    node_names = [f"node-{i}" for i in range(args.nodes)]
    if args.node_spec:
        scales = {name: 1.0 for name in node_names}
        for entry in args.node_spec:
            name, sep, value = entry.rpartition(":")
            try:
                if not sep:
                    raise ValueError
                scale = float(value)
            except ValueError:
                print(
                    f"--node-spec wants NAME:SCALE, got {entry!r}",
                    file=sys.stderr,
                )
                return 2
            if name not in scales:
                print(
                    f"--node-spec names unknown node {name!r}; "
                    f"nodes are {', '.join(node_names)}",
                    file=sys.stderr,
                )
                return 2
            if scale <= 0:
                print(
                    f"--node-spec scale must be positive, got {entry!r}",
                    file=sys.stderr,
                )
                return 2
            scales[name] = scale
        spec = ClusterSpec.heterogeneous(
            scales, system=system, interconnect=interconnect
        )
    else:
        spec = ClusterSpec.homogeneous(
            args.nodes, system=system, interconnect=interconnect
        )
    node_faults = []
    for entry in args.fail_node or []:
        name, sep, when = entry.rpartition(":")
        try:
            if not sep:
                raise ValueError
            node_faults.append(NodeFault(node=name, time=float(when)))
        except ValueError:
            print(
                f"--fail-node wants NODE:SECONDS, got {entry!r}",
                file=sys.stderr,
            )
            return 2
        if name not in spec.names:
            print(
                f"--fail-node names unknown node {name!r}; "
                f"nodes are {', '.join(spec.names)}",
                file=sys.stderr,
            )
            return 2
    tenant_names = tuple(f"tenant-{i}" for i in range(args.tenants))
    process = PoissonArrivals(
        rate=args.rate,
        horizon=args.horizon,
        seed=args.seed,
        tenants=tenant_names,
    )
    # Same deliberate weight asymmetry as `serve`.
    tenants = [
        Tenant(
            name,
            weight=float(len(tenant_names) - i),
            queue_limit=args.queue_limit,
        )
        for i, name in enumerate(tenant_names)
    ]
    faults = FaultPlan.load(args.faults) if args.faults else None
    runtime = ClusterRuntime(
        spec,
        scheduler=args.scheduler,
        placement=args.placement,
        max_backlog=args.max_backlog,
    )
    result = runtime.serve(
        process,
        tenants=tenants,
        slo_s=args.slo * 1e-3,
        faults=faults,
        node_faults=tuple(node_faults),
        shards=args.shards,
        label=f"{args.scheduler}/cluster",
        admission=args.admission,
        admission_margin=args.admission_margin,
    )
    print(result.report)
    stats = result.stats
    print(
        f"placement[{stats.placement}]  handoffs {stats.handoffs} "
        f"({stats.handoff_bytes / 1e6:.1f} MB)  replicas {stats.replicas} "
        f"({stats.replica_bytes / 1e6:.1f} MB)  lost {stats.total_lost}  "
        f"throughput {result.completed_per_sec:,.0f} jobs/s"
    )
    if stats.contention != "none":
        queued = [d for d in stats.queue_delays if d > 0]
        print(
            f"contention[{stats.contention}]  transfers "
            f"{len(stats.queue_delays)}  queued {len(queued)} "
            f"({sum(queued) * 1e6:.1f} us total)  peak in-flight "
            f"{stats.peak_inflight_bytes / 1e6:.1f} MB"
        )
    if stats.migrations:
        print(
            f"migrations {stats.migrations} "
            f"({stats.migration_bytes / 1e6:.1f} MB) off dying nodes"
        )
    if args.json:
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Trace-replay horizon run: windows, autoscaling, checkpointing."""
    import json

    from .harness.replay import ReplayConfig, resume_replay, run_replay

    if args.halt_after is not None:
        if args.halt_after < 1:
            print("--halt-after must be at least 1", file=sys.stderr)
            return 2
        if not args.checkpoint:
            print("--halt-after needs --checkpoint PATH", file=sys.stderr)
            return 2
    try:
        if args.resume:
            payload = resume_replay(
                args.resume,
                checkpoint_path=args.checkpoint,
                halt_after=args.halt_after,
            )
        else:
            config = ReplayConfig(
                seed=args.seed,
                rate=args.rate,
                windows=args.windows,
                window_s=args.window_ms * 1e-3,
                tenants=args.tenants,
                slo_s=args.slo * 1e-3,
                scheduler=args.scheduler,
                system=args.system,
                queue_limit=args.queue_limit,
                max_backlog=args.max_backlog,
                admission=args.admission,
                admission_margin=args.admission_margin,
                autoscale=args.autoscale,
                max_scale=args.max_scale,
                nodes=args.nodes,
                placement=args.placement,
            )
            payload = run_replay(
                config,
                checkpoint_path=args.checkpoint,
                halt_after=args.halt_after,
            )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if payload is None:
        print(f"halted after {args.halt_after} window(s); "
              f"checkpoint -> {args.checkpoint}")
        print(f"resume with: python -m repro replay --resume {args.checkpoint}")
        return 0
    print(
        f"{'win':>3s} {'scale':>5s} {'offered':>8s} {'done':>8s} "
        f"{'shed':>6s} {'pred':>6s} {'attain':>7s} {'util':>5s} {'queue':>6s}"
    )
    for row in payload["windows"]:
        print(
            f"{row['window']:3d} {row['scale']:5d} {row['offered']:8d} "
            f"{row['completed']:8d} {row['shed']:6d} "
            f"{row['shed_predicted']:6d} {row['slo_attainment']:6.1%} "
            f"{row['utilisation_max']:5.2f} {row['queue_depth_mean']:6.1f}"
        )
    for event in payload["autoscale_events"]:
        print(
            f"scale event: window {event['window']} "
            f"{event['from_scale']} -> {event['to_scale']} ({event['reason']})"
        )
    totals = payload["totals"]
    print(
        f"totals: offered {totals['offered']}  completed "
        f"{totals['completed']}  shed {totals['shed']} "
        f"(predicted {totals['shed_predicted']})  "
        f"attainment {totals['slo_attainment']:.1%}  "
        f"peak scale {totals['peak_scale']}"
    )
    if args.json:
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MLIMP (MICRO 2022) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("specs", help="print the Table III device summary")
    run = sub.add_parser(
        "run",
        help="run experiments by name (or 'all'), or --faults PLAN "
        "for a fault-injection demo",
    )
    run.add_argument("names", nargs="*", help="experiment names, or 'all'")
    run.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help="run a combo under the JSON fault plan and print the "
        "degraded-mode report (no experiment names needed)",
    )
    run.add_argument(
        "--scheduler",
        choices=["ljf", "adaptive", "global", "ewt"],
        default="adaptive",
        help="scheduler for the --faults demo (default: adaptive)",
    )
    run.add_argument(
        "--combo",
        default="A",
        help="multiprogramming combo for the --faults demo (default: A)",
    )
    run.add_argument(
        "--parallel",
        "-j",
        type=int,
        nargs="?",
        const=0,
        default=None,
        metavar="N",
        help="shard the grid across N worker processes "
        "(no N = one per CPU); results print in input order",
    )
    trace = sub.add_parser(
        "trace",
        help="run one workload and print the observability report",
    )
    trace.add_argument(
        "target", help="multiprogramming combo (A-G) or GNN dataset name"
    )
    trace.add_argument(
        "--scheduler",
        choices=["ljf", "adaptive", "global", "ewt"],
        default="global",
        help="scheduler to trace (default: global)",
    )
    trace.add_argument(
        "--batches",
        type=int,
        default=2,
        help="query batches for dataset targets (default: 2)",
    )
    trace.add_argument("--json", metavar="PATH", help="write the full run JSON")
    trace.add_argument("--csv", metavar="PATH", help="write the phase trace CSV")
    bench = sub.add_parser(
        "bench",
        help="time the pinned perf suite and write BENCH_<date>.json",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small inputs (collab dataset, two combos) for CI smoke runs",
    )
    bench.add_argument(
        "--out", metavar="PATH", default=None,
        help="output path (default: BENCH_<date>.json in the CWD)",
    )
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the uncached/scalar reference pass (halves runtime, "
        "drops the speedup_vs_baseline field)",
    )
    bench.add_argument(
        "--check", metavar="PATH", default=None,
        help="compare events/sec against a previous BENCH json; "
        "exit 1 on regression beyond --max-regression",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRAC",
        help="allowed fractional events/sec drop for --check (default 0.30)",
    )
    serve = sub.add_parser(
        "serve",
        help="open-system serving run: timed arrivals, multi-tenant "
        "admission, per-tenant SLO report",
    )
    serve.add_argument(
        "--arrivals",
        choices=["poisson", "trace"],
        default="poisson",
        help="arrival process (default: poisson)",
    )
    serve.add_argument(
        "--rate", type=float, default=50.0, metavar="JOBS_PER_S",
        help="aggregate Poisson arrival rate in jobs/second (default: 50)",
    )
    serve.add_argument(
        "--horizon", type=float, default=1.0, metavar="SECONDS",
        help="arrival-generation horizon; the run then drains (default: 1.0)",
    )
    serve.add_argument(
        "--tenants", type=int, default=3, metavar="N",
        help="tenant count for poisson arrivals (default: 3); trace "
        "arrivals name their own tenants",
    )
    serve.add_argument(
        "--slo", type=float, default=10.0, metavar="MS",
        help="per-tenant sojourn-time SLO in milliseconds (default: 10)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="arrival/workload seed; same seed -> byte-identical report",
    )
    serve.add_argument(
        "--scheduler",
        choices=["ljf", "adaptive", "global", "ewt"],
        default="adaptive",
        help="scheduling policy (default: adaptive)",
    )
    serve.add_argument(
        "--system",
        choices=["full", "gnn"],
        default="full",
        help="device set: full Table III or the scaled GNN system "
        "(default: full)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="per-tenant bounded-queue depth; overflow is shed (default: 64)",
    )
    serve.add_argument(
        "--max-backlog", type=int, default=32, metavar="N",
        help="released-but-undispatched jobs the policy may hold (default: 32)",
    )
    serve.add_argument(
        "--trace-file", metavar="PATH", default=None,
        help="JSON arrival trace for --arrivals trace",
    )
    serve.add_argument(
        "--faults", metavar="PLAN", default=None,
        help="inject a JSON fault plan into the serving run",
    )
    serve.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the SLO report as JSON",
    )
    serve.add_argument(
        "--predictor", metavar="WHICH", default="oracle",
        help="'oracle' (default), 'online' for a self-training "
        "OnlinePredictor fed by completion actuals, or the path of a "
        "saved predictor artifact from 'predictor train'",
    )
    serve.add_argument(
        "--admission",
        choices=["shed", "predictive"],
        default="shed",
        help="arrival-time admission: 'shed' (default) keeps the "
        "queue-overflow-only baseline; 'predictive' rejects jobs whose "
        "predicted sojourn would miss the tenant's SLO",
    )
    serve.add_argument(
        "--admission-margin", type=float, default=1.0, metavar="FACTOR",
        help="admit while predicted sojourn <= SLO x FACTOR; >1 admits "
        "optimistically, <1 leaves headroom (default: 1.0)",
    )
    cluster = sub.add_parser(
        "cluster",
        help="cluster serving run: two-level scheduling over N nodes, "
        "per-node sims sharded across processes, merged SLO report",
    )
    cluster.add_argument(
        "--nodes", type=int, default=2, metavar="N",
        help="homogeneous node count (default: 2)",
    )
    cluster.add_argument(
        "--node-spec", metavar="NAME:SCALE", action="append", default=None,
        help="size one node relative to the base system (repeatable), "
        "e.g. --node-spec node-1:2 --node-spec node-2:0.5; unnamed "
        "nodes stay at scale 1",
    )
    cluster.add_argument(
        "--contention",
        choices=["none", "shared"],
        default="none",
        help="interconnect model: 'none' prices each transfer "
        "independently (default, byte-identical to historical "
        "output); 'shared' queues transfers per directed link",
    )
    cluster.add_argument(
        "--rate", type=float, default=50.0, metavar="JOBS_PER_S",
        help="aggregate Poisson arrival rate in jobs/second (default: 50)",
    )
    cluster.add_argument(
        "--horizon", type=float, default=1.0, metavar="SECONDS",
        help="arrival-generation horizon; the run then drains (default: 1.0)",
    )
    cluster.add_argument(
        "--tenants", type=int, default=3, metavar="N",
        help="tenant count (default: 3)",
    )
    cluster.add_argument(
        "--slo", type=float, default=10.0, metavar="MS",
        help="per-tenant sojourn-time SLO in milliseconds (default: 10)",
    )
    cluster.add_argument(
        "--seed", type=int, default=0,
        help="arrival/workload seed; same seed -> byte-identical report",
    )
    cluster.add_argument(
        "--scheduler",
        choices=["ljf", "adaptive", "global", "ewt"],
        default="adaptive",
        help="per-node scheduling policy (default: adaptive)",
    )
    cluster.add_argument(
        "--placement",
        choices=["least-loaded", "feedback", "hash", "round-robin"],
        default="least-loaded",
        help="cluster-level placement policy (default: least-loaded; "
        "'feedback' biases least-loaded by per-node report feedback "
        "across replay windows, and equals it on a single run)",
    )
    cluster.add_argument(
        "--system",
        choices=["full", "gnn"],
        default="full",
        help="per-node device set: full Table III or the scaled GNN "
        "system (default: full)",
    )
    cluster.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="per-tenant bounded-queue depth per node (default: 64)",
    )
    cluster.add_argument(
        "--max-backlog", type=int, default=32, metavar="N",
        help="released-but-undispatched jobs each node's policy may "
        "hold (default: 32)",
    )
    cluster.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="worker processes for the node simulations (capped at the "
        "node count; output is byte-identical either way; default: 1)",
    )
    cluster.add_argument(
        "--faults", metavar="PLAN", default=None,
        help="inject a JSON device-fault plan into every node",
    )
    cluster.add_argument(
        "--fail-node", metavar="NODE:SECONDS", action="append", default=None,
        help="lose a whole node at a point in time (repeatable), "
        "e.g. --fail-node node-1:0.5",
    )
    cluster.add_argument(
        "--admission",
        choices=["shed", "predictive"],
        default="shed",
        help="per-node arrival-time admission: 'shed' (default) or "
        "'predictive' (each node gates on its own predicted sojourn)",
    )
    cluster.add_argument(
        "--admission-margin", type=float, default=1.0, metavar="FACTOR",
        help="admit while predicted sojourn <= SLO x FACTOR (default: 1.0)",
    )
    cluster.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the merged cluster report as JSON",
    )
    replay = sub.add_parser(
        "replay",
        help="trace-replay horizon benchmark: windows of seeded "
        "arrivals, between-window autoscaling, exact checkpoint/resume",
    )
    replay.add_argument(
        "--windows", type=int, default=6, metavar="N",
        help="replay windows to simulate (default: 6)",
    )
    replay.add_argument(
        "--window-ms", type=float, default=2.0, metavar="MS",
        help="arrival horizon of each window in milliseconds; every "
        "window drains to completion (default: 2.0)",
    )
    replay.add_argument(
        "--rate", type=float, default=2e6, metavar="JOBS_PER_S",
        help="aggregate Poisson arrival rate (default: 2e6 -- "
        "overloads the scale-1 gnn pool)",
    )
    replay.add_argument(
        "--tenants", type=int, default=3, metavar="N",
        help="tenant count (default: 3)",
    )
    replay.add_argument(
        "--slo", type=float, default=0.1, metavar="MS",
        help="per-tenant sojourn SLO in milliseconds (default: 0.1)",
    )
    replay.add_argument(
        "--seed", type=int, default=20,
        help="base seed; window w replays with a seed derived from "
        "(seed, w), so any window is reproducible in isolation",
    )
    replay.add_argument(
        "--scheduler",
        choices=["ljf", "adaptive", "global", "ewt"],
        default="adaptive",
        help="per-window scheduling policy (default: adaptive)",
    )
    replay.add_argument(
        "--system",
        choices=["full", "gnn"],
        default="gnn",
        help="scale-1 device set (default: gnn)",
    )
    replay.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help="per-tenant bounded-queue depth (default: 32)",
    )
    replay.add_argument(
        "--max-backlog", type=int, default=16, metavar="N",
        help="released-but-undispatched jobs the policy may hold "
        "(default: 16)",
    )
    replay.add_argument(
        "--admission",
        choices=["shed", "predictive"],
        default="shed",
        help="arrival-time admission for every window (default: shed)",
    )
    replay.add_argument(
        "--admission-margin", type=float, default=1.0, metavar="FACTOR",
        help="admit while predicted sojourn <= SLO x FACTOR (default: 1.0)",
    )
    replay.add_argument(
        "--autoscale", action="store_true",
        help="resize the pool between windows from the finished "
        "window's utilisation / queue-depth / shed signals",
    )
    replay.add_argument(
        "--max-scale", type=int, default=4, metavar="N",
        help="autoscaler ceiling as a multiple of the base pool "
        "(default: 4)",
    )
    replay.add_argument(
        "--nodes", type=int, default=0, metavar="N",
        help="replay over an N-node cluster instead of one node; the "
        "autoscaled system is stamped onto every node (default: 0)",
    )
    replay.add_argument(
        "--placement",
        choices=["least-loaded", "feedback", "hash", "round-robin"],
        default="least-loaded",
        help="cluster placement for --nodes > 0 (default: least-loaded; "
        "'feedback' learns per-node weights across windows and rides "
        "the checkpoint)",
    )
    replay.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="where --halt-after writes the mid-replay state",
    )
    replay.add_argument(
        "--halt-after", type=int, default=None, metavar="N",
        help="stop after N windows and write --checkpoint; resuming "
        "reproduces the uninterrupted output byte for byte",
    )
    replay.add_argument(
        "--resume", metavar="PATH", default=None,
        help="continue from a checkpoint file (ignores the trace "
        "flags; the checkpoint carries the full config)",
    )
    replay.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the replay payload as JSON",
    )
    predictor = sub.add_parser(
        "predictor",
        help="train, evaluate, or export a reusable MLP predictor "
        "artifact (JSON weights + scalers + feature schema)",
    )
    predictor.add_argument(
        "action",
        choices=["train", "eval", "export"],
        help="train on a dataset's held-out SpMM jobs, eval a saved "
        "artifact against a dataset, or summarise/re-write an artifact",
    )
    predictor.add_argument(
        "--dataset", default="collab",
        help="GNN dataset for train/eval (default: collab)",
    )
    predictor.add_argument(
        "--epochs", type=int, default=250,
        help="training epochs per stage (default: 250)",
    )
    predictor.add_argument(
        "--seed", type=int, default=0,
        help="training seed; same seed -> byte-identical artifact",
    )
    predictor.add_argument(
        "--model", metavar="PATH", default=None,
        help="saved artifact for eval/export",
    )
    predictor.add_argument(
        "--out", metavar="PATH", default="predictor.json",
        help="artifact output path for train/export (default: "
        "predictor.json)",
    )
    predictor.add_argument(
        "--max-rel-rmse", type=float, default=None, metavar="BOUND",
        help="eval gate: exit 1 if any memory's relative RMSE exceeds "
        "BOUND",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "specs":
        return cmd_specs()
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "cluster":
        return cmd_cluster(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "predictor":
        if args.action in {"eval", "export"} and not args.model:
            print(f"predictor {args.action} needs --model PATH", file=sys.stderr)
            return 2
        return cmd_predictor(args)
    if args.faults is not None:
        if args.names:
            print(
                "--faults runs the fault demo; experiment names are not "
                "combinable with it",
                file=sys.stderr,
            )
            return 2
        return cmd_fault_demo(args)
    return cmd_run(args.names, parallel=args.parallel)


if __name__ == "__main__":
    raise SystemExit(main())
