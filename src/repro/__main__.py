"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig16            # one experiment
    python -m repro run fig13 fig14      # several
    python -m repro run all              # everything (minutes)
    python -m repro specs                # Table III device summary
"""

from __future__ import annotations

import argparse
import sys
import time


def _registry() -> dict:
    from .harness.ablations import ABLATIONS
    from .harness.experiments import EXPERIMENTS

    registry = dict(EXPERIMENTS)
    registry.update({f"ablation-{name}": fn for name, fn in ABLATIONS.items()})
    return registry


def cmd_list() -> int:
    registry = _registry()
    width = max(len(name) for name in registry)
    for name, fn in registry.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{name.ljust(width)}  {doc}")
    return 0


def cmd_specs() -> int:
    from .memories import DEFAULT_SPECS

    for kind, spec in DEFAULT_SPECS.items():
        print(
            f"{kind.value:6s} {spec.name:24s} {spec.num_arrays:6d} arrays  "
            f"{spec.total_alus / 1e6:6.2f}M ALUs  {spec.capacity_mb:8.0f} MB  "
            f"{spec.clock_mhz:6.0f} MHz  MAC {spec.mac_cycles_2op} cyc"
        )
    return 0


def cmd_run(names: list[str]) -> int:
    registry = _registry()
    if names == ["all"]:
        names = list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use 'python -m repro list'", file=sys.stderr)
        return 2
    for name in names:
        start = time.time()
        report = registry[name]()
        print(report)
        print(f"[{name}: {time.time() - start:.1f}s]\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MLIMP (MICRO 2022) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("specs", help="print the Table III device summary")
    run = sub.add_parser("run", help="run experiments by name (or 'all')")
    run.add_argument("names", nargs="+", help="experiment names, or 'all'")

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "specs":
        return cmd_specs()
    return cmd_run(args.names)


if __name__ == "__main__":
    raise SystemExit(main())
