"""Data-parallel application model (paper III-D1, III-F, Table II).

Each application is a wide-SIMD kernel in the IMP execution model: a
per-element DFG applied to a large element stream, cross-compiled for
every memory target with *deterministic* cycle counts ("for both
targets the latency of the compute kernels can be calculated
deterministically", Section IV) -- so the scheduler uses profiling
rather than the learned predictor (approach (b) of III-F: an
input-dependent number of jobs with a fixed loop count).

Device preference emerges from two axes the paper calls out:

* the instruction mix (bulk-bitwise kernels favour in-DRAM compute,
  multiply/transcendental-heavy kernels favour in-SRAM, dot-product
  kernels favour the ReRAM crossbar), and
* the working-set size: a dataset larger than a device's capacity
  forces ``n_iter`` load/compute rounds (Eq. 1), so multi-GB tables
  run in place in DRAM but thrash a 40 MB cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..core.job import Job, JobPerfProfile
from ..isa.compiler import CompiledKernel, compile_dfg
from ..isa.dfg import DFG
from ..memories.base import MemoryKind, MemorySpec

__all__ = ["AppSpec", "app_profile", "make_app_jobs"]

#: Fraction of a device an app iteration may occupy as its unit
#: allocation (leaves room for concurrent jobs).
_UNIT_CAP_FRACTION = 0.25


@dataclass(frozen=True)
class AppSpec:
    """One Table II application.

    ``total_elements`` is the whole input stream, split evenly over
    ``num_jobs`` MLIMP jobs; ``bytes_per_element`` sizes the resident
    working set (state the kernel keeps in memory per element).
    """

    name: str
    domain: str
    kernel: Callable[[], DFG]
    total_elements: int
    num_jobs: int
    bytes_per_element: int
    #: Sequential passes over the resident data (iterative algorithms
    #: like kmeans/streamcluster re-run the kernel on the same working
    #: set each iteration; single-pass streams leave this at 1).  The
    #: data-reuse opportunity is what replication exploits (III-C3).
    reuse_iterations: int = 1

    def __post_init__(self) -> None:
        if self.total_elements < 1 or self.num_jobs < 1:
            raise ValueError("elements and job count must be positive")
        if self.bytes_per_element < 1:
            raise ValueError("bytes_per_element must be positive")
        if self.reuse_iterations < 1:
            raise ValueError("reuse_iterations must be positive")

    @property
    def elements_per_job(self) -> int:
        return max(1, self.total_elements // self.num_jobs)

    @property
    def working_bytes_per_job(self) -> int:
        return self.elements_per_job * self.bytes_per_element


def app_profile(spec: MemorySpec, app: AppSpec, kernel: CompiledKernel) -> JobPerfProfile:
    """Ground-truth profile of one of the app's jobs on ``spec``."""
    if kernel.target is not spec.kind:
        raise ValueError("kernel compiled for a different target")
    elements = app.elements_per_job
    arrays_needed = max(1, math.ceil(app.working_bytes_per_job / spec.geometry.bytes))
    cap = max(1, int(spec.num_arrays * _UNIT_CAP_FRACTION))
    unit_arrays = min(arrays_needed, cap)
    n_iter = math.ceil(arrays_needed / unit_arrays)

    elements_per_iter = math.ceil(elements / n_iter)
    lanes = unit_arrays * spec.usable_lanes(None)  # streaming kernels pack fully
    waves = max(1, math.ceil(elements_per_iter / lanes))
    t_compute_unit = spec.seconds(
        waves * kernel.cycles_per_element * app.reuse_iterations
    )

    stream_bytes_per_iter = kernel.input_bytes_per_element * elements_per_iter
    t_load = spec.fill_seconds(stream_bytes_per_iter)
    # Data-parallel elements are independent: a bigger allocation
    # *partitions* the stream across more arrays (each element is
    # still loaded exactly once), unlike the GEMM/SpMM kernels whose
    # stationary operands must be *replicated*.  Only a per-partition
    # setup copy is charged.
    t_replica = spec.copy_seconds(stream_bytes_per_iter / max(1, waves))

    return JobPerfProfile(
        unit_arrays=unit_arrays,
        t_load=t_load,
        t_replica_unit=t_replica,
        t_compute_unit=t_compute_unit,
        waves_unit=waves,
        n_iter=n_iter,
        fill_bytes=float(stream_bytes_per_iter),
        compute_energy_j=kernel.compute_energy_j(elements) * app.reuse_iterations,
        vector_width=None,
    )


def make_app_jobs(
    app: AppSpec,
    specs: dict[MemoryKind, MemorySpec],
    prefix: str = "",
) -> list[Job]:
    """All MLIMP jobs of one application launch."""
    dfg = app.kernel()
    kernels = {kind: compile_dfg(dfg, spec) for kind, spec in specs.items()}
    jobs = []
    for i in range(app.num_jobs):
        profiles = {
            kind: app_profile(spec, app, kernels[kind])
            for kind, spec in specs.items()
        }
        jobs.append(
            Job(
                job_id=f"{prefix}{app.name}/{i}",
                kernel="app",
                profiles=profiles,
                tags={
                    "app": app.name,
                    "domain": app.domain,
                    "elements": app.elements_per_job,
                    "frontend_ops": kernels[next(iter(kernels))].frontend_ops,
                },
            )
        )
    return jobs
