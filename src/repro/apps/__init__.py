"""Data-parallel applications (Table II) and multiprogramming combos."""

from .base import AppSpec, app_profile, make_app_jobs
from .combos import COMBOS, combo_jobs, combo_names
from .library import APPLICATIONS, app, app_names

__all__ = [
    "AppSpec",
    "app_profile",
    "make_app_jobs",
    "COMBOS",
    "combo_jobs",
    "combo_names",
    "APPLICATIONS",
    "app",
    "app_names",
]
