"""Multiprogramming scenarios (Table II's combination columns A-G).

The paper launches sets of four applications together and schedules
their jobs across the in-memory devices; combinations were chosen to
exhibit different device preferences (e.g. A favours SRAM, F favours
DRAM+ReRAM).
"""

from __future__ import annotations

from ..core.job import Job
from ..memories.base import MemoryKind, MemorySpec
from .base import make_app_jobs
from .library import app

__all__ = ["COMBOS", "combo_jobs", "combo_names"]

#: Table II combination columns.
COMBOS: dict[str, tuple[str, ...]] = {
    "A": ("blackscholes", "fluidanimate", "streamcluster_a", "crypto"),
    "B": ("streamcluster_b", "backprop", "kmeans", "bitap"),
    "C": ("blackscholes", "fluidanimate", "db_bitmap", "db_scan"),
    "D": ("streamcluster_b", "backprop", "crypto", "db_bitmap"),
    "E": ("blackscholes", "streamcluster_a", "db_scan", "bitap"),
    "F": ("streamcluster_b", "kmeans", "crypto", "db_bitmap"),
    "G": ("fluidanimate", "backprop", "kmeans", "bitap"),
}


def combo_names() -> list[str]:
    return list(COMBOS)


def combo_jobs(name: str, specs: dict[MemoryKind, MemorySpec]) -> list[Job]:
    """All jobs of one multiprogramming scenario."""
    if name not in COMBOS:
        raise KeyError(f"unknown combination {name!r}; known: {combo_names()}")
    jobs: list[Job] = []
    for app_name in COMBOS[name]:
        jobs.extend(make_app_jobs(app(app_name), specs, prefix=f"{name}/"))
    return jobs
