"""The Table II application library.

Kernels are per-element SIMD DFGs whose instruction mixes follow the
published kernel characteristics of each benchmark:

* **Blackscholes** (Parsec, finance): the option-pricing formula --
  transcendental-heavy (exp2/log2/sqrt, divisions) on a small stream.
* **Fluidanimate** (Parsec, fluid dynamics): force computation --
  mixed multiply/add with a reciprocal square root per interaction.
* **Streamcluster** (Parsec, data mining): distance evaluations --
  MAC chains plus a min-reduction; two input sizes A (small) and B
  (large), as in the paper.
* **Backprop** (Rodinia, pattern recognition): layer updates -- MAC
  chains with a sigmoid (exp2-based).
* **Kmeans** (Rodinia, data mining): distance + assignment -- MAC
  chains, comparisons and selects.
* **Crypto** (SipHash): ARX rounds -- adds, xors and rotates over a
  large message stream (bulk ALU/bitwise).
* **DB**: search queries over a multi-GB table -- *bitmap index*
  variant (pure bulk bitwise) and *full scan* variant (compare and
  select), both far larger than any cache.
* **Bitap**: shift-and string search -- shift/AND/OR per character
  over a large text.
"""

from __future__ import annotations

from ..isa.dfg import DFG
from ..isa.ops import Op
from .base import AppSpec

__all__ = ["APPLICATIONS", "app", "app_names"]


def _chain(d: DFG, value: str, op: Op, count: int, other: str, stem: str) -> str:
    for i in range(count):
        value = d.node(f"{stem}{i}", op, value, other)
    return value


def _blackscholes() -> DFG:
    d = DFG("blackscholes")
    s = d.input("spot")
    k = d.input("strike")
    t = d.input("time")
    v = d.input("vol")
    ratio = d.node("ratio", Op.DIV, s, k)
    log_m = d.node("logm", Op.LOG2, ratio)
    var = d.node("var", Op.MUL, v, v)
    drift = d.node("drift", Op.MUL, var, t)
    sqrt_t = d.node("sqrtt", Op.SQRT, t)
    vol_t = d.node("volt", Op.MUL, v, sqrt_t)
    num = d.node("num", Op.ADD, log_m, drift)
    d1 = d.node("d1", Op.DIV, num, vol_t)
    d2 = d.node("d2", Op.SUB, d1, vol_t)
    # Polynomial CDF approximation for both d1 and d2.
    cdf1 = _chain(d, d1, Op.MUL, 3, d1, "c1m")
    cdf1 = d.node("c1e", Op.EXP2, cdf1)
    cdf2 = _chain(d, d2, Op.MUL, 3, d2, "c2m")
    cdf2 = d.node("c2e", Op.EXP2, cdf2)
    disc = d.node("disc", Op.EXP2, t)
    left = d.node("left", Op.MUL, s, cdf1)
    right0 = d.node("right0", Op.MUL, k, disc)
    right = d.node("right", Op.MUL, right0, cdf2)
    price = d.node("price", Op.SUB, left, right)
    d.output(price)
    return d


def _fluidanimate() -> DFG:
    d = DFG("fluidanimate")
    dx = d.input("dx")
    dy = d.input("dy")
    dz = d.input("dz")
    mass = d.input("mass")
    xx = d.node("xx", Op.MUL, dx, dx)
    yy = d.node("yy", Op.MUL, dy, dy)
    zz = d.node("zz", Op.MUL, dz, dz)
    s1 = d.node("s1", Op.ADD, xx, yy)
    dist2 = d.node("dist2", Op.ADD, s1, zz)
    dist = d.node("dist", Op.SQRT, dist2)
    inv = d.node("inv", Op.RECIP, dist)
    w = d.node("w", Op.MUL, inv, mass)
    fx = d.node("fx", Op.MUL, w, dx)
    fy = d.node("fy", Op.MUL, w, dy)
    fz = d.node("fz", Op.MUL, w, dz)
    acc1 = d.node("acc1", Op.ADD, fx, fy)
    acc = d.node("acc", Op.ADD, acc1, fz)
    clipped = d.node("clipped", Op.MIN, acc, mass)
    d.output(clipped)
    return d


def _streamcluster() -> DFG:
    d = DFG("streamcluster")
    point = d.input("point")
    center = d.input("center")
    best = d.input("best")
    diff = d.node("diff", Op.SUB, point, center)
    acc = d.node("m0", Op.MAC, diff, diff)
    for i in range(1, 64):  # 64-dimensional points (Parsec's default range)
        acc = d.node(f"m{i}", Op.MAC, acc, diff)
    better = d.node("better", Op.CMP, acc, best)
    chosen = d.node("chosen", Op.SELECT, better, acc)
    d.output(chosen)
    return d


def _backprop() -> DFG:
    d = DFG("backprop")
    x = d.input("x")
    w = d.input("w")
    grad = d.input("grad")
    acc = d.node("m0", Op.MAC, x, w)
    for i in range(1, 48):  # hidden-layer dot product (wide fan-in)
        acc = d.node(f"m{i}", Op.MAC, acc, w)
    act = d.node("act", Op.EXP2, acc)  # sigmoid core
    err = d.node("err", Op.SUB, act, grad)
    delta = d.node("delta", Op.MUL, err, act)
    upd = d.node("upd", Op.MAC, delta, x)
    d.output(upd)
    return d


def _kmeans() -> DFG:
    d = DFG("kmeans")
    point = d.input("point")
    centroid = d.input("centroid")
    best = d.input("best")
    diff = d.node("diff", Op.SUB, point, centroid)
    acc = d.node("m0", Op.MAC, diff, diff)
    for i in range(1, 34):  # kdd-cup feature dimensionality (Rodinia)
        acc = d.node(f"m{i}", Op.MAC, acc, diff)
    nearer = d.node("nearer", Op.MIN, acc, best)
    label = d.node("label", Op.CMP, nearer, best)
    out = d.node("out", Op.SELECT, label, nearer)
    d.output(out)
    return d


def _crypto() -> DFG:
    """SipHash-style ARX rounds (add / rotate / xor)."""
    d = DFG("crypto")
    v0 = d.input("v0")
    v1 = d.input("v1")
    msg = d.input("msg")
    a, b = v0, v1
    for i in range(4):  # SipRound x4
        a = d.node(f"a{i}", Op.ADD, a, b)
        b = d.node(f"r{i}", Op.ROTL, b, a)
        b = d.node(f"x{i}", Op.XOR, b, a)
        a = d.node(f"s{i}", Op.ADD, a, msg)
    tag = d.node("tag", Op.XOR, a, b)
    d.output(tag)
    return d


def _db_bitmap() -> DFG:
    """Bitmap-index query: AND/OR/NOT over index bitmaps."""
    d = DFG("db_bitmap")
    b0 = d.input("idx0")
    b1 = d.input("idx1")
    b2 = d.input("idx2")
    n1 = d.node("n1", Op.NOT, b1)
    a1 = d.node("a1", Op.AND, b0, n1)
    o1 = d.node("o1", Op.OR, a1, b2)
    a2 = d.node("a2", Op.AND, o1, b0)
    hit = d.node("hit", Op.AND, a2, b2)
    d.output(hit)
    return d


def _db_scan() -> DFG:
    """Full-scan predicate: range compare and select per row."""
    d = DFG("db_scan")
    value = d.input("value")
    lo = d.const("lo")
    hi = d.const("hi")
    ge = d.node("ge", Op.CMP, value, lo)
    le = d.node("le", Op.CMP, hi, value)
    both = d.node("both", Op.AND, ge, le)
    out = d.node("out", Op.SELECT, both, value)
    d.output(out)
    return d


def _bitap() -> DFG:
    """Shift-and approximate string search step."""
    d = DFG("bitap")
    state = d.input("state")
    mask = d.input("charmask")
    shifted = d.node("sh", Op.SHL, state, mask)
    anded = d.node("an", Op.AND, shifted, mask)
    ored = d.node("or", Op.OR, anded, state)
    shifted2 = d.node("sh2", Op.SHR, ored, mask)
    match = d.node("match", Op.AND, ored, shifted2)
    d.output(match)
    return d


_MI = 1 << 20

#: Table II applications.  Streamcluster appears with two input sizes
#: and DB with two algorithms, exactly as in the paper.
APPLICATIONS: dict[str, AppSpec] = {
    "blackscholes": AppSpec(
        "blackscholes", "finance", _blackscholes,
        total_elements=4 * _MI, num_jobs=16, bytes_per_element=16,
    ),
    "fluidanimate": AppSpec(
        "fluidanimate", "fluid dynamics", _fluidanimate,
        total_elements=8 * _MI, num_jobs=16, bytes_per_element=24,
        reuse_iterations=20,  # timesteps over resident particles
    ),
    "streamcluster_a": AppSpec(
        "streamcluster_a", "data mining", _streamcluster,
        total_elements=2 * _MI, num_jobs=8, bytes_per_element=16,
        reuse_iterations=20,
    ),
    "streamcluster_b": AppSpec(
        "streamcluster_b", "data mining", _streamcluster,
        total_elements=32 * _MI, num_jobs=16, bytes_per_element=16,
        reuse_iterations=20,
    ),
    "backprop": AppSpec(
        "backprop", "pattern recognition", _backprop,
        total_elements=8 * _MI, num_jobs=16, bytes_per_element=8,
        reuse_iterations=30,  # training epochs over resident samples
    ),
    "kmeans": AppSpec(
        "kmeans", "data mining", _kmeans,
        total_elements=16 * _MI, num_jobs=16, bytes_per_element=12,
        reuse_iterations=20,  # Lloyd iterations over resident points
    ),
    "crypto": AppSpec(
        "crypto", "message authentication", _crypto,
        total_elements=256 * _MI, num_jobs=16, bytes_per_element=8,
    ),
    "db_bitmap": AppSpec(
        "db_bitmap", "database", _db_bitmap,
        total_elements=1024 * _MI, num_jobs=16, bytes_per_element=4,
    ),
    "db_scan": AppSpec(
        "db_scan", "database", _db_scan,
        total_elements=512 * _MI, num_jobs=16, bytes_per_element=8,
    ),
    "bitap": AppSpec(
        "bitap", "string search", _bitap,
        total_elements=512 * _MI, num_jobs=16, bytes_per_element=4,
    ),
}


def app_names() -> list[str]:
    return list(APPLICATIONS)


def app(name: str) -> AppSpec:
    try:
        return APPLICATIONS[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; known: {app_names()}") from None
