"""Operation set of the MLIMP common programming interface.

The paper (III-B1) takes the *intersection* of arithmetic operations
supported by the in-SRAM, in-DRAM and in-ReRAM proposals: integer
addition, subtraction, multiplication, division, comparison, moves and
simple transcendentals (e.g. ``exp2``), plus the bulk bitwise
operations that motivate in-DRAM computing.  Each abstract operation
is expanded into target micro-operations by the per-memory lowering
rules in :mod:`repro.isa.lowering`.
"""

from __future__ import annotations

import enum

__all__ = ["Op", "OpClass", "OP_CLASSES", "COMMUTATIVE_OPS"]


class Op(enum.Enum):
    """Frontend operations expressible in a SIMD data-flow graph."""

    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MAC = "mac"  # fused multiply-accumulate
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    # Comparison / selection
    CMP = "cmp"
    SELECT = "select"
    # Data movement
    MOV = "mov"
    LOAD = "load"
    STORE = "store"
    # Bitwise
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    ROTL = "rotl"
    # Transcendental (lowered to shifts/LUTs/polynomials per target)
    EXP2 = "exp2"
    LOG2 = "log2"
    SQRT = "sqrt"
    RECIP = "recip"
    # Cross-lane
    REDUCE_ADD = "reduce_add"
    LUT = "lut"  # table lookup (peripheral LUT on ReRAM)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OpClass(enum.Enum):
    """Coarse grouping used for instruction-mix reporting."""

    ARITH = "arith"
    MULDIV = "muldiv"
    BITWISE = "bitwise"
    MOVE = "move"
    TRANSCENDENTAL = "transcendental"
    REDUCTION = "reduction"
    MEMORY = "memory"


OP_CLASSES: dict[Op, OpClass] = {
    Op.ADD: OpClass.ARITH,
    Op.SUB: OpClass.ARITH,
    Op.MIN: OpClass.ARITH,
    Op.MAX: OpClass.ARITH,
    Op.ABS: OpClass.ARITH,
    Op.CMP: OpClass.ARITH,
    Op.SELECT: OpClass.ARITH,
    Op.MUL: OpClass.MULDIV,
    Op.DIV: OpClass.MULDIV,
    Op.MAC: OpClass.MULDIV,
    Op.RECIP: OpClass.MULDIV,
    Op.AND: OpClass.BITWISE,
    Op.OR: OpClass.BITWISE,
    Op.XOR: OpClass.BITWISE,
    Op.NOT: OpClass.BITWISE,
    Op.SHL: OpClass.BITWISE,
    Op.SHR: OpClass.BITWISE,
    Op.ROTL: OpClass.BITWISE,
    Op.MOV: OpClass.MOVE,
    Op.LOAD: OpClass.MEMORY,
    Op.STORE: OpClass.MEMORY,
    Op.EXP2: OpClass.TRANSCENDENTAL,
    Op.LOG2: OpClass.TRANSCENDENTAL,
    Op.SQRT: OpClass.TRANSCENDENTAL,
    Op.LUT: OpClass.TRANSCENDENTAL,
    Op.REDUCE_ADD: OpClass.REDUCTION,
}

#: Operations whose operands may be swapped by the compiler.
COMMUTATIVE_OPS = frozenset({Op.ADD, Op.MUL, Op.MIN, Op.MAX, Op.AND, Op.OR, Op.XOR})
