"""SIMD data-flow graphs: the common programming frontend.

The paper adopts the SIMD DFG of IMP [26] as the portable kernel
representation: a kernel is a small acyclic graph of element-wise
operations applied to every SIMD lane, extracted from general code or
dumped from tensor frameworks, then cross-compiled to each in-memory
ISA (paper Fig. 6).

:class:`DFG` here is a deliberately simple SSA-style graph: nodes are
operations or inputs/constants, edges are value dependencies.  It
validates acyclicity, offers topological iteration, an operation
histogram (the "instruction mix" that drives device preference), and a
builder API convenient for writing kernels by hand.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from .ops import Op

__all__ = ["DFGNode", "DFG", "DFGError"]


class DFGError(ValueError):
    """Raised for malformed data-flow graphs."""


@dataclass(frozen=True)
class DFGNode:
    """One SSA value in the graph.

    ``op is None`` marks an external input (a kernel argument or a
    constant); otherwise ``inputs`` name the producing nodes.
    """

    name: str
    op: Op | None
    inputs: tuple[str, ...] = ()
    bits: int = 16

    @property
    def is_input(self) -> bool:
        return self.op is None


@dataclass
class DFG:
    """A SIMD kernel as an acyclic data-flow graph."""

    name: str
    _nodes: dict[str, DFGNode] = field(default_factory=dict)
    _outputs: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Builder API.
    # ------------------------------------------------------------------
    def input(self, name: str, bits: int = 16) -> str:
        """Declare a kernel input lane value; returns its name."""
        self._add(DFGNode(name=name, op=None, bits=bits))
        return name

    def const(self, name: str, bits: int = 16) -> str:
        """Declare a constant (modelled identically to an input)."""
        return self.input(name, bits=bits)

    def node(self, name: str, op: Op, *inputs: str, bits: int = 16) -> str:
        """Add an operation node; returns its name for chaining."""
        for dep in inputs:
            if dep not in self._nodes:
                raise DFGError(f"{self.name}: node {name!r} references unknown {dep!r}")
        self._add(DFGNode(name=name, op=op, inputs=tuple(inputs), bits=bits))
        return name

    def output(self, name: str) -> None:
        """Mark a node as a kernel output."""
        if name not in self._nodes:
            raise DFGError(f"{self.name}: unknown output {name!r}")
        if name not in self._outputs:
            self._outputs.append(name)

    def _add(self, node: DFGNode) -> None:
        if node.name in self._nodes:
            raise DFGError(f"{self.name}: duplicate node {node.name!r}")
        if node.bits <= 0:
            raise DFGError(f"{self.name}: node {node.name!r} has non-positive width")
        self._nodes[node.name] = node

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, DFGNode]:
        return dict(self._nodes)

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def inputs(self) -> tuple[str, ...]:
        return tuple(n.name for n in self._nodes.values() if n.is_input)

    def __len__(self) -> int:
        return len(self._nodes)

    def operation_nodes(self) -> list[DFGNode]:
        return [n for n in self._nodes.values() if not n.is_input]

    def topological(self) -> Iterator[DFGNode]:
        """Yield nodes in dependency order; raises on cycles.

        The builder API cannot create cycles (inputs must already
        exist), but graphs can also be constructed directly, so this
        validates.
        """
        in_degree = {name: len(node.inputs) for name, node in self._nodes.items()}
        consumers: dict[str, list[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.inputs:
                if dep not in self._nodes:
                    raise DFGError(f"{self.name}: dangling edge {dep!r} -> {node.name!r}")
                consumers[dep].append(node.name)
        ready = [name for name, deg in in_degree.items() if deg == 0]
        emitted = 0
        while ready:
            name = ready.pop()
            emitted += 1
            yield self._nodes[name]
            for consumer in consumers[name]:
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    ready.append(consumer)
        if emitted != len(self._nodes):
            raise DFGError(f"{self.name}: cycle detected")

    def validate(self) -> None:
        """Check the graph is acyclic and outputs exist."""
        for _ in self.topological():
            pass
        if not self._outputs:
            raise DFGError(f"{self.name}: kernel has no outputs")

    def op_histogram(self) -> Counter[Op]:
        """Instruction mix of the kernel (frontend ops, pre-lowering)."""
        return Counter(node.op for node in self.operation_nodes() if node.op is not None)

    def depth(self) -> int:
        """Longest dependency chain (critical path in frontend ops)."""
        level: dict[str, int] = {}
        for node in self.topological():
            if node.is_input:
                level[node.name] = 0
            else:
                level[node.name] = 1 + max((level[d] for d in node.inputs), default=0)
        return max(level.values(), default=0)
