"""Legalisation of frontend ops into target-native micro-op bags.

:func:`lower_op` expands one frontend operation into the multiset of
*native* micro-operations the target executes, using the same
expansion rules that :func:`repro.isa.timing.op_cycles` costs.  This
is exposed separately so tests and the instruction-mix reports can see
*what* a target executes, not just how long it takes.
"""

from __future__ import annotations

from collections import Counter

from ..memories.base import MemoryKind
from .ops import Op
from .timing import LoweringError, _EXPANSIONS, is_native

__all__ = ["lower_op", "lower_histogram", "LoweringError"]

_MAX_DEPTH = 8


def lower_op(kind: MemoryKind, op: Op, _depth: int = 0) -> Counter[Op]:
    """Expand ``op`` into native micro-ops for ``kind``.

    Native ops map to themselves; ``LOAD``/``STORE`` are memory-system
    events and lower to an empty bag.
    """
    if op in (Op.LOAD, Op.STORE):
        return Counter()
    if _depth > _MAX_DEPTH:
        raise LoweringError(f"lowering of {op} on {kind} does not terminate")
    if is_native(kind, op):
        return Counter({op: 1})
    expansion = _EXPANSIONS[kind].get(op)
    if expansion is None:
        raise LoweringError(f"{op} is not supported on {kind} and has no lowering")
    bag: Counter[Op] = Counter()
    for sub_op, count in expansion:
        sub_bag = lower_op(kind, sub_op, _depth + 1)
        for native_op, n in sub_bag.items():
            bag[native_op] += n * count
    return bag


def lower_histogram(kind: MemoryKind, histogram: Counter[Op]) -> Counter[Op]:
    """Lower a whole frontend instruction mix to native micro-ops."""
    lowered: Counter[Op] = Counter()
    for op, count in histogram.items():
        for native_op, n in lower_op(kind, op).items():
            lowered[native_op] += n * count
    return lowered
