"""Cross-compiler: SIMD DFG -> per-target compiled kernels.

Compilation in MLIMP is static and deterministic (paper III-E: "compute
time for a basic block of most in-memory workloads can be
deterministically calculated at compile time").  The compiler walks
the kernel DFG once per target, legalises every node, and records:

* cycles per element (one SIMD lane executing the whole kernel once),
* the lowered native-op histogram (instruction mix),
* dynamic energy per element,
* per-element operand footprint (bytes moved into the compute region).

The resulting :class:`CompiledKernel` is the unit the scheduler's
performance model consumes: execution time over ``n`` elements with an
allocation of ``a`` arrays is a closed-form function of these numbers
plus the device geometry.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from ..memories.base import MemoryKind, MemorySpec
from .dfg import DFG
from .lowering import lower_histogram
from .ops import OP_CLASSES, Op, OpClass
from .timing import op_cycles

__all__ = ["CompiledKernel", "compile_dfg", "compile_for_all"]


@dataclass(frozen=True)
class CompiledKernel:
    """A kernel cross-compiled for one in-memory target."""

    name: str
    target: MemoryKind
    cycles_per_element: float
    energy_per_element_pj: float
    native_histogram: Counter = field(default_factory=Counter)
    input_bytes_per_element: int = 0
    output_bytes_per_element: int = 0
    frontend_ops: int = 0

    def lanes_per_array(self, spec: MemorySpec, vector_width: int | None = None) -> int:
        """Usable SIMD lanes in one array for this kernel's data shape.

        ``vector_width`` is the natural SIMD vector of the workload
        (e.g. the GNN feature dimension).  An array fits at most
        ``pack_limit`` independent vectors side by side -- DRAM rows
        are filled by row-wide DMA and cannot pack independent narrow
        vectors (pack_limit == 1), which models the paper's
        observation that GNN feature vectors leave DRAM SIMD slots
        underutilised.  Streaming kernels (``vector_width is None``)
        fill arrays completely.
        """
        if spec.kind is not self.target:
            raise ValueError(f"kernel compiled for {self.target}, got {spec.kind}")
        return spec.usable_lanes(vector_width)

    def compute_seconds(
        self,
        spec: MemorySpec,
        elements: int,
        arrays: int,
        vector_width: int | None = None,
    ) -> float:
        """Pure compute time for ``elements`` lane-executions.

        Elements are spread over the usable lanes of the allocation;
        each *wave* runs the whole kernel once.
        """
        if elements <= 0:
            return 0.0
        if arrays <= 0:
            raise ValueError("arrays must be positive")
        lanes = arrays * self.lanes_per_array(spec, vector_width)
        waves = math.ceil(elements / lanes)
        return spec.seconds(waves * self.cycles_per_element)

    def compute_energy_j(self, elements: int) -> float:
        """Dynamic compute energy for ``elements`` lane-executions."""
        if elements <= 0:
            return 0.0
        return elements * self.energy_per_element_pj * 1e-12


def _op_energy_pj(spec: MemorySpec, op: Op, cycles: float, bits: int) -> float:
    """Energy of one native op on one lane.

    Bitwise ops use the per-technology bulk-bitwise energy (Ambit's
    headline advantage); everything else scales with cycle count
    relative to the calibrated MAC energy.
    """
    if OP_CLASSES.get(op) is OpClass.BITWISE:
        return spec.energy_per_bitop_pj * bits / 16.0
    if spec.mac_cycles_2op <= 0:
        return 0.0
    return spec.energy_per_mac_pj * cycles / spec.mac_cycles_2op


def _mac_chain_positions(dfg: DFG) -> dict[str, int]:
    """Position of each MAC node within its accumulation chain.

    A MAC whose input is itself a MAC continues a dot-product chain.
    The ReRAM backend fuses whole chains into single multi-operand
    analog operations (the crossbar sums all activated rows on the
    bitline), so only every ``max_operands``-th position pays cycles.
    """
    positions: dict[str, int] = {}
    for node in dfg.topological():
        if node.op is not Op.MAC:
            continue
        parent = next(
            (p for p in node.inputs if dfg.nodes[p].op is Op.MAC), None
        )
        positions[node.name] = positions[parent] + 1 if parent else 0
    return positions


def compile_dfg(dfg: DFG, spec: MemorySpec) -> CompiledKernel:
    """Cross-compile ``dfg`` for the target described by ``spec``."""
    dfg.validate()
    frontend = dfg.op_histogram()
    native = lower_histogram(spec.kind, frontend)
    mac_positions = (
        _mac_chain_positions(dfg) if spec.kind is MemoryKind.RERAM else {}
    )

    cycles = 0.0
    energy_pj = 0.0
    input_bytes = 0
    output_bytes = 0
    for node in dfg.operation_nodes():
        assert node.op is not None
        if node.op is Op.LOAD:
            input_bytes += node.bits // 8
            continue
        if node.op is Op.STORE:
            output_bytes += node.bits // 8
            continue
        if (
            node.name in mac_positions
            and mac_positions[node.name] % spec.max_operands != 0
        ):
            # Fused into the chain head's multi-operand analog MAC.
            continue
        node_cycles = op_cycles(spec.kind, node.op, node.bits)
        cycles += node_cycles
        energy_pj += _op_energy_pj(spec, node.op, node_cycles, node.bits)
    # Kernel inputs are operands that must be resident in the array.
    for name in dfg.inputs:
        input_bytes += dfg.nodes[name].bits // 8
    for name in dfg.outputs:
        output_bytes += dfg.nodes[name].bits // 8

    return CompiledKernel(
        name=dfg.name,
        target=spec.kind,
        cycles_per_element=cycles,
        energy_per_element_pj=energy_pj,
        native_histogram=native,
        input_bytes_per_element=input_bytes,
        output_bytes_per_element=output_bytes,
        frontend_ops=sum(frontend.values()),
    )


def compile_for_all(
    dfg: DFG, specs: dict[MemoryKind, MemorySpec]
) -> dict[MemoryKind, CompiledKernel]:
    """Cross-compile one DFG for every configured target (Fig. 6)."""
    return {kind: compile_dfg(dfg, spec) for kind, spec in specs.items()}
