"""Common programming frontend: SIMD DFGs, lowering, cross-compilation."""

from .compiler import CompiledKernel, compile_dfg, compile_for_all
from .dfg import DFG, DFGError, DFGNode
from .executor import FixedPointFormat, execute_dfg
from .lowering import LoweringError, lower_histogram, lower_op
from .ops import COMMUTATIVE_OPS, OP_CLASSES, Op, OpClass
from .timing import is_native, native_ops, op_cycles

__all__ = [
    "FixedPointFormat",
    "execute_dfg",
    "CompiledKernel",
    "compile_dfg",
    "compile_for_all",
    "DFG",
    "DFGError",
    "DFGNode",
    "LoweringError",
    "lower_histogram",
    "lower_op",
    "COMMUTATIVE_OPS",
    "OP_CLASSES",
    "Op",
    "OpClass",
    "is_native",
    "native_ops",
    "op_cycles",
]
