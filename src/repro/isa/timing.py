"""Per-target micro-operation timing tables.

Every frontend :class:`~repro.isa.ops.Op` either has a *native* cycle
cost on a given memory target or is *lowered* (legalised) into a bag of
simpler operations (paper III-A: "gaps in the supported operations
between the frontend and ISA are bridged by the compiler's lowering and
legalization operations").

Cycle formulas:

* **in-SRAM** (Neural/Duality Cache): bit-serial.  n-bit add = n
  cycles, multiply = ``n^2 + 3n - 2`` (302 at n=16, paper II-B1),
  bitwise/moves = one cycle per bit-slice, division by restoring
  subtraction ~ ``1.5 n^2``.
* **in-DRAM** (Ambit): AND/OR via triple-row activation (4 command
  cycles per bit-slice incl. RowClone staging); arithmetic composed
  bit-serially at ``DRAM_STEP_FACTOR`` (= 5) times the SRAM step count
  (1,510-cycle MAC, Table III).
* **in-ReRAM** (IMP/ISAAC): bit-parallel analog MAC in
  ``bits / bits_per_cell`` = 8 cycles; digital peripheral adder (2),
  shifter (1) and LUTs (4) provide the rest; bitwise operations need a
  read-modify-write round trip (8).

Transcendentals are never native on the bit-serial targets; the
lowering rules expand them into shift/multiply/add polynomials, while
ReRAM serves them from its peripheral LUTs.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Mapping

from ..memories.base import MemoryKind
from ..memories.dram import DRAM_STEP_FACTOR
from .ops import Op

__all__ = [
    "op_cycles",
    "batch_cycles",
    "native_ops",
    "is_native",
    "LoweringError",
    "configure_cache",
    "cache_stats",
    "clear_cache",
]


class LoweringError(ValueError):
    """Raised when an op cannot be costed on a target."""


CostFn = Callable[[int], float]


def _sram_mul(bits: int) -> float:
    return bits * bits + 3 * bits - 2


def _sram_div(bits: int) -> float:
    # Restoring division: one conditional subtract + shift per
    # quotient bit, each ~1.5 n cycles bit-serial.
    return 1.5 * bits * bits


#: Native cost tables.  Anything absent is lowered via ``_EXPANSIONS``.
_NATIVE: dict[MemoryKind, dict[Op, CostFn]] = {
    MemoryKind.SRAM: {
        Op.ADD: lambda n: n,
        Op.SUB: lambda n: n,
        Op.MIN: lambda n: 2 * n,  # compare then predicated move
        Op.MAX: lambda n: 2 * n,
        Op.ABS: lambda n: 2 * n,
        Op.CMP: lambda n: n,
        Op.SELECT: lambda n: n,
        Op.MOV: lambda n: n,
        Op.MUL: _sram_mul,
        Op.MAC: _sram_mul,  # accumulate overlaps the final partial add
        Op.DIV: _sram_div,
        Op.AND: lambda n: n,
        Op.OR: lambda n: n,
        Op.XOR: lambda n: n,
        Op.NOT: lambda n: n,
        Op.SHL: lambda n: n,
        Op.SHR: lambda n: n,
        Op.ROTL: lambda n: n,
        Op.REDUCE_ADD: lambda n: 2 * n,  # inter-slot move + add, per level
    },
    MemoryKind.DRAM: {
        Op.ADD: lambda n: DRAM_STEP_FACTOR * n,
        Op.SUB: lambda n: DRAM_STEP_FACTOR * n,
        Op.MIN: lambda n: DRAM_STEP_FACTOR * 2 * n,
        Op.MAX: lambda n: DRAM_STEP_FACTOR * 2 * n,
        Op.ABS: lambda n: DRAM_STEP_FACTOR * 2 * n,
        Op.CMP: lambda n: DRAM_STEP_FACTOR * n,
        Op.SELECT: lambda n: DRAM_STEP_FACTOR * n,
        Op.MOV: lambda n: 2 * n,  # RowClone copies, no TRA needed
        Op.MUL: lambda n: DRAM_STEP_FACTOR * _sram_mul(n),
        Op.MAC: lambda n: DRAM_STEP_FACTOR * _sram_mul(n),
        Op.DIV: lambda n: DRAM_STEP_FACTOR * _sram_div(n),
        Op.AND: lambda n: 4 * n,  # one TRA sequence per bit-slice
        Op.OR: lambda n: 4 * n,
        Op.XOR: lambda n: 12 * n,  # composed from AND/OR/NOT
        Op.NOT: lambda n: 4 * n,  # dual-contact cell readout
        Op.SHL: lambda n: 2 * n,  # shifted RowClone
        Op.SHR: lambda n: 2 * n,
        Op.ROTL: lambda n: 2 * n,
        Op.REDUCE_ADD: lambda n: DRAM_STEP_FACTOR * 2 * n,
    },
    MemoryKind.RERAM: {
        Op.ADD: lambda n: 2,
        Op.SUB: lambda n: 2,
        Op.MIN: lambda n: 3,
        Op.MAX: lambda n: 3,
        Op.ABS: lambda n: 2,
        Op.CMP: lambda n: 2,
        Op.SELECT: lambda n: 2,
        Op.MOV: lambda n: 1,
        Op.MUL: lambda n: max(1, n // 2),  # one cycle per 2-bit input slice
        Op.MAC: lambda n: max(1, n // 2),
        Op.AND: lambda n: 8,  # read + peripheral logic + write back
        Op.OR: lambda n: 8,
        Op.XOR: lambda n: 8,
        Op.NOT: lambda n: 8,
        Op.SHL: lambda n: 1,  # peripheral shifter
        Op.SHR: lambda n: 1,
        Op.ROTL: lambda n: 2,
        Op.LUT: lambda n: 4,
        Op.REDUCE_ADD: lambda n: 4,  # in-array multi-row accumulate + move
    },
}

#: Legalisation rules: frontend op -> bag of (op, count) on that
#: target.  Expansion is recursive; every leaf must be native.
_EXPANSIONS: dict[MemoryKind, dict[Op, list[tuple[Op, int]]]] = {
    MemoryKind.SRAM: {
        # exp2(x) = 1 << int(x) times a 2-term polynomial in frac(x).
        Op.EXP2: [(Op.SHL, 1), (Op.MUL, 1), (Op.ADD, 2)],
        Op.LOG2: [(Op.CMP, 4), (Op.SHR, 1), (Op.MUL, 1), (Op.ADD, 2)],
        Op.SQRT: [(Op.MUL, 3), (Op.ADD, 2), (Op.SHR, 1)],  # Newton, 2 iters
        Op.RECIP: [(Op.MUL, 4), (Op.SUB, 2)],  # Newton-Raphson
        Op.LUT: [(Op.CMP, 4), (Op.SELECT, 4)],  # binary-searched table
    },
    MemoryKind.DRAM: {
        Op.EXP2: [(Op.SHL, 1), (Op.MUL, 1), (Op.ADD, 2)],
        Op.LOG2: [(Op.CMP, 4), (Op.SHR, 1), (Op.MUL, 1), (Op.ADD, 2)],
        Op.SQRT: [(Op.MUL, 3), (Op.ADD, 2), (Op.SHR, 1)],
        Op.RECIP: [(Op.MUL, 4), (Op.SUB, 2)],
        Op.LUT: [(Op.CMP, 4), (Op.SELECT, 4)],
    },
    MemoryKind.RERAM: {
        Op.EXP2: [(Op.LUT, 1), (Op.SHL, 1)],
        Op.LOG2: [(Op.LUT, 1), (Op.ADD, 1)],
        Op.SQRT: [(Op.LUT, 1), (Op.MUL, 1), (Op.ADD, 1)],  # LUT seed + 1 Newton
        Op.RECIP: [(Op.LUT, 1), (Op.MUL, 2), (Op.SUB, 1)],
        # Division is not analog-native: reciprocal LUT then multiply.
        Op.DIV: [(Op.RECIP, 1), (Op.MUL, 1)],
    },
}

_MAX_DEPTH = 8

# ----------------------------------------------------------------------
# Memoisation: op_cycles(kind, op, bits) is pure and its domain is tiny
# (3 targets x ~25 ops x a handful of bit widths), but the compiler
# asks for it once per DFG node, and lowering recursion re-derives the
# same expansions on every call.  The cache is unbounded by design --
# the key space cannot grow past |kinds| * |ops| * |bit widths in use|.
_CACHE_ENABLED = True
_CYCLE_CACHE: dict[tuple[MemoryKind, Op, int], float] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0


def configure_cache(enabled: bool) -> None:
    """Toggle the cycle-cost memo (the ``repro bench`` baseline mode
    disables it to measure the pre-cache lowering path)."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)


def clear_cache(reset_counters: bool = True) -> None:
    """Drop memoised cycle costs (and, by default, the counters)."""
    global _CACHE_HITS, _CACHE_MISSES
    _CYCLE_CACHE.clear()
    if reset_counters:
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


def cache_stats() -> dict[str, dict]:
    """Hit/miss/occupancy of the cycle-cost memo (same shape as
    :func:`repro.core.perfmodel.cache_stats`)."""
    total = _CACHE_HITS + _CACHE_MISSES
    return {
        "timing.op_cycles": {
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
            "hit_rate": _CACHE_HITS / total if total else 0.0,
            "size": len(_CYCLE_CACHE),
            "maxsize": None,
        }
    }


def native_ops(kind: MemoryKind) -> frozenset[Op]:
    """Operations with a native cost on ``kind``."""
    return frozenset(_NATIVE[kind])


def is_native(kind: MemoryKind, op: Op) -> bool:
    return op in _NATIVE[kind]


def op_cycles(kind: MemoryKind, op: Op, bits: int = 16, _depth: int = 0) -> float:
    """Cycles for one frontend op on one SIMD lane of ``kind``.

    Non-native ops are recursively expanded through the legalisation
    rules; :class:`LoweringError` is raised if no rule applies.
    ``LOAD``/``STORE`` are not costed here -- data movement is priced
    by the memory-system model, not per lane.
    """
    global _CACHE_HITS, _CACHE_MISSES
    if bits <= 0:
        raise ValueError("bits must be positive")
    if op in (Op.LOAD, Op.STORE):
        return 0.0
    if _CACHE_ENABLED and _depth == 0:
        cached = _CYCLE_CACHE.get((kind, op, bits))
        if cached is not None:
            _CACHE_HITS += 1
            return cached
        _CACHE_MISSES += 1
    if _depth > _MAX_DEPTH:
        raise LoweringError(f"lowering of {op} on {kind} does not terminate")
    native = _NATIVE[kind].get(op)
    if native is not None:
        cycles = float(native(bits))
    else:
        expansion = _EXPANSIONS[kind].get(op)
        if expansion is None:
            raise LoweringError(f"{op} is not supported on {kind} and has no lowering")
        cycles = sum(
            count * op_cycles(kind, sub_op, bits, _depth + 1)
            for sub_op, count in expansion
        )
    if _CACHE_ENABLED and _depth == 0:
        _CYCLE_CACHE[(kind, op, bits)] = cycles
    return cycles


def batch_cycles(
    kind: MemoryKind, ops: Iterable[Op] | Mapping[Op, int], bits: int = 16
) -> float:
    """Total cycles for a *bag* of frontend ops on one SIMD lane.

    Fast path for homogeneous kernel batches: the bag is collapsed to
    (op, count) pairs first, so each distinct op is costed exactly once
    (one memo lookup) no matter how many times it appears.  Accepts
    either an iterable of ops or a pre-counted ``{op: count}`` mapping.
    """
    items = ops.items() if isinstance(ops, Mapping) else Counter(ops).items()
    total = 0.0
    for op, count in items:
        if count < 0:
            raise ValueError(f"negative op count {count} for {op}")
        total += count * op_cycles(kind, op, bits)
    return total
