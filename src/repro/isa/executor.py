"""Functional SIMD-DFG executor (fixed-point reference semantics).

The cross-compiler costs kernels; this module *runs* them.  Every
frontend op gets a reference implementation over 16-bit fixed-point
lanes (numpy int64 carrying Q8.8 values by default for the
transcendentals), so application kernels and tests can check that a
DFG computes what its author intended before caring how fast any
memory runs it.

Semantics notes:

* integers wrap modulo ``2^bits`` (the in-memory ALUs are modular);
* ``CMP`` yields 0/1 masks, ``SELECT(mask, value)`` keeps ``value``
  where the mask is set;
* transcendentals (exp2/log2/sqrt/recip) interpret lanes as unsigned
  Q(bits-fraction_bits).fraction_bits fixed point and return the same
  format, saturating on overflow -- matching what LUT/polynomial
  lowering would produce up to quantisation.
"""

from __future__ import annotations

import numpy as np

from .dfg import DFG
from .ops import Op

__all__ = ["execute_dfg", "FixedPointFormat"]


class FixedPointFormat:
    """Unsigned fixed-point interpretation of a lane value."""

    def __init__(self, bits: int = 16, fraction_bits: int = 8) -> None:
        if not 0 <= fraction_bits < bits:
            raise ValueError("fraction_bits must be in [0, bits)")
        self.bits = bits
        self.fraction_bits = fraction_bits

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def one(self) -> int:
        return 1 << self.fraction_bits

    def to_real(self, values: np.ndarray) -> np.ndarray:
        return values.astype(np.float64) / self.one

    def from_real(self, reals: np.ndarray) -> np.ndarray:
        quantised = np.round(reals * self.one)
        return np.clip(quantised, 0, self.mask).astype(np.int64)


def _shift_amount(values: np.ndarray, bits: int) -> np.ndarray:
    return np.clip(values, 0, bits - 1).astype(np.int64)


def execute_dfg(
    dfg: DFG,
    inputs: dict[str, np.ndarray],
    fmt: FixedPointFormat | None = None,
) -> dict[str, np.ndarray]:
    """Evaluate ``dfg`` over SIMD lanes; returns its output registers.

    ``inputs`` maps every DFG input/const name to an equal-length
    integer array (interpreted per ``fmt`` for transcendentals).
    """
    dfg.validate()
    fmt = fmt or FixedPointFormat()
    mask = fmt.mask

    values: dict[str, np.ndarray] = {}
    lanes: int | None = None
    for name in dfg.inputs:
        if name not in inputs:
            raise ValueError(f"missing input {name!r}")
        array = np.asarray(inputs[name], dtype=np.int64) & mask
        if lanes is None:
            lanes = array.shape[0]
        elif array.shape != (lanes,):
            raise ValueError("all inputs must have equal lane counts")
        values[name] = array

    for node in dfg.topological():
        if node.is_input:
            continue
        args = [values[dep] for dep in node.inputs]
        op = node.op
        assert op is not None
        if op in (Op.ADD, Op.MAC):
            # MAC's reference semantics here: acc + a*b when three
            # operands, else a + b (chained two-operand form).
            if op is Op.MAC and len(args) >= 2:
                out = (args[0] * args[1]) & mask
                for extra in args[2:]:
                    out = (out + extra) & mask
            else:
                out = (args[0] + args[1]) & mask
        elif op is Op.SUB:
            out = (args[0] - args[1]) & mask
        elif op is Op.MUL:
            out = (args[0] * args[1]) & mask
        elif op is Op.DIV:
            denom = np.where(args[1] == 0, 1, args[1])
            out = (args[0] // denom) & mask
        elif op is Op.MIN:
            out = np.minimum(args[0], args[1])
        elif op is Op.MAX:
            out = np.maximum(args[0], args[1])
        elif op is Op.ABS:
            out = args[0]  # unsigned lanes: identity
        elif op is Op.CMP:
            out = (args[0] >= args[1]).astype(np.int64)
        elif op is Op.SELECT:
            mask_arg = args[0] != 0
            kept = args[1]
            other = args[2] if len(args) > 2 else np.zeros_like(kept)
            out = np.where(mask_arg, kept, other)
        elif op is Op.MOV:
            out = args[0].copy()
        elif op is Op.AND:
            out = args[0] & args[1]
        elif op is Op.OR:
            out = args[0] | args[1]
        elif op is Op.XOR:
            out = args[0] ^ args[1]
        elif op is Op.NOT:
            out = (~args[0]) & mask
        elif op is Op.SHL:
            out = (args[0] << _shift_amount(args[1], fmt.bits)) & mask
        elif op is Op.SHR:
            out = args[0] >> _shift_amount(args[1], fmt.bits)
        elif op is Op.ROTL:
            amount = _shift_amount(args[1], fmt.bits)
            out = ((args[0] << amount) | (args[0] >> (fmt.bits - amount))) & mask
        elif op is Op.EXP2:
            out = fmt.from_real(np.exp2(np.minimum(fmt.to_real(args[0]), 30.0)))
        elif op is Op.LOG2:
            real = np.maximum(fmt.to_real(args[0]), 1.0 / fmt.one)
            out = fmt.from_real(np.maximum(np.log2(real), 0.0))
        elif op is Op.SQRT:
            out = fmt.from_real(np.sqrt(fmt.to_real(args[0])))
        elif op is Op.RECIP:
            real = np.maximum(fmt.to_real(args[0]), 1.0 / fmt.one)
            out = fmt.from_real(1.0 / real)
        elif op is Op.LUT:
            out = args[0].copy()  # identity table by default
        elif op is Op.REDUCE_ADD:
            out = np.full_like(args[0], args[0].sum() & mask)
        elif op in (Op.LOAD, Op.STORE):
            out = args[0].copy() if args else np.zeros(lanes or 1, dtype=np.int64)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"no reference semantics for {op}")
        values[node.name] = out & mask

    return {name: values[name] for name in dfg.outputs}
