"""Cluster topology: nodes, interconnect, node-level faults.

The paper schedules one node's SRAM/DRAM/ReRAM hierarchy; the ROADMAP
north star is a *fleet* of such nodes behind the serving layer.  A
:class:`ClusterSpec` is the static description of that fleet:

* each :class:`NodeSpec` owns a complete
  :class:`~repro.core.scheduler.base.MLIMPSystem` -- its own device
  set from the existing ``memories`` layer, scheduled by its own
  per-node :class:`~repro.core.scheduler.base.DispatchPolicy`;
* one :class:`InterconnectSpec` prices cross-node traffic: a job
  handed off away from its home node pays ``latency + bytes/bandwidth``
  before it can start filling, and the first job of a tenant landing
  on a foreign node additionally pays a **replicated fill** (the
  tenant's resident state is copied over, ``replica_factor`` times
  the job's fill bytes), after Tesseract's explicit inter-node
  communication cost (PAPERS.md).  With ``contention="shared"`` the
  fabric additionally becomes a *shared resource*: each directed
  (source, destination) link is a deterministic fluid queue, so
  concurrent handoffs and replica fills serialise behind each other
  and pick up queueing delay (see ``cluster/runtime.py``);
* a :class:`NodeFault` loses a whole node at a point in time.  It is
  *compiled down* to the existing device-fault machinery --
  :func:`node_fail_events` emits one permanent ``fail``
  :class:`~repro.faults.plan.FaultEvent` per device of that node, so
  a node loss composes with any device-level plan already running
  there and exercises the same ``device_lost`` scheduler hooks.

Specs are plain frozen data: picklable (they cross
``ProcessPoolExecutor`` boundaries when a cluster run shards), and
deterministic to construct.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..core.scheduler.base import MLIMPSystem
from ..faults.plan import FaultEvent, FaultKind
from ..memories import DEFAULT_SPECS
from ..serving.autoscale import scale_system

__all__ = [
    "CONTENTION_MODES",
    "InterconnectSpec",
    "NodeSpec",
    "NodeFault",
    "ClusterSpec",
    "node_fail_events",
]

#: Interconnect contention models: ``"none"`` is the PR-7 fixed
#: per-transfer pricing, ``"shared"`` the per-link fluid queue.
CONTENTION_MODES = ("none", "shared")


@dataclass(frozen=True)
class InterconnectSpec:
    """Latency/bandwidth cost model for cross-node job handoff.

    Defaults model a commodity datacenter fabric: ~2 us one-way
    latency, 100 Gb/s per-link bandwidth.  ``replica_factor`` scales a
    job's fill bytes into the size of its tenant's resident state for
    the one-time replicated fill a tenant pays on first landing away
    from home.
    """

    latency_s: float = 2e-6
    bandwidth_bytes_per_s: float = 12.5e9
    replica_factor: float = 4.0
    #: ``"none"``: every transfer is priced independently (the PR-7
    #: model, byte-identical to the historical output).  ``"shared"``:
    #: each directed link is a fluid queue -- transfers serialise in
    #: arrival order, and a transfer holds its link until delivery
    #: completes, so contention can only ever *add* delay.
    contention: str = "none"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.replica_factor < 0:
            raise ValueError("replica_factor must be non-negative")
        if self.contention not in CONTENTION_MODES:
            raise ValueError(
                f"unknown contention model {self.contention!r}; "
                f"choose from {CONTENTION_MODES}"
            )

    def transfer_time(self, nbytes: float) -> float:
        """Wire time of one ``nbytes`` transfer between two nodes."""
        if nbytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def replica_bytes(self, fill_bytes: float) -> float:
        """Size of the replicated fill for a tenant whose jobs carry
        ``fill_bytes`` of input."""
        return self.replica_factor * fill_bytes


@dataclass(frozen=True)
class NodeSpec:
    """One MLIMP node: a name and its own device set.

    ``scale`` records the node's size relative to the cluster's base
    system (1.0 for homogeneous fleets) -- informational: the
    ``system`` already carries the scaled device counts.
    """

    name: str
    system: MLIMPSystem
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node needs a non-empty name")
        if self.scale <= 0:
            raise ValueError(f"node scale must be positive, got {self.scale}")


@dataclass(frozen=True)
class NodeFault:
    """Permanent loss of a whole node at ``time`` (seconds).

    Compiled to per-device ``fail`` events by :func:`node_fail_events`,
    so it rides the existing fault/degradation machinery.
    """

    node: str
    time: float
    reason: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"node fault time must be non-negative, got {self.time}")


@dataclass(frozen=True)
class ClusterSpec:
    """The fleet: an ordered set of nodes plus the interconnect."""

    nodes: tuple[NodeSpec, ...]
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"node names must be unique, got {names}")

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def index_of(self, name: str) -> int:
        for i, node in enumerate(self.nodes):
            if node.name == name:
                return i
        raise KeyError(f"unknown node {name!r}; known: {self.names}")

    @classmethod
    def homogeneous(
        cls,
        n_nodes: int,
        system: MLIMPSystem | None = None,
        interconnect: InterconnectSpec | None = None,
    ) -> "ClusterSpec":
        """``n_nodes`` identical nodes (``node-0`` .. ``node-N-1``),
        each owning its own copy of ``system`` (default: the full
        Table III device set).

        The copies are genuinely independent: ``MLIMPSystem.specs``
        is a plain mutable dict, so sharing one instance across nodes
        would alias every node's device set (scaling one node would
        scale them all -- see ``tests/test_cluster.py``).
        """
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        system = system or MLIMPSystem(specs=dict(DEFAULT_SPECS))
        return cls(
            nodes=tuple(
                NodeSpec(
                    name=f"node-{i}",
                    system=MLIMPSystem(specs=dict(system.specs)),
                )
                for i in range(n_nodes)
            ),
            interconnect=interconnect or InterconnectSpec(),
        )

    @classmethod
    def heterogeneous(
        cls,
        scales: Mapping[str, float] | Sequence[tuple[str, float]],
        system: MLIMPSystem | None = None,
        interconnect: InterconnectSpec | None = None,
    ) -> "ClusterSpec":
        """Mixed-size nodes: each entry of ``scales`` is one node,
        sized ``scale`` times the base ``system`` (array counts and
        job slots multiply via
        :func:`~repro.serving.autoscale.scale_system`; clocks,
        geometry and bandwidths stay at spec).

        ``scales`` is ordered -- a ``{name: scale}`` mapping or
        ``(name, scale)`` pairs; node order in the cluster follows it.
        Fractional scales model weak nodes (``0.5`` halves the device
        pool, floored at one array/slot).  Note the serving layers
        profile jobs against **node 0's** system by default, so keep
        the first node at scale 1.0 (or pass an explicit workload)
        when the reference sizing matters.
        """
        items = (
            list(scales.items())
            if isinstance(scales, Mapping)
            else [(name, scale) for name, scale in scales]
        )
        if not items:
            raise ValueError("heterogeneous cluster needs at least one node")
        base = system or MLIMPSystem(specs=dict(DEFAULT_SPECS))
        nodes = []
        for name, scale in items:
            scaled = scale_system(base, scale)
            if scaled is base:  # scale 1.0 returns the same object
                scaled = MLIMPSystem(specs=dict(base.specs))
            nodes.append(NodeSpec(name=name, system=scaled, scale=float(scale)))
        return cls(
            nodes=tuple(nodes),
            interconnect=interconnect or InterconnectSpec(),
        )


def node_fail_events(node: NodeSpec, fault: NodeFault) -> tuple[FaultEvent, ...]:
    """Compile a node loss into per-device permanent failures.

    One ``fail`` event per memory device of the node, all at the
    fault's time -- the per-node dispatcher then runs its ordinary
    graceful-degradation path (``device_lost`` hooks, fallback
    migration finds no survivors, in-flight jobs are reported failed)
    and later arrivals are steered away by cluster placement.
    """
    reason = fault.reason or f"node {fault.node} failure"
    return tuple(
        FaultEvent(
            kind=FaultKind.FAIL, device=kind, time=fault.time, reason=reason
        )
        for kind in node.system.kinds
    )
