"""Cluster-level reporting: merge per-node serving runs into one view.

Each node of a sharded cluster run produces an ordinary per-node
:class:`~repro.serving.report.ServingReport` plus its raw sojourn and
intake bookkeeping.  :func:`build_cluster_report` merges them --
deterministically, nodes in spec order, tenants sorted -- into a
cluster-level ``ServingReport`` whose

* tenant rows are recomputed from the **union** of per-job sojourns
  (each shifted by the job's interconnect handoff delay, so a
  cluster sojourn runs from the *original* arrival to completion,
  not from the delayed landing on the node);
* ``utilisation`` is the fleet-wide busy fraction per memory layer
  (per-node busy time summed, normalised by nodes x cluster
  makespan);
* ``nodes`` sections carry each node's placed/completed/shed counts,
  makespan, SLO attainment and utilisation -- the per-node view the
  ROADMAP asks ``ServingReport`` to grow.

The merge is pure arithmetic over plain data, so a merged report is
byte-identical no matter how many processes produced the node runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import nearest_rank
from ..serving.report import ServingReport, TenantReport
from ..serving.tenants import Tenant
from .spec import ClusterSpec

__all__ = ["ClusterStats", "NodeOutcome", "build_cluster_report"]


def _delay_histogram(delays: list[float]) -> dict[str, int]:
    """Log-decade histogram of queueing delays (seconds): bucket
    ``"<=1e-06"`` counts delays up to a microsecond, and so on up a
    decade at a time; ``">1e+00"`` catches the tail.  Deterministic
    and JSON-friendly (string keys, fixed bucket set)."""
    edges = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1e0)
    counts = dict.fromkeys([f"<={edge:.0e}" for edge in edges], 0)
    counts[">1e+00"] = 0
    for delay in delays:
        for edge in edges:
            if delay <= edge:
                counts[f"<={edge:.0e}"] += 1
                break
        else:
            counts[">1e+00"] += 1
    return counts


@dataclass
class ClusterStats:
    """Placement and interconnect accounting of one cluster run.

    The contention and migration fields are *feature-gated* in
    :meth:`as_dict`: a run with ``contention="none"`` and no
    migrations emits exactly the historical key set, keeping pinned
    outputs byte-identical.
    """

    placement: str
    #: node name -> arrivals placed there.
    placed: dict[str, int] = field(default_factory=dict)
    #: Jobs placed away from their tenant's (effective) home node.
    handoffs: int = 0
    handoff_bytes: float = 0.0
    #: Replicated fills (first landing of a tenant away from home).
    replicas: int = 0
    replica_bytes: float = 0.0
    #: tenant -> arrivals that found no live node (cluster-level shed).
    lost_no_node: dict[str, int] = field(default_factory=dict)
    #: job_id -> total interconnect delay added before the job
    #: reached its node (handoff + replica + queueing + migration).
    delays: dict[str, float] = field(default_factory=dict)
    #: Interconnect contention model the run used ("none"/"shared").
    contention: str = "none"
    #: Per-transfer queueing delays (seconds waited behind earlier
    #: transfers on a shared link); empty under ``contention="none"``.
    queue_delays: list[float] = field(default_factory=list)
    #: Largest total bytes simultaneously in flight across all links.
    peak_inflight_bytes: float = 0.0
    #: Jobs re-placed off a node that died before their (delayed)
    #: landing time.
    migrations: int = 0
    migration_bytes: float = 0.0

    @property
    def total_lost(self) -> int:
        return sum(self.lost_no_node.values())

    def as_dict(self) -> dict:
        """JSON-ready summary (per-job delays are summarised, not
        dumped)."""
        delayed = [d for d in self.delays.values() if d > 0]
        out = {
            "placement": self.placement,
            "placed": dict(sorted(self.placed.items())),
            "handoffs": self.handoffs,
            "handoff_bytes": self.handoff_bytes,
            "replicas": self.replicas,
            "replica_bytes": self.replica_bytes,
            "lost_no_node": dict(sorted(self.lost_no_node.items())),
            "handoff_delay_s": {
                "count": len(delayed),
                "total": sum(delayed),
                "max": max(delayed) if delayed else 0.0,
            },
        }
        if self.contention != "none":
            queued = [d for d in self.queue_delays if d > 0]
            out["contention"] = {
                "model": self.contention,
                "transfers": len(self.queue_delays),
                "queued": len(queued),
                "queue_delay_s": {
                    "count": len(queued),
                    "total": sum(queued),
                    "max": max(queued) if queued else 0.0,
                    "p50": nearest_rank(sorted(queued), 0.50) if queued else 0.0,
                    "p95": nearest_rank(sorted(queued), 0.95) if queued else 0.0,
                },
                "queue_delay_histogram": _delay_histogram(queued),
                "peak_inflight_bytes": self.peak_inflight_bytes,
            }
        if self.migrations:
            out["migrations"] = {
                "count": self.migrations,
                "bytes": self.migration_bytes,
            }
        return out


@dataclass
class NodeOutcome:
    """Everything one node's shard returns to the merge.

    Plain data only -- this object crosses the
    ``ProcessPoolExecutor`` boundary when the run is sharded.
    """

    index: int
    name: str
    report: ServingReport
    #: ``repro.obs.export.result_payload`` of the node's dispatch run.
    payload: dict
    #: ``OpenLoop.tenant_stats()`` of the node's admission loop.
    tenant_stats: dict[str, dict[str, int]]
    #: job_id -> (tenant, node-local sojourn seconds).
    sojourns: dict[str, tuple[str, float]]
    makespan: float
    failed_jobs: dict[str, str] = field(default_factory=dict)


def build_cluster_report(
    spec: ClusterSpec,
    scheduler: str,
    slo_s: float,
    tenants: list[Tenant],
    outcomes: list[NodeOutcome],
    stats: ClusterStats,
    admission: str = "",
) -> ServingReport:
    """Merge node outcomes into the cluster-level serving report.

    ``admission`` names the per-node admission controller when the
    run used one ("" for the shed-only baseline, which keeps the
    merged schema byte-identical to the historical output)."""
    outcomes = sorted(outcomes, key=lambda o: o.index)

    # Union of per-job sojourns, shifted to original-arrival time base.
    sojourns: dict[str, list[float]] = {t.name: [] for t in tenants}
    for outcome in outcomes:
        for job_id, (tenant, sojourn) in outcome.sojourns.items():
            sojourns[tenant].append(sojourn + stats.delays.get(job_id, 0.0))

    tenant_reports: dict[str, TenantReport] = {}
    for tenant in tenants:
        name = tenant.name
        offered = admitted = queue_full = unplaced = predicted = 0
        for outcome in outcomes:
            node_stats = outcome.tenant_stats.get(name, {})
            offered += node_stats.get("offered", 0)
            admitted += node_stats.get("admitted", 0)
            queue_full += node_stats.get("shed_queue_full", 0)
            unplaced += node_stats.get("shed_unplaced", 0)
            predicted += node_stats.get("shed_predicted", 0)
        lost = stats.lost_no_node.get(name, 0)
        values = sorted(sojourns[name])
        effective_slo = tenant.slo_s if tenant.slo_s is not None else slo_s
        met = sum(1 for v in values if v <= effective_slo)
        tenant_reports[name] = TenantReport(
            tenant=name,
            offered=offered + lost,
            admitted=admitted,
            completed=len(values),
            shed_queue_full=queue_full,
            shed_unplaced=unplaced + lost,
            shed_predicted=predicted,
            slo_s=tenant.slo_s,
            sojourn_mean_s=sum(values) / len(values) if values else 0.0,
            sojourn_p50_s=nearest_rank(values, 0.50) if values else 0.0,
            sojourn_p95_s=nearest_rank(values, 0.95) if values else 0.0,
            sojourn_p99_s=nearest_rank(values, 0.99) if values else 0.0,
            slo_attainment=met / len(values) if values else 1.0,
        )

    makespan = max((o.makespan for o in outcomes), default=0.0)

    # Fleet utilisation: per-node busy time (utilisation x node
    # makespan) summed, over nodes x cluster makespan.  A single node
    # reuses its own fractions directly -- (frac * m) / m is not an
    # identity in floating point, and the 1-node cluster must stay
    # byte-identical to the plain serving path.
    utilisation: dict[str, float] = {}
    if len(outcomes) == 1:
        utilisation = dict(outcomes[0].report.utilisation)
    elif makespan > 0:
        for outcome in outcomes:
            for device, frac in outcome.report.utilisation.items():
                utilisation[device] = utilisation.get(device, 0.0) + (
                    frac * outcome.makespan
                )
        total = len(spec.nodes) * makespan
        utilisation = {dev: busy / total for dev, busy in utilisation.items()}

    nodes: dict[str, dict] = {}
    for outcome in outcomes:
        report = outcome.report
        nodes[outcome.name] = {
            "placed": stats.placed.get(outcome.name, 0),
            "offered": report.offered,
            "completed": report.completed,
            "shed": report.shed,
            "failed": len(outcome.failed_jobs),
            "makespan": outcome.makespan,
            "slo_attainment": report.slo_attainment,
            "utilisation": dict(sorted(report.utilisation.items())),
        }

    return ServingReport(
        scheduler=scheduler,
        makespan=makespan,
        slo_s=slo_s,
        tenants=tenant_reports,
        utilisation=utilisation,
        nodes=nodes,
        admission=admission,
    )
