"""Cluster-scale MLIMP: many nodes, two-level scheduling, sharded sim.

The paper -- and every layer below this package -- models **one**
node's SRAM/DRAM/ReRAM hierarchy.  ``repro.cluster`` scales that out
to a fleet (the ROADMAP's Tesseract-style north star): a
:class:`ClusterSpec` of nodes (homogeneous or mixed-size via
:meth:`ClusterSpec.heterogeneous`) that each own a full
:class:`~repro.core.scheduler.base.MLIMPSystem`, an
:class:`InterconnectSpec` pricing cross-node handoff and replicated
fills (optionally as a *contended* shared-link fluid queue), and a
:class:`ClusterRuntime` that runs the two-level scheduler -- cluster
placement (:mod:`repro.cluster.placement`) above the existing
per-node dispatch policies -- with the per-node simulations sharded
across processes and merged deterministically.

    python -m repro cluster --nodes 4 --rate 600000 --placement hash
    python -m repro cluster --nodes 3 --node-spec node-1:2 \\
        --contention shared --placement feedback
"""

from .placement import (
    PLACEMENTS,
    FeedbackPlacement,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    estimate_service_time,
    home_node,
    job_fill_bytes,
    node_capacity,
    resolve_home,
)
from .report import ClusterStats, NodeOutcome, build_cluster_report
from .runtime import ClusterResult, ClusterRuntime
from .spec import (
    CONTENTION_MODES,
    ClusterSpec,
    InterconnectSpec,
    NodeFault,
    NodeSpec,
    node_fail_events,
)

__all__ = [
    "CONTENTION_MODES",
    "ClusterSpec",
    "InterconnectSpec",
    "NodeSpec",
    "NodeFault",
    "node_fail_events",
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "FeedbackPlacement",
    "HashPlacement",
    "RoundRobinPlacement",
    "PLACEMENTS",
    "home_node",
    "resolve_home",
    "estimate_service_time",
    "node_capacity",
    "job_fill_bytes",
    "ClusterStats",
    "NodeOutcome",
    "build_cluster_report",
    "ClusterResult",
    "ClusterRuntime",
]
