"""Cluster-scale MLIMP: many nodes, two-level scheduling, sharded sim.

The paper -- and every layer below this package -- models **one**
node's SRAM/DRAM/ReRAM hierarchy.  ``repro.cluster`` scales that out
to a fleet (the ROADMAP's Tesseract-style north star): a
:class:`ClusterSpec` of nodes that each own a full
:class:`~repro.core.scheduler.base.MLIMPSystem`, an
:class:`InterconnectSpec` pricing cross-node handoff and replicated
fills, and a :class:`ClusterRuntime` that runs the two-level
scheduler -- cluster placement (:mod:`repro.cluster.placement`) above
the existing per-node dispatch policies -- with the per-node
simulations sharded across processes and merged deterministically.

    python -m repro cluster --nodes 4 --rate 600000 --placement hash
"""

from .placement import (
    PLACEMENTS,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    home_node,
)
from .report import ClusterStats, NodeOutcome, build_cluster_report
from .runtime import ClusterResult, ClusterRuntime
from .spec import (
    ClusterSpec,
    InterconnectSpec,
    NodeFault,
    NodeSpec,
    node_fail_events,
)

__all__ = [
    "ClusterSpec",
    "InterconnectSpec",
    "NodeSpec",
    "NodeFault",
    "node_fail_events",
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "HashPlacement",
    "RoundRobinPlacement",
    "PLACEMENTS",
    "home_node",
    "ClusterStats",
    "NodeOutcome",
    "build_cluster_report",
    "ClusterResult",
    "ClusterRuntime",
]
