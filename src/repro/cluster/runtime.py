"""ClusterRuntime: two-level scheduling over sharded node simulations.

One cluster run is three passes:

1. **Placement** (cluster level, causal): the arrival timeline is
   generated once for the whole fleet, then walked in arrival order.
   A :class:`~repro.cluster.placement.PlacementPolicy` assigns each
   arrival to a live node using only information available at that
   timestamp; jobs placed away from their tenant's *effective* CRC32
   home node (the salted rehash over live nodes, so a tenant whose
   home died is not charged forever) pay the interconnect handoff
   (and, on a tenant's first landing on a foreign node, a replicated
   fill), which *delays their node-local arrival time*.  Dead nodes
   (``NodeFault``) stop being candidates.  Under
   ``contention="shared"`` every transfer additionally runs through
   :class:`_SharedLinks` -- a deterministic fluid queue per directed
   link, walked in the same arrival order, so concurrent transfers
   serialise and pick up queueing delay.  A job whose *delayed*
   landing time falls after its node's fault is **migrated**: pass 1
   re-places it among the nodes still alive at the landing time,
   paying a fresh handoff on the (dead node, new node) link, instead
   of delivering it into the dead node's failure path.
2. **Node simulation** (per node, independent): each node replays its
   slice of the timeline through an ordinary
   :class:`~repro.serving.runtime.ServingRuntime` -- same scheduler
   stack, same ``admit``/``device_lost`` hooks, same fault machinery
   (node losses are compiled onto the node's
   :class:`~repro.faults.plan.FaultPlan`).  Because placement never
   looks inside a node, the per-node simulations share nothing and
   run **embarrassingly parallel**: ``shards > 1`` fans them out over
   a ``ProcessPoolExecutor`` (the ``run_experiment_grid`` pattern,
   turned inward on a single run).
3. **Merge** (deterministic): node outcomes are plain data, combined
   in node order into one cluster-level
   :class:`~repro.serving.report.ServingReport` regardless of how
   many processes produced them -- the same inputs give
   byte-identical cluster output for any shard count.

A 1-node cluster degenerates exactly to the single-node serving path:
every tenant's home is node 0, no handoff delay is ever added, and
the node replays the unmodified timeline -- traces, reports and
export payloads are byte-identical to ``ServingRuntime.serve`` on the
same system (see ``tests/test_cluster_serving.py``).
"""

from __future__ import annotations

import dataclasses
import heapq
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..core.runtime import _SCHEDULERS
from ..faults.plan import FaultPlan
from ..obs.export import result_payload
from ..serving.arrivals import ArrivalProcess, TimelineArrivals
from ..serving.report import ServingReport
from ..serving.runtime import DEFAULT_SLO_S, ServingRuntime
from ..serving.tenants import Tenant
from ..serving.workload import OpenWorkload
from ..sim.events import JobArrival
from .placement import (
    PLACEMENTS,
    PlacementPolicy,
    estimate_service_time,
    home_node,
    job_fill_bytes,
    node_capacity,
    resolve_home,
)
from .report import ClusterStats, NodeOutcome, build_cluster_report
from .spec import ClusterSpec, InterconnectSpec, NodeFault, NodeSpec, node_fail_events

__all__ = ["ClusterResult", "ClusterRuntime"]


class _SharedLinks:
    """Deterministic fluid queue over the interconnect's directed links.

    Each (source, destination) node pair is one link.  Transfers are
    issued in fleet arrival order (pass 1's walk), and a transfer
    holds its link from the moment it starts until delivery completes
    (``latency + bytes/bandwidth`` -- store-and-forward, the Tesseract
    framing of explicit inter-node cost).  A transfer issued while its
    link is held *queues*: it begins at the link's release time, never
    earlier.  Because ``begin = max(start, busy_until)`` and IEEE
    addition is monotone in its left operand, a transfer's completion
    under contention is **never earlier** than the uncontended
    ``start + transfer_time(bytes)`` -- contention can only add delay
    (see ``tests/test_cluster_contention.py``).

    Also tracks the accounting the contention report wants: every
    transfer's queueing delay, and the peak total bytes simultaneously
    in flight across all links (a min-heap of completion times drains
    delivered transfers as later ones are issued).
    """

    def __init__(self, interconnect: InterconnectSpec) -> None:
        self.interconnect = interconnect
        self._busy_until: dict[tuple[int, int], float] = {}
        self._inflight: list[tuple[float, float]] = []
        self._inflight_bytes = 0.0
        #: Per-transfer wait behind earlier transfers (0.0 when clear).
        self.queue_delays: list[float] = []
        self.peak_inflight_bytes = 0.0

    def ship(self, src: int, dst: int, nbytes: float, start: float) -> float:
        """Issue one transfer; returns its delivery completion time."""
        link = (src, dst)
        busy = self._busy_until.get(link, 0.0)
        begin = busy if busy > start else start
        self.queue_delays.append(begin - start)
        complete = begin + self.interconnect.transfer_time(nbytes)
        self._busy_until[link] = complete
        while self._inflight and self._inflight[0][0] <= begin:
            _, delivered = heapq.heappop(self._inflight)
            self._inflight_bytes -= delivered
        heapq.heappush(self._inflight, (complete, nbytes))
        self._inflight_bytes += nbytes
        if self._inflight_bytes > self.peak_inflight_bytes:
            self.peak_inflight_bytes = self._inflight_bytes
        return complete


@dataclass(frozen=True)
class _NodeTask:
    """One node's complete, self-contained simulation order.

    Frozen plain data so it pickles across the process pool; the
    worker rebuilds the ServingRuntime from it on the far side.
    """

    index: int
    name: str
    node: NodeSpec
    scheduler: str
    max_backlog: int
    arrivals: tuple[JobArrival, ...]
    tenants: tuple[Tenant, ...]
    slo_s: float
    faults: FaultPlan | None
    label: str
    #: Admission mode string ("shed"/"predictive") -- a string, not a
    #: controller, so the task stays picklable; each node builds its
    #: own controller over its local system and predictor.
    admission: str = "shed"
    admission_margin: float = 1.0


def _run_node_task(task: _NodeTask) -> NodeOutcome:
    """Run one node's serving simulation (module-level for pickling).

    Pure function of the task: in-process and pooled execution return
    identical outcomes.
    """
    runtime = ServingRuntime(
        task.node.system,
        scheduler=task.scheduler,
        max_backlog=task.max_backlog,
    )
    serving = runtime.serve(
        TimelineArrivals(arrivals=task.arrivals),
        tenants=list(task.tenants),
        slo_s=task.slo_s,
        label=task.label,
        faults=task.faults,
        admission=task.admission,
        admission_margin=task.admission_margin,
    )
    sojourns: dict[str, tuple[str, float]] = {}
    for job_id, record in serving.result.records.items():
        arrived = serving.open_loop.arrival_times.get(job_id)
        if arrived is None:
            continue
        tenant = serving.open_loop.job_tenants[job_id]
        sojourns[job_id] = (tenant, record.finished_at - arrived)
    return NodeOutcome(
        index=task.index,
        name=task.name,
        report=serving.report,
        payload=result_payload(serving.result),
        tenant_stats=serving.open_loop.tenant_stats(),
        sojourns=sojourns,
        makespan=serving.result.makespan,
        failed_jobs=dict(serving.result.failed_jobs),
    )


@dataclass
class ClusterResult:
    """One cluster run: merged report, per-node artefacts, accounting."""

    spec: ClusterSpec
    report: ServingReport
    #: node name -> that node's own ServingReport.
    node_reports: dict[str, ServingReport]
    #: node name -> ``result_payload`` of the node's dispatch run.
    node_payloads: dict[str, dict]
    stats: ClusterStats

    @property
    def makespan(self) -> float:
        return self.report.makespan

    @property
    def completed(self) -> int:
        return self.report.completed

    @property
    def completed_per_sec(self) -> float:
        """Cluster throughput in completed jobs per simulated second."""
        return self.completed / self.makespan if self.makespan > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary (per-node payloads stay out: they are
        full traces, exported separately when wanted)."""
        return {
            "n_nodes": len(self.spec),
            "report": self.report.as_dict(),
            "cluster": self.stats.as_dict(),
            "completed_per_sec": self.completed_per_sec,
        }


@dataclass
class ClusterRuntime:
    """Open-system serving across a fleet of MLIMP nodes."""

    cluster: ClusterSpec
    scheduler: str = "adaptive"
    placement: str | PlacementPolicy = "least-loaded"
    max_backlog: int = 32

    def __post_init__(self) -> None:
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(_SCHEDULERS)}"
            )
        if (
            isinstance(self.placement, str)
            and self.placement not in PLACEMENTS
        ):
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"choose from {sorted(PLACEMENTS)}"
            )

    def _make_placement(self) -> PlacementPolicy:
        if isinstance(self.placement, PlacementPolicy):
            return self.placement
        return PLACEMENTS[self.placement]()

    # ------------------------------------------------------------------
    def _node_plans(
        self, faults, node_faults: tuple[NodeFault, ...]
    ) -> dict[int, FaultPlan]:
        """Per-node fault plans: device plans merged with compiled
        node losses.  A node with neither gets no plan at all, so its
        run takes the exact fault-free code path."""
        plans: dict[int, FaultPlan] = {}
        for fault in node_faults:
            self.cluster.index_of(fault.node)  # KeyError on unknown
        for i, node in enumerate(self.cluster.nodes):
            if isinstance(faults, FaultPlan):
                base = faults
            elif faults:
                base = faults.get(node.name)
            else:
                base = None
            fail_events = tuple(
                event
                for fault in node_faults
                if fault.node == node.name
                for event in node_fail_events(node, fault)
            )
            if fail_events:
                plans[i] = (
                    dataclasses.replace(
                        base, events=base.events + fail_events
                    )
                    if base
                    else FaultPlan(events=fail_events)
                )
            elif base:
                plans[i] = base
        return plans

    def serve(
        self,
        arrivals: ArrivalProcess,
        tenants: list[Tenant],
        slo_s: float = DEFAULT_SLO_S,
        faults: FaultPlan | dict[str, FaultPlan] | None = None,
        node_faults: tuple[NodeFault, ...] = (),
        workload: OpenWorkload | None = None,
        shards: int | None = None,
        label: str = "",
        admission: str = "shed",
        admission_margin: float = 1.0,
    ) -> ClusterResult:
        """Place the arrival stream, simulate every node, merge.

        ``faults`` is either one :class:`FaultPlan` applied to every
        node or a ``{node name: plan}`` mapping; ``node_faults`` lose
        whole nodes and compose with both.  ``shards`` > 1 runs the
        node simulations in that many worker processes (capped at the
        node count); the merged output is byte-identical either way.

        ``admission`` is the per-node passthrough of the serving
        layer's predictive gate: each node builds its own controller
        over its local system, so admission decisions ride on the
        node's view of outstanding work (placement stays above and
        unchanged).  The default ``"shed"`` keeps every node on the
        historical code path.
        """
        spec = self.cluster
        n = len(spec)
        interconnect = spec.interconnect
        fail_time = [float("inf")] * n
        for fault in node_faults:
            i = spec.index_of(fault.node)
            fail_time[i] = min(fail_time[i], fault.time)

        maker = workload or OpenWorkload(spec.nodes[0].system)
        timeline = arrivals.generate(maker.make_job)

        # Pass 1: causal placement over the fleet-wide timeline.
        policy = self._make_placement()
        policy.reset(n, [node_capacity(node.system) for node in spec.nodes])
        shared = interconnect.contention == "shared"
        links = _SharedLinks(interconnect) if shared else None
        stats = ClusterStats(
            placement=policy.name,
            placed={node.name: 0 for node in spec.nodes},
            contention=interconnect.contention,
        )
        per_node: list[list[JobArrival]] = [[] for _ in range(n)]
        replicated: set[tuple[str, int]] = set()
        for arrival in timeline:
            candidates = [i for i in range(n) if arrival.time < fail_time[i]]
            if not candidates:
                stats.lost_no_node[arrival.tenant] = (
                    stats.lost_no_node.get(arrival.tenant, 0) + 1
                )
                continue
            est = estimate_service_time(arrival.job)
            chosen = policy.choose(arrival, candidates, est)
            # The tenant's *effective* home is the salted rehash over
            # the live nodes -- the exact node HashPlacement resolves
            # to -- so a tenant whose home died pays for the one move
            # to its new stable home, not forever after.
            home = resolve_home(arrival.tenant, n, set(candidates))
            if home is None:  # pragma: no cover - salts cover all nodes
                home = home_node(arrival.tenant, n)
            delay = 0.0
            if chosen != home:
                # Handoff: the job's input crosses the interconnect...
                nbytes = job_fill_bytes(arrival.job)
                stats.handoffs += 1
                stats.handoff_bytes += nbytes
                # ...and the tenant's first landing on this foreign
                # node drags its replicated resident state along.
                first = (arrival.tenant, chosen) not in replicated
                if first:
                    replicated.add((arrival.tenant, chosen))
                    rbytes = interconnect.replica_bytes(nbytes)
                    stats.replicas += 1
                    stats.replica_bytes += rbytes
                if links is not None:
                    complete = links.ship(home, chosen, nbytes, arrival.time)
                    if first:
                        complete = links.ship(home, chosen, rbytes, complete)
                    delay = complete - arrival.time
                else:
                    # contention="none": keep the exact historical
                    # accumulation (FP addition is non-associative;
                    # pinned outputs must stay byte-identical).
                    delay += interconnect.transfer_time(nbytes)
                    if first:
                        delay += interconnect.transfer_time(rbytes)
            # Migration: if the interconnect delay lands the job after
            # its node's fault, it must not be delivered to a dead
            # node -- re-place among nodes alive at the landing time,
            # shipping the input off the dying node.
            t_land = arrival.time + delay
            lost = False
            tried: set[int] = set()
            while t_land >= fail_time[chosen]:
                tried.add(chosen)
                later = [
                    i
                    for i in range(n)
                    if i not in tried and t_land < fail_time[i]
                ]
                if not later:
                    stats.lost_no_node[arrival.tenant] = (
                        stats.lost_no_node.get(arrival.tenant, 0) + 1
                    )
                    lost = True
                    break
                target = policy.choose(
                    dataclasses.replace(arrival, time=t_land), later, est
                )
                nbytes = job_fill_bytes(arrival.job)
                stats.migrations += 1
                stats.migration_bytes += nbytes
                if links is not None:
                    complete = links.ship(chosen, target, nbytes, t_land)
                else:
                    complete = t_land + interconnect.transfer_time(nbytes)
                if target != home and (arrival.tenant, target) not in replicated:
                    replicated.add((arrival.tenant, target))
                    rbytes = interconnect.replica_bytes(nbytes)
                    stats.replicas += 1
                    stats.replica_bytes += rbytes
                    if links is not None:
                        complete = links.ship(chosen, target, rbytes, complete)
                    else:
                        complete += interconnect.transfer_time(rbytes)
                t_land = complete
                delay = t_land - arrival.time
                chosen = target
            if lost:
                continue
            stats.placed[spec.nodes[chosen].name] += 1
            if delay > 0:
                stats.delays[arrival.job.job_id] = delay
                arrival = dataclasses.replace(
                    arrival, time=arrival.time + delay
                )
            per_node[chosen].append(arrival)
        if links is not None:
            stats.queue_delays = links.queue_delays
            stats.peak_inflight_bytes = links.peak_inflight_bytes

        # Pass 2: independent node simulations, optionally sharded.
        plans = self._node_plans(faults, tuple(node_faults))
        tasks = [
            _NodeTask(
                index=i,
                name=spec.nodes[i].name,
                node=spec.nodes[i],
                scheduler=self.scheduler,
                max_backlog=self.max_backlog,
                arrivals=tuple(per_node[i]),
                tenants=tuple(tenants),
                slo_s=slo_s,
                faults=plans.get(i),
                label=label,
                admission=admission,
                admission_margin=admission_margin,
            )
            for i in range(n)
        ]
        if shards is None or shards <= 1 or n == 1:
            outcomes = [_run_node_task(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(shards, n)) as pool:
                outcomes = list(pool.map(_run_node_task, tasks))

        # Pass 3: deterministic merge, node order.
        report = build_cluster_report(
            spec,
            scheduler=label or self.scheduler,
            slo_s=slo_s,
            tenants=list(tenants),
            outcomes=outcomes,
            stats=stats,
            admission="" if admission in ("", "shed") else admission,
        )
        outcomes = sorted(outcomes, key=lambda o: o.index)
        return ClusterResult(
            spec=spec,
            report=report,
            node_reports={o.name: o.report for o in outcomes},
            node_payloads={o.name: o.payload for o in outcomes},
            stats=stats,
        )
