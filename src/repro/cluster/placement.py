"""Cluster-level placement: the top half of the two-level scheduler.

Per-node scheduling is already solved -- each node runs one of the
existing :class:`~repro.core.scheduler.base.DispatchPolicy` families,
fed through its ``admit``/``device_lost`` hooks by the node's serving
loop.  What a cluster adds is the *upper* decision: **which node gets
each arriving job**.  A :class:`PlacementPolicy` makes that call per
arrival, in arrival order, using only information available at the
arrival's timestamp (estimated backlogs, tenant homes, node liveness)
-- never the future of the stream and never the inner simulation
state.  That causality restriction is what keeps the per-node
simulations independent, and therefore shardable across processes
with a deterministic merge (see ``cluster/runtime.py``).

Three policies, mirroring the placement framings of "Efficient
Deployment of CNN Models on Multiple In-Memory Computing Units"
(PAPERS.md):

* :class:`LeastLoadedPlacement` -- fluid backlog model: each node
  drains estimated work at one second per second; an arrival goes to
  the node with the smallest outstanding estimate and deposits its
  own predicted service time there.
* :class:`HashPlacement` -- locality-aware: a tenant's jobs hash to a
  stable **home node** (CRC32, never Python's salted ``hash``), so
  its resident state is filled once and handoff/replication costs
  vanish; dead homes rehash deterministically.
* :class:`RoundRobinPlacement` -- the oblivious baseline.

All three are deterministic: same arrival stream, same assignment.
"""

from __future__ import annotations

import abc
import zlib

from ..core.job import Job
from ..sim.events import JobArrival

__all__ = [
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "HashPlacement",
    "RoundRobinPlacement",
    "PLACEMENTS",
    "home_node",
    "estimate_service_time",
    "job_fill_bytes",
]


def home_node(tenant: str, n_nodes: int, salt: int = 0) -> int:
    """Stable home of ``tenant`` among ``n_nodes`` (CRC32, so it is
    identical across processes and interpreter runs)."""
    key = tenant if salt == 0 else f"{tenant}#{salt}"
    return zlib.crc32(key.encode()) % n_nodes


def estimate_service_time(job: Job) -> float:
    """Cheap service-time proxy for load bookkeeping: the best
    unit-allocation total time across the job's memory profiles."""
    return min(
        profile.total_time(profile.unit_arrays)
        for profile in job.profiles.values()
    )


def job_fill_bytes(job: Job) -> float:
    """Input bytes a cross-node handoff must move: the largest
    per-layer fill (profiles of one job share their input)."""
    return max(profile.fill_bytes for profile in job.profiles.values())


class PlacementPolicy(abc.ABC):
    """Chooses the node for each arrival, one arrival at a time."""

    name: str = "placement"

    def reset(self, n_nodes: int) -> None:
        """Start a new placement pass over ``n_nodes`` nodes."""
        self.n_nodes = n_nodes

    @abc.abstractmethod
    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        """Pick one of ``candidates`` (alive node indices, ascending)
        for this arrival.  ``est_service_s`` is the job's estimated
        service time, for load bookkeeping."""


class LeastLoadedPlacement(PlacementPolicy):
    """Send each arrival to the node with the least estimated backlog.

    The backlog is a fluid approximation: every node drains estimated
    work at one second of work per second of simulated time, and each
    placed job deposits its estimated service time.  Ties break on
    the lowest node index, so placement is deterministic.
    """

    name = "least-loaded"

    def reset(self, n_nodes: int) -> None:
        super().reset(n_nodes)
        self._backlog = [0.0] * n_nodes
        self._clock = 0.0

    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        elapsed = arrival.time - self._clock
        if elapsed > 0:
            self._backlog = [max(0.0, b - elapsed) for b in self._backlog]
            self._clock = arrival.time
        chosen = min(candidates, key=lambda i: (self._backlog[i], i))
        self._backlog[chosen] += est_service_s
        return chosen


class HashPlacement(PlacementPolicy):
    """Locality-aware: every tenant sticks to its hash-derived home.

    Jobs of one tenant always land on one node, so the tenant's
    resident state is replicated nowhere and handoff costs are zero
    -- at the price of ignoring load skew.  If the home node is dead,
    the tenant rehashes with an increasing salt until a live node is
    found (deterministic, and stable for the rest of the run since
    node failures are permanent).
    """

    name = "hash"

    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        alive = set(candidates)
        for salt in range(self.n_nodes + 1):
            node = home_node(arrival.tenant, self.n_nodes, salt)
            if node in alive:
                return node
        return candidates[0]  # pragma: no cover - salts cover all nodes


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through live nodes in arrival order (oblivious baseline)."""

    name = "round-robin"

    def reset(self, n_nodes: int) -> None:
        super().reset(n_nodes)
        self._next = 0

    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        chosen = candidates[self._next % len(candidates)]
        self._next += 1
        return chosen


#: Placement registry (the CLI's ``--placement`` namespace).
PLACEMENTS: dict[str, type[PlacementPolicy]] = {
    LeastLoadedPlacement.name: LeastLoadedPlacement,
    HashPlacement.name: HashPlacement,
    RoundRobinPlacement.name: RoundRobinPlacement,
}
