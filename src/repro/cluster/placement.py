"""Cluster-level placement: the top half of the two-level scheduler.

Per-node scheduling is already solved -- each node runs one of the
existing :class:`~repro.core.scheduler.base.DispatchPolicy` families,
fed through its ``admit``/``device_lost`` hooks by the node's serving
loop.  What a cluster adds is the *upper* decision: **which node gets
each arriving job**.  A :class:`PlacementPolicy` makes that call per
arrival, in arrival order, using only information available at the
arrival's timestamp (estimated backlogs, tenant homes, node liveness)
-- never the future of the stream and never the inner simulation
state.  That causality restriction is what keeps the per-node
simulations independent, and therefore shardable across processes
with a deterministic merge (see ``cluster/runtime.py``).

Four policies, mirroring the placement framings of "Efficient
Deployment of CNN Models on Multiple In-Memory Computing Units"
(PAPERS.md):

* :class:`LeastLoadedPlacement` -- fluid backlog model: each node
  drains estimated work at its **capacity-normalised** rate (a
  heterogeneous fleet's big nodes drain faster); an arrival goes to
  the node with the smallest expected wait and deposits its own
  predicted service time there.
* :class:`FeedbackPlacement` -- the fluid model, *biased by measured
  outcomes*: between replay windows it reads each node's prior-window
  :class:`~repro.serving.report.ServingReport` section (SLO
  attainment, shed rate, utilisation) and re-weights nodes, steering
  work away from nodes that underperformed for reasons the fluid
  model cannot see (derated devices, contended links, fault plans).
* :class:`HashPlacement` -- locality-aware: a tenant's jobs hash to a
  stable **home node** (CRC32, never Python's salted ``hash``), so
  its resident state is filled once and handoff/replication costs
  vanish; dead homes rehash deterministically.
* :class:`RoundRobinPlacement` -- the oblivious baseline.

All are deterministic: same arrival stream, same assignment.
"""

from __future__ import annotations

import abc
import zlib
from collections.abc import Mapping, Sequence

from ..core.job import Job
from ..core.scheduler.base import MLIMPSystem
from ..sim.events import JobArrival

__all__ = [
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "FeedbackPlacement",
    "HashPlacement",
    "RoundRobinPlacement",
    "PLACEMENTS",
    "home_node",
    "resolve_home",
    "estimate_service_time",
    "node_capacity",
    "job_fill_bytes",
]


def home_node(tenant: str, n_nodes: int, salt: int = 0) -> int:
    """Stable home of ``tenant`` among ``n_nodes`` (CRC32, so it is
    identical across processes and interpreter runs)."""
    key = tenant if salt == 0 else f"{tenant}#{salt}"
    return zlib.crc32(key.encode()) % n_nodes


def resolve_home(tenant: str, n_nodes: int, alive: set[int]) -> int | None:
    """The tenant's *effective* home among the live nodes: the first
    salted rehash (salt 0 first) that lands on a member of ``alive``.

    This is the exact search :class:`HashPlacement` runs, exposed so
    the runtime's handoff accounting agrees with it -- a tenant whose
    home node died rehashes to a stable new home and must not be
    charged a handoff for landing there (node failures are permanent,
    so the resolution is stable for the rest of the run).  If no salt
    in ``0..n_nodes`` hits a live node, the lowest live index is the
    home (the policy's fallback); ``None`` only when nothing is
    alive.
    """
    if not alive:
        return None
    for salt in range(n_nodes + 1):
        node = home_node(tenant, n_nodes, salt)
        if node in alive:
            return node
    return min(alive)


def estimate_service_time(job: Job, system: MLIMPSystem | None = None) -> float:
    """Cheap service-time proxy for load bookkeeping: the best
    unit-allocation total time across the job's memory profiles.

    With a ``system``, the estimate is **capacity-aware**: only
    device kinds the node actually has, with at least each profile's
    unit allocation of arrays (``total_time`` is undefined below the
    unit -- a smaller node simply cannot run that profile), are
    candidates.  A weak node that lost its fastest option honestly
    estimates slower service; a node that can serve nothing falls
    back to the reference estimate.  Without a ``system`` the
    reference (unit-allocation minimum over all profiles) is
    returned, byte-identical to the historical behaviour.
    """
    if system is None:
        return min(
            profile.total_time(profile.unit_arrays)
            for profile in job.profiles.values()
        )
    best = float("inf")
    for kind, profile in job.profiles.items():
        spec = system.specs.get(kind)
        if spec is None or spec.num_arrays < profile.unit_arrays:
            continue
        best = min(best, profile.total_time(profile.unit_arrays))
    if best == float("inf"):  # no runnable profile: reference estimate
        return estimate_service_time(job)
    return best


def node_capacity(system: MLIMPSystem) -> float:
    """Relative throughput proxy of one node: total ALU-cycles per
    second over its device set.  Only ratios between nodes matter --
    placement normalises by the fleet maximum -- so any consistent
    linear-in-arrays measure works; this one tracks
    :func:`~repro.serving.autoscale.scale_system` exactly (scale 2
    doubles it)."""
    return sum(
        spec.total_alus * spec.clock_mhz for spec in system.specs.values()
    )


def job_fill_bytes(job: Job) -> float:
    """Input bytes a cross-node handoff must move: the largest
    per-layer fill (profiles of one job share their input)."""
    return max(profile.fill_bytes for profile in job.profiles.values())


class PlacementPolicy(abc.ABC):
    """Chooses the node for each arrival, one arrival at a time."""

    name: str = "placement"

    def reset(
        self, n_nodes: int, capacities: Sequence[float] | None = None
    ) -> None:
        """Start a new placement pass over ``n_nodes`` nodes.

        ``capacities`` are per-node throughput proxies
        (:func:`node_capacity`); they are normalised to the fleet
        maximum, so a homogeneous fleet sees exactly ``1.0``
        everywhere and behaves byte-identically to the
        capacity-blind model.
        """
        self.n_nodes = n_nodes
        if capacities is None:
            self.capacities = [1.0] * n_nodes
        else:
            if len(capacities) != n_nodes:
                raise ValueError(
                    f"need one capacity per node, got {len(capacities)} "
                    f"for {n_nodes} nodes"
                )
            peak = max(capacities)
            if peak <= 0:
                raise ValueError("node capacities must be positive")
            self.capacities = [c / peak for c in capacities]

    @abc.abstractmethod
    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        """Pick one of ``candidates`` (alive node indices, ascending)
        for this arrival.  ``est_service_s`` is the job's estimated
        service time, for load bookkeeping."""


class LeastLoadedPlacement(PlacementPolicy):
    """Send each arrival to the node with the least expected wait.

    The backlog is a fluid approximation: every node drains estimated
    work at its capacity-normalised rate (one second of work per
    second of simulated time on the biggest node; proportionally
    slower on smaller ones), and each placed job deposits its
    estimated service time.  The arrival goes to the node whose
    backlog *divided by its drain rate* -- the expected wait -- is
    smallest; ties break on the lowest node index, so placement is
    deterministic.  On a homogeneous fleet every rate is exactly 1.0
    and the model degenerates to the original capacity-blind argmin.
    """

    name = "least-loaded"

    def reset(
        self, n_nodes: int, capacities: Sequence[float] | None = None
    ) -> None:
        super().reset(n_nodes, capacities)
        self._backlog = [0.0] * n_nodes
        self._clock = 0.0

    def _load(self, i: int) -> float:
        """Expected wait at node ``i``: backlog over drain rate."""
        return self._backlog[i] / self.capacities[i]

    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        elapsed = arrival.time - self._clock
        if elapsed > 0:
            self._backlog = [
                max(0.0, b - elapsed * c)
                for b, c in zip(self._backlog, self.capacities)
            ]
            self._clock = arrival.time
        chosen = min(candidates, key=lambda i: (self._load(i), i))
        self._backlog[chosen] += est_service_s
        return chosen


class FeedbackPlacement(LeastLoadedPlacement):
    """Least-loaded fluid core, re-weighted by measured outcomes.

    The fluid model sees only what placement deposits; it is blind to
    everything that happens *inside* a node -- derated devices, fault
    plans, admission sheds, contended ingress links.  This policy
    closes that loop: :meth:`observe_reports` reads each node's
    prior-window report section (the ``nodes`` entries a cluster
    :class:`~repro.serving.report.ServingReport` carries) and nudges a
    per-node weight -- nodes that beat the fleet's mean outcome score
    attract more work, laggards shed it.  Weights multiply the node's
    effective drain rate, persist across :meth:`reset` (so one policy
    instance learns across replay windows), and are plain floats, so
    a replay checkpoint captures them exactly.

    A fresh policy (all weights 1.0) is byte-identical to
    :class:`LeastLoadedPlacement` -- feedback only ever moves it away
    from that baseline when a window measured a difference.
    """

    name = "feedback"

    def __init__(
        self,
        weights: Sequence[float] | None = None,
        gain: float = 0.5,
        min_weight: float = 0.25,
        max_weight: float = 4.0,
    ) -> None:
        if gain < 0:
            raise ValueError(f"gain must be non-negative, got {gain}")
        if not 0 < min_weight <= 1.0 <= max_weight:
            raise ValueError(
                f"need 0 < min_weight <= 1 <= max_weight, got "
                f"{min_weight} / {max_weight}"
            )
        self.gain = gain
        self.min_weight = min_weight
        self.max_weight = max_weight
        self._weights = [float(w) for w in weights] if weights else None

    def reset(
        self, n_nodes: int, capacities: Sequence[float] | None = None
    ) -> None:
        super().reset(n_nodes, capacities)
        if self._weights is None or len(self._weights) != n_nodes:
            self._weights = [1.0] * n_nodes

    @property
    def weights(self) -> list[float]:
        """Current per-node bias weights (checkpointable plain data)."""
        return list(self._weights or [])

    def _load(self, i: int) -> float:
        return self._backlog[i] / (self.capacities[i] * self._weights[i])

    @staticmethod
    def _score(section: Mapping) -> float | None:
        """One node's window outcome in [0, 1]: attainment damped by
        shed rate and (mildly) by saturation."""
        offered = section.get("offered", 0)
        if not offered:
            return None
        attainment = float(section.get("slo_attainment", 1.0))
        shed_rate = section.get("shed", 0) / offered
        busiest = max(section.get("utilisation", {}).values(), default=0.0)
        return attainment * (1.0 - shed_rate) * (1.0 - 0.1 * busiest)

    def observe_reports(self, sections: Sequence[Mapping]) -> None:
        """Feed one finished window's per-node report sections, in
        node order (empty dicts for nodes the window never saw)."""
        if self._weights is None or len(sections) != len(self._weights):
            raise ValueError(
                "observe_reports needs one section per node "
                "(reset the policy first)"
            )
        scores = [self._score(section) for section in sections]
        known = [s for s in scores if s is not None]
        if not known:
            return
        mean = sum(known) / len(known)
        for i, score in enumerate(scores):
            if score is None:
                continue
            biased = self._weights[i] * (1.0 + self.gain * (score - mean))
            self._weights[i] = min(
                self.max_weight, max(self.min_weight, biased)
            )


class HashPlacement(PlacementPolicy):
    """Locality-aware: every tenant sticks to its hash-derived home.

    Jobs of one tenant always land on one node, so the tenant's
    resident state is replicated nowhere and handoff costs are zero
    -- at the price of ignoring load skew.  If the home node is dead,
    the tenant rehashes with an increasing salt until a live node is
    found (deterministic, and stable for the rest of the run since
    node failures are permanent).
    """

    name = "hash"

    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        node = resolve_home(arrival.tenant, self.n_nodes, set(candidates))
        if node is not None:
            return node
        return candidates[0]  # pragma: no cover - candidates is non-empty


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through live nodes in arrival order (oblivious baseline)."""

    name = "round-robin"

    def reset(
        self, n_nodes: int, capacities: Sequence[float] | None = None
    ) -> None:
        super().reset(n_nodes, capacities)
        self._next = 0

    def choose(
        self, arrival: JobArrival, candidates: list[int], est_service_s: float
    ) -> int:
        chosen = candidates[self._next % len(candidates)]
        self._next += 1
        return chosen


#: Placement registry (the CLI's ``--placement`` namespace).
PLACEMENTS: dict[str, type[PlacementPolicy]] = {
    LeastLoadedPlacement.name: LeastLoadedPlacement,
    FeedbackPlacement.name: FeedbackPlacement,
    HashPlacement.name: HashPlacement,
    RoundRobinPlacement.name: RoundRobinPlacement,
}
