"""In-SRAM bit-serial compute device (Neural Cache / Duality Cache).

The last-level cache of a dual-socket server is re-purposed for
bit-serial computing: operands are bit-transposed so each 16-bit value
occupies 16 wordlines of one bitline, and every bitline peripheral is a
1-bit ALU.  Multi-row activation yields NOR/AND on BL/BLB which the
reconfigurable sense amplifier combines into a full adder (paper
Fig. 2); an n-bit add takes n cycles and an n-bit multiply
``n^2 + 3n - 2`` cycles (302 cycles at n=16, matching Table III).

The paper reserves *half* of the LLC for compute (the other half stays
a normal cache, per Duality Cache), giving 5,120 compute arrays of
256x256 cells at 2.5 GHz -- 1.31 M bit-serial ALUs.
"""

from __future__ import annotations

from .base import ArrayGeometry, MemoryKind, MemorySpec

__all__ = ["SRAM_SPEC", "bit_serial_add_cycles", "bit_serial_mul_cycles"]


def bit_serial_add_cycles(bits: int) -> int:
    """Cycles for a bit-serial add of two ``bits``-wide operands."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return bits


def bit_serial_mul_cycles(bits: int) -> int:
    """Cycles for a bit-serial multiply: ``n^2 + 3n - 2`` (paper II-B1)."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return bits * bits + 3 * bits - 2


#: Table III configuration: 256x256 arrays, 5,120 of them (half of an
#: 80 MB dual-socket LLC), 256 ALUs/array, 2.5 GHz, 302-cycle MAC.
SRAM_SPEC = MemorySpec(
    kind=MemoryKind.SRAM,
    name="in-SRAM (Duality Cache)",
    geometry=ArrayGeometry(rows=256, cols=256, bits_per_cell=1),
    num_arrays=5120,
    alus_per_array=256,
    clock_mhz=2500.0,
    mac_cycles_2op=bit_serial_mul_cycles(16),  # 302
    multi_operand_alpha=2.0,
    max_operands=8,
    pack_limit=256,
    energy_per_mac_pj=100.0,
    energy_per_bitop_pj=0.5,
    fill_bandwidth_gbps=76.8,  # fills stream from DDR4-2400 x4 channels
    copy_bandwidth_gbps=1024.0,  # replication rides the cache interconnect
    write_cost_factor=1.0,
    max_outstanding_jobs=8,
    mb_per_mm2=0.6,
)
