"""NVM endurance tracking (an extension the paper motivates).

Section II-A: "NVMs have limited endurance (and high write
energy/delay) which curtails the number of writes the memories can
reliably sustain."  The paper's scheduler does not act on this; this
module provides the bookkeeping a production MLIMP runtime would need:
a per-device wear tracker fed by the dispatcher's fill/replication
traffic, lifetime projection under a measured write rate, and a
wear-aware job-admission check.

Cell-write accounting assumes ideal wear levelling across the
device's cells (the standard first-order model): lifetime ends when
``endurance_writes`` mean writes per cell are consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.energy import EnergyCategory
from .base import MemorySpec

if TYPE_CHECKING:  # avoid a core <-> memories import cycle
    from ..core.dispatcher import DispatchResult
    from ..faults.plan import FaultEvent

__all__ = ["WearTracker", "project_lifetime_seconds"]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass
class WearTracker:
    """Accumulates cell writes against a device's endurance budget."""

    spec: MemorySpec
    endurance_writes: float
    written_bytes: float = 0.0
    busy_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.endurance_writes <= 0:
            raise ValueError("endurance must be positive")

    # ------------------------------------------------------------------
    @property
    def total_cell_writes_budget(self) -> float:
        """Device-lifetime budget in bytes written (ideal levelling)."""
        return self.endurance_writes * self.spec.capacity_bytes

    @property
    def wear_fraction(self) -> float:
        """Fraction of the endurance budget consumed so far."""
        return self.written_bytes / self.total_cell_writes_budget

    @property
    def mean_writes_per_cell(self) -> float:
        return self.written_bytes / self.spec.capacity_bytes

    # ------------------------------------------------------------------
    def record_bytes(self, nbytes: float, busy_seconds: float = 0.0) -> None:
        if nbytes < 0 or busy_seconds < 0:
            raise ValueError("negative traffic")
        self.written_bytes += nbytes
        self.busy_seconds += busy_seconds

    def record_result(self, result: "DispatchResult") -> None:
        """Charge a dispatch run's fill + replication traffic.

        The energy ledger already holds the per-device write traffic
        (fills and replicas are charged at ``fill_energy_pj_per_byte``),
        so bytes are recovered from it exactly.
        """
        per_byte = self.spec.fill_energy_pj_per_byte * 1e-12
        device = self.spec.kind.value
        joules = result.energy.get(EnergyCategory.FILL, device) + result.energy.get(
            EnergyCategory.REPLICATION, device
        )
        self.record_bytes(joules / per_byte, busy_seconds=result.makespan)

    # ------------------------------------------------------------------
    def admit(self, job_fill_bytes: float, reserve_fraction: float = 0.1) -> bool:
        """Wear-aware admission: refuse writes that would cross into
        the endurance reserve."""
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        budget = self.total_cell_writes_budget * (1.0 - reserve_fraction)
        return self.written_bytes + job_fill_bytes <= budget

    def projected_lifetime_seconds(self) -> float:
        """Device lifetime at the observed write rate (inf if unworn)."""
        if self.written_bytes <= 0 or self.busy_seconds <= 0:
            return float("inf")
        rate = self.written_bytes / self.busy_seconds  # bytes/s
        return self.total_cell_writes_budget / rate

    def projected_lifetime_years(self) -> float:
        return self.projected_lifetime_seconds() / _SECONDS_PER_YEAR

    # -- fault-injection bridge (repro.faults) -------------------------
    def remaining_bytes(self, reserve_fraction: float = 0.0) -> float:
        """Write traffic left before the endurance budget (minus an
        optional reserve) is exhausted."""
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        budget = self.total_cell_writes_budget * (1.0 - reserve_fraction)
        return max(0.0, budget - self.written_bytes)

    def wearout_event(self, reserve_fraction: float = 0.0) -> "FaultEvent":
        """A :class:`~repro.faults.plan.FaultEvent` that kills this
        device once a run writes the tracker's *remaining* endurance
        budget -- the bridge from long-horizon wear bookkeeping to the
        fault injector's per-run traffic threshold.
        """
        from ..faults.plan import FaultEvent, FaultKind

        remaining = self.remaining_bytes(reserve_fraction)
        return FaultEvent(
            kind=FaultKind.WEAROUT,
            device=self.spec.kind,
            # A fully-worn device dies on its first write: keep the
            # threshold strictly positive so the event validates.
            threshold_bytes=max(remaining, 1.0),
            reason=(
                f"endurance budget exhausted "
                f"({self.mean_writes_per_cell:.3g} writes/cell consumed)"
            ),
        )


def project_lifetime_seconds(
    spec: MemorySpec,
    endurance_writes: float,
    write_bytes_per_second: float,
) -> float:
    """Closed-form lifetime for a sustained write rate."""
    if write_bytes_per_second <= 0:
        return float("inf")
    return endurance_writes * spec.capacity_bytes / write_bytes_per_second
