"""Functional analog ReRAM crossbar model (paper II-B3, Fig. 3).

Weights are programmed as cell conductances (2 bits per cell, Table
III); driving input voltages on the wordlines makes each bitline
accumulate the current sum ``sum_i G_ij * V_i`` per Kirchhoff's law --
a native multi-operand MAC.  Full-precision operands are handled
ISAAC-style: a 16-bit weight is spread over 8 consecutive 2-bit cells
of a wordline, inputs are streamed as 1-bit slices through the DACs,
and the peripheral shift-and-add recombines the partial sums sensed by
the ADC each cycle.

The model quantises the bitline current through a configurable-width
ADC, so tests can show both the exact-arithmetic case (wide ADC) and
the saturation error of an undersized ADC -- the precision concern the
in-ReRAM literature engineers around.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AnalogCrossbar"]


@dataclass
class AnalogCrossbar:
    """One crossbar tile: ``rows`` wordlines x ``cols`` bitline cells.

    ``bits_per_cell`` and the geometry default to the Table III
    configuration (128 x 128 x 2 bit).  ``weight_bits`` values occupy
    ``weight_bits / bits_per_cell`` adjacent cells, so a 128-cell row
    holds 16 full-precision weights -- the ``elements_per_wordline``
    the kernel mappings assume.
    """

    rows: int = 128
    cols: int = 128
    bits_per_cell: int = 2
    weight_bits: int = 16
    adc_bits: int = 32
    cycles: int = 0
    _conductance: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.weight_bits % self.bits_per_cell:
            raise ValueError("weight_bits must be a multiple of bits_per_cell")
        if self.cells_per_weight > self.cols:
            raise ValueError("a weight does not fit one wordline")
        self._conductance = np.zeros((self.rows, self.cols), dtype=np.int64)

    @property
    def cells_per_weight(self) -> int:
        return self.weight_bits // self.bits_per_cell

    @property
    def weights_per_row(self) -> int:
        return self.cols // self.cells_per_weight

    # ------------------------------------------------------------------
    def program(self, weights) -> None:
        """Program a (rows x weights_per_row) unsigned weight matrix.

        Each weight is decomposed into ``bits_per_cell``-wide slices,
        most significant cell first, exactly one conductance level per
        cell.
        """
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (self.rows, self.weights_per_row):
            raise ValueError(
                f"expected ({self.rows}, {self.weights_per_row}) weights"
            )
        if weights.min() < 0 or weights.max() >= (1 << self.weight_bits):
            raise ValueError("weight out of range")
        levels = 1 << self.bits_per_cell
        for w in range(self.weights_per_row):
            value = weights[:, w].copy()
            for cell in range(self.cells_per_weight - 1, -1, -1):
                self._conductance[:, w * self.cells_per_weight + cell] = value % levels
                value //= levels
        # Cell programming is slow; charged by the timing model, not here.

    # ------------------------------------------------------------------
    def _analog_cycle(self, voltages: np.ndarray) -> np.ndarray:
        """One analog step: bitline currents for 1-bit wordline inputs,
        quantised by the ADC."""
        currents = voltages.astype(np.int64) @ self._conductance
        ceiling = (1 << self.adc_bits) - 1
        self.cycles += 1
        return np.minimum(currents, ceiling)

    def mac(self, inputs, active_rows=None) -> np.ndarray:
        """Multi-operand MAC: ``inputs @ weights`` over active rows.

        Streams the ``weight_bits``-wide inputs one bit-slice per cycle
        (the Table III 8-cycle figure has 2 input bits per cycle; we
        stream single bits and count ``weight_bits`` cycles, the same
        published constant up to the DAC width) and recombines cell
        positions with the peripheral shift-and-add.
        Returns one value per stored weight column.
        """
        inputs = np.asarray(inputs, dtype=np.int64)
        if inputs.shape != (self.rows,):
            raise ValueError(f"expected {self.rows} inputs")
        if inputs.min() < 0 or inputs.max() >= (1 << self.weight_bits):
            raise ValueError("input out of range")
        mask = np.ones(self.rows, dtype=bool)
        if active_rows is not None:
            mask = np.zeros(self.rows, dtype=bool)
            mask[np.asarray(active_rows)] = True

        levels = 1 << self.bits_per_cell
        column_totals = np.zeros(self.cols, dtype=np.int64)
        for bit in range(self.weight_bits):
            voltages = (((inputs >> bit) & 1).astype(bool) & mask)
            column_totals += self._analog_cycle(voltages) << bit

        # Peripheral shift-and-add over the cell positions of each
        # weight (most significant cell first).
        out = np.zeros(self.weights_per_row, dtype=np.int64)
        for w in range(self.weights_per_row):
            acc = np.int64(0)
            for cell in range(self.cells_per_weight):
                shift = self.bits_per_cell * (self.cells_per_weight - 1 - cell)
                acc += column_totals[w * self.cells_per_weight + cell] << shift
            out[w] = acc
        return out
