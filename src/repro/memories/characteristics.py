"""Memory technology characteristics (paper Figure 1).

Figure 1 of the paper compares the energy per access, delay, and the
metrics from which available compute parallelism can be estimated
(sense-amplifier density, cell structure) across memory technologies.
The paper plots relative values without a numeric table; the constants
here are representative per-technology figures assembled from the
literature the paper builds on (Compute Caches, Neural Cache, Ambit,
IMP/ISAAC) and standard technology surveys.  They are used to
regenerate the Figure 1 comparison and to sanity-check the Table III
device specs; the simulator's timing comes from the per-device specs,
not from this table.

Parallelism is estimated as the paper describes: every bitline
operation completes at a sense amplifier, so available parallelism per
unit area follows the SA density -- which falls when many rows share
one SA stripe (DRAM, NAND) and rises with per-array private SAs
(SRAM).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyProfile", "TECHNOLOGIES", "technology", "parallelism_rank"]


@dataclass(frozen=True)
class TechnologyProfile:
    """One bar group of Figure 1.

    Energies are per-bit dynamic access energies; latencies are array
    access times; ``cell_size_f2`` is the cell footprint in F^2;
    ``rows_per_sa`` is how many rows share one sense amplifier
    (array height between SA stripes).
    """

    name: str
    read_energy_pj_per_bit: float
    write_energy_pj_per_bit: float
    read_latency_ns: float
    write_latency_ns: float
    cell_size_f2: float
    rows_per_sa: int
    endurance_writes: float
    volatile: bool

    @property
    def sa_density(self) -> float:
        """Sense amplifiers per unit cell area (arbitrary units).

        One SA serves one column of ``rows_per_sa`` cells, so SA
        density per area is ``1 / (cell_size * rows_per_sa)``.
        """
        return 1.0 / (self.cell_size_f2 * self.rows_per_sa)

    @property
    def parallelism_per_area(self) -> float:
        """Relative available compute parallelism per unit area.

        Normalised so SRAM == 1.0 (computed lazily in
        :func:`parallelism_rank`); raw value equals ``sa_density``.
        """
        return self.sa_density


#: Representative technology profiles (Figure 1 bar groups).
TECHNOLOGIES: dict[str, TechnologyProfile] = {
    "SRAM": TechnologyProfile(
        name="SRAM",
        read_energy_pj_per_bit=0.2,
        write_energy_pj_per_bit=0.2,
        read_latency_ns=1.0,
        write_latency_ns=1.0,
        cell_size_f2=150.0,
        rows_per_sa=256,
        endurance_writes=1e16,
        volatile=True,
    ),
    "eDRAM": TechnologyProfile(
        name="eDRAM",
        read_energy_pj_per_bit=0.4,
        write_energy_pj_per_bit=0.4,
        read_latency_ns=3.0,
        write_latency_ns=3.0,
        cell_size_f2=60.0,
        rows_per_sa=512,
        endurance_writes=1e16,
        volatile=True,
    ),
    "DRAM": TechnologyProfile(
        name="DRAM",
        read_energy_pj_per_bit=1.0,
        write_energy_pj_per_bit=1.0,
        read_latency_ns=30.0,
        write_latency_ns=30.0,
        cell_size_f2=6.0,
        # Bank-level compute: one SA stripe (row buffer) per 8192-row
        # bank, which is what makes DRAM parallelism low despite its
        # tiny cells (paper II-A).
        rows_per_sa=8192,
        endurance_writes=1e16,
        volatile=True,
    ),
    "STT-RAM": TechnologyProfile(
        name="STT-RAM",
        read_energy_pj_per_bit=1.5,
        write_energy_pj_per_bit=8.0,
        read_latency_ns=10.0,
        write_latency_ns=20.0,
        cell_size_f2=20.0,
        rows_per_sa=1024,
        endurance_writes=1e12,
        volatile=False,
    ),
    "ReRAM": TechnologyProfile(
        name="ReRAM",
        read_energy_pj_per_bit=2.0,
        write_energy_pj_per_bit=20.0,
        read_latency_ns=50.0,
        write_latency_ns=200.0,
        cell_size_f2=4.0,
        # 128 rows per crossbar, but ADCs are shared across 8 columns,
        # so the effective rows-per-sense-resource is 8x higher.
        rows_per_sa=1024,
        endurance_writes=1e8,
        volatile=False,
    ),
    "NAND": TechnologyProfile(
        name="NAND",
        read_energy_pj_per_bit=5.0,
        write_energy_pj_per_bit=50.0,
        read_latency_ns=25_000.0,
        write_latency_ns=300_000.0,
        cell_size_f2=1.0,
        rows_per_sa=65536,
        endurance_writes=1e4,
        volatile=False,
    ),
}


def technology(name: str) -> TechnologyProfile:
    """Look up a technology profile by (case-insensitive) name."""
    key = name.strip()
    for candidate in (key, key.upper(), key.capitalize()):
        if candidate in TECHNOLOGIES:
            return TECHNOLOGIES[candidate]
    lowered = {k.lower(): v for k, v in TECHNOLOGIES.items()}
    if key.lower() in lowered:
        return lowered[key.lower()]
    raise KeyError(f"unknown memory technology: {name!r}")


def parallelism_rank() -> list[tuple[str, float]]:
    """Technologies sorted by parallelism per area, normalised to SRAM.

    Reproduces the ordering discussed around Figure 1: despite small
    cells, DRAM and NAND offer low compute parallelism because many
    cells share each sense amplifier.
    """
    sram = TECHNOLOGIES["SRAM"].parallelism_per_area
    ranked = sorted(
        ((name, profile.parallelism_per_area / sram) for name, profile in TECHNOLOGIES.items()),
        key=lambda item: item[1],
        reverse=True,
    )
    return ranked
