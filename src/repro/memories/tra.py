"""Functional Ambit triple-row-activation model (paper II-B2).

Ambit computes in DRAM by activating three wordlines at once: charge
sharing settles every bitline to the **majority** of the three cells,
which is written back into all three rows.  With one row preset as a
control ``C``, ``MAJ(a, b, 0) = a AND b`` and ``MAJ(a, b, 1) = a OR
b``; a dual-contact cell provides NOT, and AND + NOT = NAND completes
a functionally-universal set.

:class:`AmbitBank` implements exactly that contract: the only compute
primitive is :meth:`tra` (destructive majority) plus RowClone copies
and dual-contact NOT -- every higher-level operation is *derived*, and
the derivations are what the tests validate.  Command-cycle accounting
matches :mod:`repro.isa.timing`'s 4-cycle TRA estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AmbitBank"]

#: Command-bus cycles per primitive (ACT/ACT/PRE spacing).
TRA_CYCLES = 4
ROWCLONE_CYCLES = 2
NOT_CYCLES = 4


@dataclass
class AmbitBank:
    """A DRAM subarray with TRA-capable designated compute rows."""

    columns: int
    rows: int = 16
    cycles: int = 0
    _data: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 4:
            raise ValueError("bank needs >= 4 rows and >= 1 column")

    # -- row management -------------------------------------------------
    def write_row(self, name: str, bits) -> None:
        """Host write via the I/O bus (not a compute primitive)."""
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.columns,):
            raise ValueError(f"expected {self.columns} column bits")
        if name not in self._data and len(self._data) >= self.rows:
            raise ValueError("bank rows exhausted")
        self._data[name] = bits.copy()

    def set_control(self, name: str, value: bool) -> None:
        """Preset a control row to all-0 (AND) or all-1 (OR)."""
        self.write_row(name, np.full(self.columns, value, dtype=bool))

    def read_row(self, name: str) -> np.ndarray:
        return self._data[name].copy()

    # -- the three physical primitives ----------------------------------
    def rowclone(self, dst: str, src: str) -> None:
        """In-DRAM bulk copy (activate src, activate dst)."""
        if src not in self._data:
            raise KeyError(src)
        if dst not in self._data and len(self._data) >= self.rows:
            raise ValueError("bank rows exhausted")
        self._data[dst] = self._data[src].copy()
        self.cycles += ROWCLONE_CYCLES

    def tra(self, a: str, b: str, c: str) -> None:
        """Triple-row activation: all three rows become MAJ(a, b, c).

        Destructive, exactly like the hardware -- operands must be
        RowCloned into scratch rows first if their values are needed
        again (Ambit's B-group choreography).
        """
        va, vb, vc = self._data[a], self._data[b], self._data[c]
        majority = (
            va.astype(np.int8) + vb.astype(np.int8) + vc.astype(np.int8)
        ) >= 2
        self._data[a] = majority.copy()
        self._data[b] = majority.copy()
        self._data[c] = majority.copy()
        self.cycles += TRA_CYCLES

    def not_row(self, dst: str, src: str) -> None:
        """Dual-contact-cell NOT into ``dst``."""
        if dst not in self._data and len(self._data) >= self.rows:
            raise ValueError("bank rows exhausted")
        self._data[dst] = ~self._data[src]
        self.cycles += NOT_CYCLES

    # -- derived logic (the paper's argument for completeness) ----------
    def and_rows(self, dst: str, a: str, b: str) -> None:
        """dst = a AND b via MAJ(a, b, 0) on scratch copies."""
        self.rowclone("_t0", a)
        self.rowclone("_t1", b)
        self.set_control("_ctl", False)
        self.tra("_t0", "_t1", "_ctl")
        self.rowclone(dst, "_t0")

    def or_rows(self, dst: str, a: str, b: str) -> None:
        """dst = a OR b via MAJ(a, b, 1) on scratch copies."""
        self.rowclone("_t0", a)
        self.rowclone("_t1", b)
        self.set_control("_ctl", True)
        self.tra("_t0", "_t1", "_ctl")
        self.rowclone(dst, "_t0")

    def nand_rows(self, dst: str, a: str, b: str) -> None:
        """dst = a NAND b -- the universal operator (AND then NOT)."""
        self.and_rows("_t2", a, b)
        self.not_row(dst, "_t2")

    def xor_rows(self, dst: str, a: str, b: str) -> None:
        """dst = a XOR b composed purely from NAND (universality demo)."""
        self.nand_rows("_x0", a, b)
        self.nand_rows("_x1", a, "_x0")
        self.nand_rows("_x2", b, "_x0")
        self.nand_rows(dst, "_x1", "_x2")
