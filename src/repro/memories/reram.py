"""In-ReRAM analog compute device (IMP / ISAAC-style crossbars).

ReRAM cells have linear I-V characteristics: driving a sub-threshold
read voltage through a cell produces a bitline current proportional to
the product of cell conductance and input voltage, and currents from
all activated rows sum on the shared bitline (Kirchhoff) -- a native
multi-operand analog MAC.  Inputs are streamed bit-parallel through
DACs, partial results are shifted-and-added at the periphery, and LUTs
provide non-native operations (paper III-B1).

The evaluated accelerator is a 336 MB chip (scaled down from IMP) of
86,016 crossbars, each 128x128 with 2-bit cells, clocked at 20 MHz.
A 16-bit MAC streams 16/2 = 8 input bit-slices, i.e. 8 cycles/op
regardless of how many rows are being accumulated (up to the 128-row
crossbar height), which is the flat 2.5 MOPS in Table III and the
reason ReRAM wins when jobs expose many-operand accumulations
(Fig. 10).

ReRAM cell *writes* are slow and energy-hungry and endurance-limited,
so loading stationary data into the crossbars carries a write-cost
multiplier; reuse across a batch amortises it.
"""

from __future__ import annotations

from .base import ArrayGeometry, MemoryKind, MemorySpec

__all__ = ["RERAM_SPEC", "reram_mac_cycles"]


def reram_mac_cycles(bits: int, bits_per_cell: int = 2) -> int:
    """Cycles for one analog MAC: one per input bit-slice."""
    if bits <= 0 or bits_per_cell <= 0:
        raise ValueError("bits and bits_per_cell must be positive")
    return max(1, bits // bits_per_cell)


RERAM_SPEC = MemorySpec(
    kind=MemoryKind.RERAM,
    name="in-ReRAM (IMP)",
    geometry=ArrayGeometry(rows=128, cols=128, bits_per_cell=2),
    num_arrays=86016,
    alus_per_array=16,
    clock_mhz=20.0,
    mac_cycles_2op=reram_mac_cycles(16),  # 8
    multi_operand_alpha=0.0,
    max_operands=128,
    pack_limit=16,
    energy_per_mac_pj=20.0,
    energy_per_bitop_pj=2.0,
    fill_bandwidth_gbps=38.4,  # off-chip link to the accelerator
    copy_bandwidth_gbps=128.0,  # replication: row writes across many crossbars
    write_cost_factor=1.5,  # cell programming overhead on the fill path
    max_outstanding_jobs=8,
    mb_per_mm2=2.5,
    fill_energy_pj_per_byte=20.0,  # NVM cell programming is expensive
)
