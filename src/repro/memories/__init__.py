"""In-memory compute device models (SRAM / DRAM / ReRAM).

Public surface:

* :class:`~repro.memories.base.MemorySpec` and
  :class:`~repro.memories.base.MemoryKind` -- device descriptions.
* ``SRAM_SPEC`` / ``DRAM_SPEC`` / ``RERAM_SPEC`` -- the Table III
  configuration of the paper.
* :class:`~repro.memories.allocator.ScratchpadAllocator` -- VLS-style
  coarse-grained workspace allocation.
* :mod:`~repro.memories.characteristics` -- the Figure 1 technology
  comparison.
"""

from .allocator import Allocation, AllocationError, ScratchpadAllocator
from .bitserial import BitSerialArray
from .crossbar import AnalogCrossbar
from .tra import AmbitBank
from .base import (
    ELEMENT_BITS,
    ELEMENT_BYTES,
    ArrayGeometry,
    DeviceState,
    MemoryKind,
    MemorySpec,
)
from .characteristics import TECHNOLOGIES, TechnologyProfile, parallelism_rank, technology
from .dram import DRAM_SPEC
from .reram import RERAM_SPEC
from .sram import SRAM_SPEC, bit_serial_add_cycles, bit_serial_mul_cycles

__all__ = [
    "ELEMENT_BITS",
    "ELEMENT_BYTES",
    "BitSerialArray",
    "AnalogCrossbar",
    "AmbitBank",
    "Allocation",
    "AllocationError",
    "ArrayGeometry",
    "DeviceState",
    "MemoryKind",
    "MemorySpec",
    "ScratchpadAllocator",
    "SRAM_SPEC",
    "DRAM_SPEC",
    "RERAM_SPEC",
    "TECHNOLOGIES",
    "TechnologyProfile",
    "technology",
    "parallelism_rank",
    "bit_serial_add_cycles",
    "bit_serial_mul_cycles",
    "DEFAULT_SPECS",
]

#: The evaluated MLIMP configuration: one spec per memory layer.
DEFAULT_SPECS: dict[MemoryKind, MemorySpec] = {
    MemoryKind.SRAM: SRAM_SPEC,
    MemoryKind.DRAM: DRAM_SPEC,
    MemoryKind.RERAM: RERAM_SPEC,
}
