"""Core abstractions for in-memory compute devices.

The MLIMP paper (MICRO 2022) re-purposes three layers of the memory
hierarchy as compute devices:

* the SRAM last-level cache (bit-serial, Neural Cache / Duality Cache),
* the DRAM main memory (charge-sharing triple-row activation, Ambit),
* a ReRAM accelerator chip (analog crossbar MAC, IMP / ISAAC).

Each device is described by a :class:`MemorySpec` capturing the array
geometry, clock, SIMD-lane count, and the timing/energy parameters the
rest of the simulator consumes.  The values for the evaluated
configuration (Table III of the paper) live in
:mod:`repro.memories.sram`, :mod:`repro.memories.dram` and
:mod:`repro.memories.reram`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

__all__ = [
    "MemoryKind",
    "ArrayGeometry",
    "MemorySpec",
    "ELEMENT_BITS",
    "ELEMENT_BYTES",
]

#: Default operand precision.  The paper quantises GNN features and
#: weights to 16-bit fixed point (Section IV, "Benchmarks").
ELEMENT_BITS = 16
ELEMENT_BYTES = ELEMENT_BITS // 8


class MemoryKind(enum.Enum):
    """The three in-memory compute layers evaluated in the paper."""

    SRAM = "sram"
    DRAM = "dram"
    RERAM = "reram"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # Members are singletons compared by identity, so the id-based C
    # slot hash is equivalent to Enum's Python-level name hash -- and
    # millions of profile/spec dict lookups per run stop paying a
    # Python frame per lookup.  (Name hashes were never stable across
    # processes anyway: str hashing is seed-randomised.)
    __hash__ = object.__hash__


@dataclass(frozen=True)
class ArrayGeometry:
    """Physical geometry of one memory array (the allocation quantum).

    ``rows`` and ``cols`` are in *cells*; ``bits_per_cell`` is 1 for
    SRAM/DRAM and 2 for the multi-level-cell ReRAM configuration of
    Table III.
    """

    rows: int
    cols: int
    bits_per_cell: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array geometry must have positive dimensions")
        if self.bits_per_cell <= 0:
            raise ValueError("bits_per_cell must be positive")

    @property
    def bits(self) -> int:
        """Total storage bits of one array."""
        return self.rows * self.cols * self.bits_per_cell

    @property
    def bytes(self) -> int:
        return self.bits // 8


@dataclass(frozen=True)
class MemorySpec:
    """Static description of one in-memory compute device.

    Parameters mirror Table III of the paper plus the energy and
    bandwidth constants needed by the simulator.  Timing is expressed
    in *device* cycles; :meth:`seconds` converts using ``clock_mhz``.

    Attributes
    ----------
    kind:
        Which memory layer this spec describes.
    geometry:
        Per-array geometry; arrays are the allocation quantum used by
        the scheduler.
    num_arrays:
        Number of compute-capable arrays in the device.
    alus_per_array:
        SIMD lanes per array (bitline groups that can hold one
        element-wide operand).
    clock_mhz:
        Device clock for in-memory operations.
    mac_cycles_2op:
        Cycles for one 16-bit multiply-accumulate with two operands
        (Table III, "cycles/op (2ops)").
    multi_operand_alpha:
        Scaling exponent for k-operand accumulation:
        ``cycles(k) = mac_cycles_2op * (k / 2) ** alpha``.  Bit-serial
        devices (SRAM/DRAM) must widen operand precision as more
        values are accumulated and their multiply cost is quadratic in
        bit width, so ``alpha == 2`` (this reproduces the Table III
        MOPS drop 8.278 -> 2.070 from "2ops" to "4ops" for SRAM).  The
        analog ReRAM crossbar accumulates many rows on the shared
        bitline in a single fixed-width operation (``alpha == 0``,
        MOPS stays at 2.5).  Kernel mappings for bit-serial devices
        avoid this penalty by chaining 2-operand MACs instead.
    max_operands:
        Largest native k-operand accumulation (ReRAM: rows that can be
        activated simultaneously; bit-serial devices: 2).
    pack_limit:
        How many independent SIMD vectors can be packed side by side
        in one array row group.  DRAM rows are filled by row-wide DMA
        and cannot scatter independent jobs into disjoint column
        groups, hence ``pack_limit == 1`` there; SRAM/ReRAM accept
        fine-grained fills.
    energy_per_mac_pj:
        Dynamic energy of one 16-bit 2-operand MAC, in picojoules.
    energy_per_bitop_pj:
        Dynamic energy of one word-wide (16-bit) bitwise operation.
    fill_bandwidth_gbps:
        Bandwidth for loading operands into the compute region from
        the next level of the hierarchy (GB/s).
    copy_bandwidth_gbps:
        Internal replication bandwidth (in-array copies; RowClone-like
        for DRAM).
    write_cost_factor:
        Multiplier on fill time for technologies with expensive writes
        (ReRAM cell programming); 1.0 for SRAM/DRAM.
    max_outstanding_jobs:
        Concurrent jobs one device controller sustains (paper: 8).
    mb_per_mm2:
        Density, used only for reporting Table III.
    """

    kind: MemoryKind
    name: str
    geometry: ArrayGeometry
    num_arrays: int
    alus_per_array: int
    clock_mhz: float
    mac_cycles_2op: int
    multi_operand_alpha: float
    max_operands: int
    pack_limit: int
    energy_per_mac_pj: float
    energy_per_bitop_pj: float
    fill_bandwidth_gbps: float
    copy_bandwidth_gbps: float
    write_cost_factor: float = 1.0
    max_outstanding_jobs: int = 8
    mb_per_mm2: float = 0.0
    element_bits: int = ELEMENT_BITS
    #: Dynamic energy of writing one byte into the compute region
    #: (fills and replication); high for NVM cell programming.
    fill_energy_pj_per_byte: float = 2.0

    def __post_init__(self) -> None:
        if self.num_arrays <= 0:
            raise ValueError("num_arrays must be positive")
        if self.alus_per_array <= 0:
            raise ValueError("alus_per_array must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        if self.max_operands < 2:
            raise ValueError("max_operands must be at least 2")
        if self.pack_limit < 1:
            raise ValueError("pack_limit must be at least 1")

    # ------------------------------------------------------------------
    # Derived capacity / parallelism figures (Table III columns).
    # ------------------------------------------------------------------
    @property
    def total_alus(self) -> int:
        """Total SIMD lanes across the device."""
        return self.num_arrays * self.alus_per_array

    @property
    def capacity_bytes(self) -> int:
        return self.num_arrays * self.geometry.bytes

    @property
    def capacity_mb(self) -> float:
        return self.capacity_bytes / float(1 << 20)

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / (self.clock_mhz * 1e6)

    def seconds(self, cycles: float) -> float:
        """Convert a device-cycle count into seconds."""
        return cycles * self.cycle_time_s

    # ------------------------------------------------------------------
    # MAC throughput model.
    # ------------------------------------------------------------------
    def mac_cycles(self, operands: int = 2) -> float:
        """Cycles for one k-operand 16-bit MAC on one SIMD lane.

        ``operands`` counts the values being accumulated (the paper's
        "2ops" column is an ``a*b`` product accumulated into a running
        sum).  ReRAM performs multi-operand accumulation natively on
        the shared bitline; bit-serial devices sequence 2-operand MACs.
        """
        if operands < 1:
            raise ValueError("operands must be >= 1")
        k = min(max(operands, 2), self.max_operands)
        base = self.mac_cycles_2op * (k / 2.0) ** self.multi_operand_alpha
        if operands > self.max_operands:
            # Chain several maximal-width accumulations.
            chains = math.ceil(operands / self.max_operands)
            return base * chains
        return base

    def mac_mops(self, operands: int = 2) -> float:
        """Per-lane MAC throughput in MOPS, as reported in Table III.

        One "op" is one k-operand multiply-accumulate, matching the
        paper's "MOPS (2ops)" / "MOPS (4ops)" columns (SRAM 8.278 ->
        2.070, DRAM 0.199 -> 0.050, ReRAM flat at 2.500).
        """
        cycles = self.mac_cycles(operands)
        return self.clock_mhz / cycles

    def aggregate_mac_gops(self, operands: int = 2) -> float:
        """Whole-device MAC throughput (GOPS) at full utilisation."""
        return self.mac_mops(operands) * self.total_alus / 1e3

    # ------------------------------------------------------------------
    # Allocation helpers.
    # ------------------------------------------------------------------
    def usable_lanes(self, vector_width: int | None = None) -> int:
        """SIMD lanes one array can apply to data of this shape.

        ``vector_width`` is the workload's natural SIMD vector (e.g.
        the GNN feature dimension); an array fits at most
        ``pack_limit`` independent vectors side by side.  DRAM rows
        are filled by row-wide DMA and cannot pack narrow vectors
        (``pack_limit == 1``), which reproduces the paper's
        observation that GNN-sized vectors leave DRAM SIMD slots
        underutilised.  ``None`` means a streaming kernel that fills
        the array completely.
        """
        if vector_width is None:
            return self.alus_per_array
        if vector_width <= 0:
            raise ValueError("vector_width must be positive")
        return min(self.alus_per_array, self.pack_limit * vector_width)

    def array_capacity_elements(self) -> int:
        """Data elements one array can store at ``element_bits``."""
        return self.geometry.bits // self.element_bits

    def arrays_for_bytes(self, nbytes: int) -> int:
        """Smallest array count whose capacity covers ``nbytes``."""
        if nbytes <= 0:
            return 0
        return math.ceil(nbytes / self.geometry.bytes)

    def fill_seconds(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` into the compute region."""
        if nbytes <= 0:
            return 0.0
        return self.write_cost_factor * nbytes / (self.fill_bandwidth_gbps * 1e9)

    def copy_seconds(self, nbytes: float) -> float:
        """Time to replicate ``nbytes`` inside the device."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.copy_bandwidth_gbps * 1e9)


@dataclass
class DeviceState:
    """Mutable runtime view of a device used by the dispatcher."""

    spec: MemorySpec
    free_arrays: int = field(default=0)
    running_jobs: int = 0

    def __post_init__(self) -> None:
        if self.free_arrays == 0:
            self.free_arrays = self.spec.num_arrays

    @property
    def has_slot(self) -> bool:
        return self.running_jobs < self.spec.max_outstanding_jobs

    def acquire(self, arrays: int) -> None:
        if arrays > self.free_arrays:
            raise ValueError(
                f"cannot allocate {arrays} arrays; only {self.free_arrays} free"
            )
        if not self.has_slot:
            raise ValueError("no free job slot")
        self.free_arrays -= arrays
        self.running_jobs += 1

    def release(self, arrays: int) -> None:
        self.free_arrays += arrays
        self.running_jobs -= 1
        if self.free_arrays > self.spec.num_arrays or self.running_jobs < 0:
            raise ValueError("release does not match a prior acquire")
