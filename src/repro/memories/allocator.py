"""Scratchpad-style allocator for in-memory compute regions.

The paper (III-B2) deliberately avoids integrating in-memory compute
with general memory virtualisation: compute workspaces are carved out
of a *coarse-grained* scratchpad partition of each memory (VLS-style
cache-way partitioning for SRAM; bank groups for DRAM; crossbar tiles
for ReRAM), so compute regions co-exist with conventionally-managed
memory at low hardware cost.

This module implements that model.  A :class:`ScratchpadAllocator`
manages the arrays of one device: a fixed ``reserved_fraction`` is held
back for normal cache/memory duty, and the remaining compute arrays are
handed out in contiguous *partitions* (the allocation quantum the
scheduler reasons about).  Allocations are tracked by handle so
double-frees and leaks surface as errors rather than silent corruption.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .base import MemorySpec

__all__ = ["Allocation", "ScratchpadAllocator", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied."""


@dataclass(frozen=True)
class Allocation:
    """Handle for one granted compute workspace."""

    handle: int
    arrays: int
    start: int
    spec: MemorySpec

    @property
    def bytes(self) -> int:
        return self.arrays * self.spec.geometry.bytes

    @property
    def alus(self) -> int:
        return self.arrays * self.spec.alus_per_array


@dataclass
class ScratchpadAllocator:
    """First-fit contiguous allocator over a device's compute arrays.

    Parameters
    ----------
    spec:
        The device being partitioned.
    reserved_fraction:
        Fraction of arrays held back for conventional memory duty
        (e.g. the half of the LLC kept as a normal cache is already
        excluded from ``spec.num_arrays``; this knob models *further*
        dynamic reservation and defaults to zero).
    """

    spec: MemorySpec
    reserved_fraction: float = 0.0
    _free_runs: list[tuple[int, int]] = field(default_factory=list, repr=False)
    _live: dict[int, Allocation] = field(default_factory=dict, repr=False)
    _handles: "itertools.count[int]" = field(default_factory=itertools.count, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.reserved_fraction < 1.0:
            raise ValueError("reserved_fraction must be in [0, 1)")
        usable = int(self.spec.num_arrays * (1.0 - self.reserved_fraction))
        if usable <= 0:
            raise ValueError("reservation leaves no compute arrays")
        self._free_runs = [(0, usable)]

    # ------------------------------------------------------------------
    @property
    def total_arrays(self) -> int:
        """Arrays available for compute after reservation."""
        return int(self.spec.num_arrays * (1.0 - self.reserved_fraction))

    @property
    def free_arrays(self) -> int:
        return sum(length for _, length in self._free_runs)

    @property
    def used_arrays(self) -> int:
        return self.total_arrays - self.free_arrays

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    @property
    def largest_free_run(self) -> int:
        """Largest contiguous run -- what a single job can actually get."""
        return max((length for _, length in self._free_runs), default=0)

    def utilisation(self) -> float:
        return self.used_arrays / self.total_arrays if self.total_arrays else 0.0

    # ------------------------------------------------------------------
    def allocate(self, arrays: int) -> Allocation:
        """Grant ``arrays`` contiguous compute arrays (first fit)."""
        if arrays <= 0:
            raise ValueError("must allocate at least one array")
        for index, (start, length) in enumerate(self._free_runs):
            if length >= arrays:
                allocation = Allocation(
                    handle=next(self._handles),
                    arrays=arrays,
                    start=start,
                    spec=self.spec,
                )
                remaining = length - arrays
                if remaining:
                    self._free_runs[index] = (start + arrays, remaining)
                else:
                    del self._free_runs[index]
                self._live[allocation.handle] = allocation
                return allocation
        raise AllocationError(
            f"{self.spec.name}: no contiguous run of {arrays} arrays "
            f"(free={self.free_arrays}, largest run={self.largest_free_run})"
        )

    def allocate_bytes(self, nbytes: int) -> Allocation:
        """Allocate enough arrays to hold ``nbytes`` of workspace."""
        return self.allocate(max(1, self.spec.arrays_for_bytes(nbytes)))

    def free(self, allocation: Allocation) -> None:
        """Return an allocation; coalesces adjacent free runs."""
        live = self._live.pop(allocation.handle, None)
        if live is None:
            raise AllocationError(f"double free or foreign handle: {allocation.handle}")
        self._free_runs.append((live.start, live.arrays))
        self._free_runs.sort()
        merged: list[tuple[int, int]] = []
        for start, length in self._free_runs:
            if merged and merged[-1][0] + merged[-1][1] == start:
                prev_start, prev_len = merged[-1]
                merged[-1] = (prev_start, prev_len + length)
            else:
                merged.append((start, length))
        self._free_runs = merged

    def reset(self) -> None:
        """Drop every live allocation (end of a batch)."""
        self._live.clear()
        self._free_runs = [(0, self.total_arrays)]
