"""In-DRAM compute device (Ambit-style charge sharing).

Ambit performs bulk bitwise operations by triple-row activation (TRA):
activating three wordlines makes the bitline settle to the 3-input
majority of the cells, which with a control row implements AND/OR; a
dual-contact cell provides NOT, completing a functionally-universal
set.  Arithmetic is composed bit-serially from these primitives, which
costs roughly 5x the per-bit step count of the in-SRAM full adder
(each logic level needs operand staging via RowClone copies plus an
ACT/ACT/PRE TRA sequence), giving the 1,510-cycle 16-bit MAC of
Table III at the 300 MHz command clock.

The evaluated configuration is DDR4-2400, 4 channels x 1 rank x 16
chips x 16 banks = 1,024 bank-level compute arrays with 8 KB rows
(65,536 bitline ALUs each, 67.1 M total).  Rows are filled by row-wide
DMA, so independent narrow jobs cannot be packed side by side into one
row (``pack_limit == 1``): a GNN feature vector of 256 lanes leaves
99.6% of a DRAM row idle, which is why in-DRAM SpMM underperforms in
the paper while bulk-bitwise workloads (whose vectors fill whole rows)
excel.
"""

from __future__ import annotations

from .base import ArrayGeometry, MemoryKind, MemorySpec
from .sram import bit_serial_mul_cycles

__all__ = ["DRAM_SPEC", "DRAM_STEP_FACTOR", "tra_cycles"]

#: Multiplier on the SRAM bit-serial step count: each 1-bit logic level
#: becomes RowClone staging + a TRA sequence.  5 x 302 = 1,510 cycles
#: for the 16-bit MAC, matching Table III.
DRAM_STEP_FACTOR = 5

#: Command-clock cycles for one triple-row-activation AND/OR primitive
#: (ACT, ACT, PRE at tRAS-ish spacing on the 300 MHz command clock).
def tra_cycles() -> int:
    return 4


DRAM_SPEC = MemorySpec(
    kind=MemoryKind.DRAM,
    name="in-DRAM (Ambit)",
    geometry=ArrayGeometry(rows=8192, cols=65536, bits_per_cell=1),
    num_arrays=1024,
    alus_per_array=65536,
    clock_mhz=300.0,
    mac_cycles_2op=DRAM_STEP_FACTOR * bit_serial_mul_cycles(16),  # 1510
    multi_operand_alpha=2.0,
    max_operands=8,
    pack_limit=1,
    energy_per_mac_pj=240.0,
    energy_per_bitop_pj=0.1,
    fill_bandwidth_gbps=400.0,  # in-situ: fills are in-DRAM row moves
    copy_bandwidth_gbps=1600.0,  # RowClone bulk copies
    write_cost_factor=1.0,
    max_outstanding_jobs=8,
    mb_per_mm2=17.5,
    fill_energy_pj_per_byte=1.0,  # RowClone-style in-situ moves
)
