"""Functional bit-serial compute model (Neural Cache, paper II-B1).

The timing models elsewhere assume the bit-serial array can really
compute; this module *demonstrates* it.  Operands are stored
bit-transposed -- bit ``b`` of every lane's element lives in wordline
``b`` -- and arithmetic proceeds one bit-slice at a time across all
lanes using only the operations the peripheral provides: read a
wordline, a 1-bit full adder per bitline (Fig. 2(b)), write a
wordline.  Cycle counts are tallied per wordline operation, so the
paper's formulas (n-cycle add, ``n^2 + 3n - 2``-cycle multiply) are
*measured*, not asserted.

This is a correctness/costing reference, not the fast path: the
event-driven simulator keeps using the closed-form cycle counts this
model validates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BitSerialArray"]


def _to_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """(lanes,) unsigned ints -> (bits, lanes) bit-planes, LSB first."""
    lanes = values.shape[0]
    planes = np.zeros((bits, lanes), dtype=bool)
    for b in range(bits):
        planes[b] = (values >> b) & 1
    return planes


def _from_bits(planes: np.ndarray) -> np.ndarray:
    bits, _ = planes.shape
    out = np.zeros(planes.shape[1], dtype=np.int64)
    for b in range(bits):
        out |= planes[b].astype(np.int64) << b
    return out


@dataclass
class BitSerialArray:
    """One SRAM compute array: ``lanes`` bitlines x ``rows`` wordlines.

    Values are stored bit-transposed in named *registers* (groups of
    ``bits`` consecutive wordlines).  Every wordline activation --
    read or write -- costs one cycle, matching the in-SRAM model where
    each cycle performs one multi-row sense plus the peripheral logic.
    """

    lanes: int
    rows: int = 256
    bits: int = 16
    cycles: int = 0
    _storage: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.lanes < 1 or self.rows < 1 or not 1 <= self.bits <= 62:
            raise ValueError("bad array geometry")

    # -- storage -------------------------------------------------------
    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def store(self, name: str, values) -> None:
        """Write a register (costs nothing: modelled as the fill)."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.lanes,):
            raise ValueError(f"expected {self.lanes} lane values")
        used = len(self._storage) * self.bits
        if name not in self._storage and used + self.bits > self.rows:
            raise ValueError("array rows exhausted")
        self._storage[name] = _to_bits(values & self.mask, self.bits)

    def load(self, name: str) -> np.ndarray:
        """Read a register back as unsigned integers (free, via I/O)."""
        return _from_bits(self._storage[name])

    def _plane(self, name: str, b: int) -> np.ndarray:
        self.cycles += 1  # one wordline activation
        return self._storage[name][b]

    def _write_plane(self, name: str, b: int, value: np.ndarray) -> None:
        self.cycles += 1
        self._storage[name][b] = value

    def _ensure(self, name: str) -> None:
        if name not in self._storage:
            self.store(name, np.zeros(self.lanes, dtype=np.int64))

    # -- arithmetic ----------------------------------------------------
    def add(self, dst: str, a: str, b: str) -> int:
        """dst = a + b (mod 2^bits); returns cycles spent.

        One cycle per bit-slice: the reconfigurable sense amp reads
        both operand slices simultaneously (BL and BLB sensing), the
        peripheral full adder combines them with the carry latch, and
        the sum slice is written back in the same cycle -- n cycles
        for n bits, the paper's figure.
        """
        start = self.cycles
        self._ensure(dst)
        carry = np.zeros(self.lanes, dtype=bool)
        for bit in range(self.bits):
            # Dual-wordline activation senses both slices in one cycle.
            self.cycles += 1
            x = self._storage[a][bit]
            y = self._storage[b][bit]
            total = x.astype(np.int8) + y.astype(np.int8) + carry.astype(np.int8)
            self._storage[dst][bit] = (total & 1).astype(bool)
            carry = total >= 2
        return self.cycles - start

    def multiply(self, dst: str, a: str, b: str) -> int:
        """dst = a * b (mod 2^bits); returns cycles spent.

        Shift-and-add over partial products: for every multiplier bit,
        one cycle reads the predicate slice, then the predicated
        partial-product addition runs bit-serially over the remaining
        width, with two bookkeeping cycles per iteration for the
        tag/carry management -- totalling ``n^2 + 3n - 2`` cycles as
        published for Neural Cache.
        """
        start = self.cycles
        self._ensure(dst)
        acc = np.zeros((self.bits, self.lanes), dtype=bool)
        for i in range(self.bits):
            predicate = self._plane(b, i)  # 1 cycle: read multiplier bit
            carry = np.zeros(self.lanes, dtype=bool)
            # Predicated add of the shifted multiplicand into the
            # accumulator; the hardware ripples over the full register
            # width every iteration (one cycle per slice).
            for j in range(self.bits):
                self.cycles += 1
                if i + j >= self.bits:
                    continue  # slice beyond the register; cycle still spent
                x = np.where(predicate, self._storage[a][j], False)
                y = acc[i + j]
                total = x.astype(np.int8) + y.astype(np.int8) + carry.astype(np.int8)
                acc[i + j] = (total & 1).astype(bool)
                carry = total >= 2
            # Tag write + carry-latch reset, skipped after the last
            # partial product.
            if i < self.bits - 1:
                self.cycles += 2
        self._storage[dst] = acc
        return self.cycles - start

    def bitwise(self, dst: str, a: str, b: str, op: str) -> int:
        """dst = a <op> b for op in {and, or, xor}; one cycle per slice."""
        start = self.cycles
        self._ensure(dst)
        for bit in range(self.bits):
            self.cycles += 1
            x = self._storage[a][bit]
            y = self._storage[b][bit]
            if op == "and":
                self._storage[dst][bit] = x & y
            elif op == "or":
                self._storage[dst][bit] = x | y
            elif op == "xor":
                self._storage[dst][bit] = x ^ y
            else:
                raise ValueError(f"unknown bitwise op {op!r}")
        return self.cycles - start
