"""MLIMPRuntime: the system-software facade of Figure 6.

The paper's runtime flow: a call to a function marked for in-memory
processing generates MLIMP jobs; the scheduler (fed by the performance
predictor) sizes and places them; per-memory queues drain onto the
devices.  :class:`MLIMPRuntime` packages that flow behind a small API:

    runtime = MLIMPRuntime(gnn_system())
    runtime.submit(make_spmm_job(...))
    runtime.submit_many(batch_jobs(...))
    result = runtime.run()          # schedule + simulate the queue

Swap the scheduler (``"ljf" | "adaptive" | "global" | "ewt"``) or inject a
trained :class:`~repro.core.predictor.MLPPredictor` without touching
the call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.plan import FaultPlan
from ..sim.mainmem import DDR4Config
from .dispatcher import Dispatcher, DispatchError, DispatchResult
from .job import Job
from .predictor import OraclePredictor, PerformancePredictor
from .scheduler import (
    AdaptiveScheduler,
    EWTScheduler,
    GlobalScheduler,
    LJFScheduler,
    MLIMPSystem,
    Scheduler,
    oracle_makespan,
)

__all__ = ["MLIMPRuntime"]

_SCHEDULERS = {
    "ljf": LJFScheduler,
    "adaptive": AdaptiveScheduler,
    "global": GlobalScheduler,
    "ewt": EWTScheduler,
}


@dataclass
class MLIMPRuntime:
    """Job queue + scheduler + dispatcher for one MLIMP system."""

    system: MLIMPSystem
    scheduler: str | Scheduler = "global"
    predictor: PerformancePredictor | None = None
    ddr4: DDR4Config | None = None
    _queue: list[Job] = field(default_factory=list, repr=False)
    _history: list[DispatchResult] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.scheduler, str) and self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(_SCHEDULERS)} or pass a Scheduler"
            )

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Enqueue one job (a marked in-memory function call)."""
        self._queue.append(job)

    def submit_many(self, jobs) -> None:
        for job in jobs:
            self.submit(job)

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def history(self) -> list[DispatchResult]:
        """Results of every completed :meth:`run`."""
        return list(self._history)

    def _make_scheduler(self) -> Scheduler:
        if isinstance(self.scheduler, Scheduler):
            return self.scheduler
        predictor = self.predictor or OraclePredictor()
        return _SCHEDULERS[self.scheduler](predictor)

    # ------------------------------------------------------------------
    def plan_preview(self) -> dict[str, tuple[str, int]]:
        """Dry-run the scheduler: job id -> (memory, arrays).

        The policy is drained against a fully-free view; whenever it
        runs out of immediately-dispatchable work, the dry-run feeds
        the already-"dispatched" jobs back as completions, so
        completion-driven policies (adaptive backfill, custom
        schedulers that release work one completion at a time) unwind
        fully instead of stalling.  A policy that makes no progress
        even with every completion delivered raises
        :class:`~repro.core.dispatcher.DispatchError` -- a partial
        preview is never silently returned.
        """
        scheduler = self._make_scheduler()
        policy = scheduler.plan(list(self._queue), self.system)
        from .scheduler.base import ResourceView

        def view() -> ResourceView:
            return ResourceView(
                now=float("inf"),  # time-driven plans release everything
                free_slots={k: 10**9 for k in self.system.kinds},
                free_arrays={k: self.system.arrays(k) for k in self.system.kinds},
                largest_free_run={
                    k: self.system.arrays(k) for k in self.system.kinds
                },
            )

        preview: dict[str, tuple[str, int]] = {}
        in_flight: list[tuple[Job, object]] = []
        guard = 0
        while policy.pending():
            guard += 1
            if guard > 10_000:
                raise DispatchError(
                    f"plan preview did not converge after {guard - 1} rounds; "
                    f"{policy.pending()} jobs still pending"
                )
            dispatches = policy.next_dispatches(view())
            if dispatches:
                for dispatch in dispatches:
                    preview[dispatch.job.job_id] = (
                        dispatch.kind.value,
                        dispatch.arrays,
                    )
                    in_flight.append((dispatch.job, dispatch.kind))
                continue
            if not in_flight:
                raise DispatchError(
                    f"plan preview stalled with {policy.pending()} jobs "
                    "pending and no in-flight work left to complete"
                )
            for job, kind in in_flight:
                policy.notify_completion(job, kind, float("inf"))
            in_flight = []
        return preview

    def oracle_bound(self) -> float:
        """Fluid lower bound for the current queue."""
        if not self._queue:
            return 0.0
        return oracle_makespan(list(self._queue), self.system)

    def run(
        self,
        label: str = "",
        faults: FaultPlan | None = None,
        fault_baseline: bool = False,
    ) -> DispatchResult:
        """Schedule and execute the queued jobs; clears the queue.

        ``faults`` injects a :class:`~repro.faults.plan.FaultPlan` into
        the run (device stalls, derating, wear-out, permanent failure)
        with graceful degradation; ``fault_baseline`` additionally runs
        the same batch fault-free first and stores its makespan on
        ``result.fault_free_makespan`` so the report can quantify the
        degradation.
        """
        scheduler = self._make_scheduler()
        jobs, self._queue = self._queue, []
        fault_free_makespan = None
        if fault_baseline and faults is not None and len(faults) > 0:
            baseline = Dispatcher(self.system, self.ddr4).run(
                scheduler.plan(list(jobs), self.system),
                label=(label or scheduler.name) + ":fault-free",
            )
            fault_free_makespan = baseline.makespan
        policy = scheduler.plan(jobs, self.system)
        # The completion hook feeds only the main run -- the fault-free
        # baseline above would otherwise train the predictor twice on
        # the same batch.
        result = Dispatcher(self.system, self.ddr4).run(
            policy,
            label=label or scheduler.name,
            faults=faults,
            predictor=self.predictor,
        )
        if fault_free_makespan is not None:
            result.fault_free_makespan = fault_free_makespan
        self._history.append(result)
        return result
