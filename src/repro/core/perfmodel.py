"""The scheduler's analytical performance model (paper Eq. 1-3).

The scheduler never executes jobs to learn their timing; it plans with
a smooth *scale-free* approximation of the execution-time curve:

    t(x, m)      = n_iter(x) * (t_ld(x, m) + t_cmpt(x, m))          (1)
    t_ld(x, m)   = t_ld(x) + t_replica * (m / a_repunit)            (2)
    t_cmpt(x, m) = t_cmpt(x, a_repunit) * (a_repunit / m) ** beta   (3)

``t_cmpt(x, a_repunit)`` comes from the performance predictor (oracle
or MLP); ``beta`` is the shape parameter fitted offline per kernel
class (:func:`fit_beta` backs the paper's "median R^2 of 0.998"
scale-free-fit claim against the discrete ground-truth curves).

Allocation sizing (Section III-C3): minimising t(x, m) outright
over-provisions because the curve flattens; the scheduler instead
picks the *knee* -- the ``m`` maximising the angular speed
``d theta / d m`` of the tangent to the curve
(:func:`knee_allocation`).

Performance layer
-----------------
Schedulers re-solve identical knee searches thousands of times per
dispatch round (every job is planned on every memory, and the global
scheduler replans the adaptive queues).  Both estimate classes are
frozen (hashable by value), so the searches are memoised behind small
LRU caches keyed on ``(estimate, max_arrays)``; the grid/inversion
math is evaluated with vectorised NumPy batches instead of per-point
Python loops.  Both behaviours are switchable::

    from repro.core import perfmodel
    perfmodel.configure(cache_enabled=False, vectorised=False)  # pre-PR path
    perfmodel.cache_stats()   # {"perfmodel.knee": {"hits": ..., ...}, ...}
    perfmodel.clear_caches()

The caches are per-process (no locking -- the simulator is
single-threaded and parallel experiment runners fork worker processes
that each own their caches).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .job import JobPerfProfile

__all__ = [
    "ScaleFreeEstimate",
    "ProfileEstimate",
    "estimate_from_profile",
    "allocation_grid",
    "knee_allocation",
    "min_time_allocation",
    "fit_beta",
    "DEFAULT_BETA",
    "PerfModelConfig",
    "configure",
    "perf_config",
    "cache_stats",
    "clear_caches",
]

#: Shape parameter used when no per-kernel fit is available; less than
#: one models the parallelisation cost (paper III-C3).
DEFAULT_BETA = 0.92


# ======================================================================
# Perf-layer configuration and caches
# ======================================================================
@dataclass
class PerfModelConfig:
    """Knobs for the perf layer (see module docstring).

    ``cache_enabled`` gates the LRU memoisation of the allocation
    searches *and* the :class:`PlannedJob` estimated-time memo;
    ``vectorised`` selects NumPy batch evaluation of t(x, m) over the
    grid vs the legacy per-point loop.  Disabling both reproduces the
    pre-perf-layer behaviour exactly (the ``repro bench`` baseline
    mode).
    """

    cache_enabled: bool = True
    vectorised: bool = True
    cache_maxsize: int = 4096
    #: Run the dispatcher's phase chain through the columnar flight
    #: table (struct-of-arrays rows fired straight from the event heap)
    #: instead of per-launch Python closures.  Both paths are
    #: byte-identical by construction; the flag exists for the
    #: differential test suite and the bench baseline.
    columnar: bool = True


_CONFIG = PerfModelConfig()

_MISSING = object()


class _LRUCache:
    """Ordered-dict LRU with hit/miss accounting.

    Not thread-safe by design: the simulation is single-threaded and
    every parallel-runner worker process owns its own module state.
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "_data")

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return _MISSING
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self, reset_counters: bool = True) -> None:
        self._data.clear()
        if reset_counters:
            self.hits = 0
            self.misses = 0

    def info(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


_GRID_CACHE = _LRUCache("perfmodel.grid")
_KNEE_CACHE = _LRUCache("perfmodel.knee")
_MIN_TIME_CACHE = _LRUCache("perfmodel.min_time")
_ALL_CACHES = (_GRID_CACHE, _KNEE_CACHE, _MIN_TIME_CACHE)


def perf_config() -> PerfModelConfig:
    """The live (mutable) perf-layer configuration."""
    return _CONFIG


def configure(
    cache_enabled: bool | None = None,
    vectorised: bool | None = None,
    cache_maxsize: int | None = None,
    columnar: bool | None = None,
) -> PerfModelConfig:
    """Adjust the perf layer; ``None`` leaves a knob unchanged.

    Returns the live config.  Shrinking ``cache_maxsize`` below the
    current cache population evicts oldest entries lazily on the next
    insert.
    """
    if cache_enabled is not None:
        _CONFIG.cache_enabled = bool(cache_enabled)
    if vectorised is not None:
        _CONFIG.vectorised = bool(vectorised)
    if columnar is not None:
        _CONFIG.columnar = bool(columnar)
    if cache_maxsize is not None:
        if cache_maxsize < 1:
            raise ValueError("cache_maxsize must be >= 1")
        _CONFIG.cache_maxsize = int(cache_maxsize)
        for cache in _ALL_CACHES:
            cache.maxsize = _CONFIG.cache_maxsize
    return _CONFIG


def cache_stats() -> dict[str, dict]:
    """Hit/miss/occupancy per cache, keyed by cache name."""
    return {cache.name: cache.info() for cache in _ALL_CACHES}


def clear_caches(reset_counters: bool = True) -> None:
    """Drop all memoised allocation-search results."""
    for cache in _ALL_CACHES:
        cache.clear(reset_counters)


@dataclass(frozen=True)
class ScaleFreeEstimate:
    """Smooth Eq. (1)-(3) estimate of one (job, memory) pair."""

    unit_arrays: int
    t_load: float
    t_replica_unit: float
    t_compute_unit: float
    beta: float = DEFAULT_BETA
    n_iter: int = 1
    max_useful_arrays: int | None = None

    def __post_init__(self) -> None:
        if self.unit_arrays < 1:
            raise ValueError("unit_arrays must be >= 1")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if self.n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        if min(self.t_load, self.t_replica_unit, self.t_compute_unit) < 0:
            raise ValueError("times must be non-negative")

    def load_time(self, arrays: int) -> float:
        self._check(arrays)
        replicas = self._effective(arrays) / self.unit_arrays
        return self.t_load + self.t_replica_unit * max(0.0, replicas - 1.0)

    def compute_time(self, arrays: int) -> float:
        self._check(arrays)
        ratio = self.unit_arrays / self._effective(arrays)
        return self.t_compute_unit * ratio**self.beta

    def total_time(self, arrays: int) -> float:
        # The curve is pure in (estimate, effective arrays) and the
        # balancing loops re-evaluate the same few allocations millions
        # of times; memoised per instance (frozen dataclass, so writes
        # go through __dict__), gated like the allocation-search caches
        # so the ablation baseline stays honest.
        self._check(arrays)
        effective = self._effective(arrays)
        cache = self.__dict__.get("_tt_cache")
        if cache is not None:
            value = cache.get(effective)
            if value is not None:
                return value
        value = self.n_iter * (self.load_time(arrays) + self.compute_time(arrays))
        if perf_config().cache_enabled:
            if cache is None:
                cache = self.__dict__["_tt_cache"] = {}
            cache[effective] = value
        return value

    def total_time_batch(self, arrays) -> np.ndarray:
        """Vectorised :meth:`total_time` over an allocation array."""
        a = np.asarray(arrays, dtype=float)
        if a.size and float(a.min()) < self.unit_arrays:
            raise ValueError(
                f"allocation below the unit allocation {self.unit_arrays}"
            )
        if self.max_useful_arrays is not None:
            a = np.minimum(a, float(self.max_useful_arrays))
        replicas = a / self.unit_arrays
        load = self.t_load + self.t_replica_unit * np.maximum(0.0, replicas - 1.0)
        compute = self.t_compute_unit * (self.unit_arrays / a) ** self.beta
        return self.n_iter * (load + compute)

    def _effective(self, arrays: int) -> int:
        if self.max_useful_arrays is not None:
            return min(arrays, self.max_useful_arrays)
        return arrays

    def _check(self, arrays: int) -> None:
        if arrays < self.unit_arrays:
            raise ValueError(
                f"allocation {arrays} below the unit allocation {self.unit_arrays}"
            )

    def snap_to_replica(self, arrays: int) -> int:
        """Round an allocation down to a whole replica multiple.

        The ground-truth compute model only speeds up at whole
        replicas of the unit allocation, so fractional-replica arrays
        are pure waste; every planner snaps its choices.
        """
        snapped = max(self.unit_arrays, (arrays // self.unit_arrays) * self.unit_arrays)
        if self.max_useful_arrays is not None:
            snapped = min(snapped, max(self.unit_arrays, self.max_useful_arrays))
        return snapped

    def invert_total_time(self, target_seconds: float, max_arrays: int) -> int:
        """Smallest allocation whose estimated *total* time meets the
        target (Algorithm 2's ``t^{-1}``), or the time-minimising
        allocation if the target is unreachable.  Grid search over
        replica multiples: the curve is *not* monotone once
        replication load cost dominates."""
        return _invert_total_time(self, target_seconds, max_arrays)

    def invert_compute_time(self, target_seconds: float) -> int:
        """Smallest allocation whose estimated *compute* time meets the
        target -- ``t_max^{-1}(mean_t)`` in Algorithm 2."""
        if target_seconds <= 0:
            raise ValueError("target must be positive")
        if target_seconds >= self.t_compute_unit:
            return self.unit_arrays
        ratio = (self.t_compute_unit / target_seconds) ** (1.0 / self.beta)
        arrays = math.ceil(self.unit_arrays * ratio)
        if self.max_useful_arrays is not None:
            arrays = min(arrays, self.max_useful_arrays)
        return max(self.unit_arrays, arrays)

    def curve_key(self) -> tuple:
        """Canonical identity of the t(x, m) curve (see
        :func:`_estimate_key`); every field of this estimate shapes the
        curve, so the key is the field tuple."""
        key = self.__dict__.get("_curve_key")
        if key is None:
            key = (
                "sf",
                self.unit_arrays,
                self.t_load,
                self.t_replica_unit,
                self.t_compute_unit,
                self.beta,
                self.n_iter,
                self.max_useful_arrays,
            )
            self.__dict__["_curve_key"] = key
        return key


@dataclass(frozen=True)
class ProfileEstimate:
    """Oracle-grade estimate: delegates to the true discrete profile.

    The paper's oracle predictor "returns the accurate cycle counts of
    a job in each memory" (V-B3) -- with it, the scheduler's planning
    curve *is* the ground truth.  ``compute_scale`` lets the noisy
    predictor perturb the compute component multiplicatively while
    keeping the discrete shape.
    """

    profile: JobPerfProfile
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_scale <= 0:
            raise ValueError("compute_scale must be positive")

    @property
    def unit_arrays(self) -> int:
        return self.profile.unit_arrays

    @property
    def n_iter(self) -> int:
        return self.profile.n_iter

    @property
    def max_useful_arrays(self) -> int:
        return self.profile.useful_max_arrays()

    @property
    def t_compute_unit(self) -> float:
        return self.profile.t_compute_unit * self.compute_scale

    @property
    def t_load(self) -> float:
        return self.profile.t_load

    @property
    def t_replica_unit(self) -> float:
        return self.profile.t_replica_unit

    def load_time(self, arrays: int) -> float:
        return self.profile.load_time(arrays)

    def compute_time(self, arrays: int) -> float:
        return self.profile.compute_time(arrays) * self.compute_scale

    def total_time(self, arrays: int) -> float:
        # Pure in (profile, replica count, compute_scale): the discrete
        # model only changes at whole replicas, so a per-instance memo
        # keyed on the replica count collapses the balancing loops'
        # millions of repeat evaluations.  Gated like the allocation-
        # search caches so the ablation baseline stays honest.
        profile = self.profile
        replicas = profile.replicas(arrays)
        cache = self.__dict__.get("_tt_cache")
        if cache is not None:
            value = cache.get(replicas)
            if value is not None:
                return value
        value = profile.n_iter * (
            self.load_time(arrays) + self.compute_time(arrays)
        )
        if perf_config().cache_enabled:
            if cache is None:
                cache = self.__dict__["_tt_cache"] = {}
            cache[replicas] = value
        return value

    def total_time_batch(self, arrays) -> np.ndarray:
        """Vectorised :meth:`total_time` over an allocation array."""
        profile = self.profile
        return profile.n_iter * (
            profile.load_time_batch(arrays)
            + profile.compute_time_batch(arrays) * self.compute_scale
        )

    def snap_to_replica(self, arrays: int) -> int:
        unit = self.profile.unit_arrays
        snapped = max(unit, (arrays // unit) * unit)
        return min(snapped, max(unit, self.max_useful_arrays))

    def invert_total_time(self, target_seconds: float, max_arrays: int) -> int:
        """Smallest replica-multiple allocation meeting the target, or
        the time-minimising allocation if unreachable (the curve is
        not monotone once replication load cost dominates)."""
        return _invert_total_time(self, target_seconds, max_arrays)

    def curve_key(self) -> tuple:
        """Canonical identity of the t(x, m) curve.

        :class:`~repro.core.job.JobPerfProfile` also carries
        ``fill_bytes``, ``compute_energy_j`` and ``vector_width``,
        none of which enter the timing curve -- two jobs differing
        only in those fields used to occupy distinct cache entries for
        identical searches (the ``perfmodel.knee`` key-normalisation
        bug).  The key keeps exactly the timing-relevant fields.
        """
        key = self.__dict__.get("_curve_key")
        if key is None:
            p = self.profile
            key = (
                "prof",
                p.unit_arrays,
                p.t_load,
                p.t_replica_unit,
                p.t_compute_unit,
                p.waves_unit,
                p.overhead_delta,
                p.n_iter,
                self.compute_scale,
            )
            self.__dict__["_curve_key"] = key
        return key


def estimate_from_profile(
    profile: JobPerfProfile,
    t_compute_unit: float | None = None,
    beta: float = DEFAULT_BETA,
) -> ScaleFreeEstimate:
    """Build the scheduler's estimate for one ground-truth profile.

    ``t_compute_unit`` is the predictor's output; omit it for an
    oracle estimate that reads the true unit compute time.
    """
    return ScaleFreeEstimate(
        unit_arrays=profile.unit_arrays,
        t_load=profile.t_load,
        t_replica_unit=profile.t_replica_unit,
        t_compute_unit=(
            profile.t_compute_unit if t_compute_unit is None else t_compute_unit
        ),
        beta=beta,
        n_iter=profile.n_iter,
        max_useful_arrays=profile.useful_max_arrays(),
    )


def _grid_times(estimate, grid: np.ndarray) -> np.ndarray:
    """t(x, m) over the whole grid: one NumPy batch when the estimate
    supports it (and vectorisation is on), else the legacy loop.

    Duck-typed estimates without ``total_time_batch`` always take the
    scalar path, so third-party estimate objects keep working.
    """
    if _CONFIG.vectorised:
        batch = getattr(estimate, "total_time_batch", None)
        if batch is not None:
            return np.asarray(batch(grid), dtype=float)
    return np.asarray([estimate.total_time(int(m)) for m in grid], dtype=float)


def _invert_total_time(estimate, target_seconds: float, max_arrays: int) -> int:
    """Shared t^{-1} implementation over the replica-multiple grid."""
    if target_seconds <= 0:
        raise ValueError("target must be positive")
    grid = allocation_grid(estimate, max(estimate.unit_arrays, max_arrays))
    times = _grid_times(estimate, grid)
    meets = np.nonzero(times <= target_seconds)[0]
    if meets.size:
        return int(grid[int(meets[0])])
    return int(grid[int(np.argmin(times))])


def allocation_grid(estimate, max_arrays: int, points: int = 48) -> np.ndarray:
    """Feasible allocations from the unit allocation up to ``max_arrays``.

    Allocations are whole replica multiples of the unit allocation
    (anything in between is wasted -- see
    :meth:`ScaleFreeEstimate.snap_to_replica`), geometrically
    subsampled so the knee search stays cheap.

    The grid depends only on ``(unit_arrays, max_arrays, points)``, so
    results are memoised; cached grids are returned *read-only* (they
    are shared across callers -- copy before mutating).
    """
    lo = estimate.unit_arrays
    if max_arrays < lo:
        raise ValueError("max_arrays below the unit allocation")
    max_replicas = max_arrays // lo
    # The grid depends only on the replica count, so caps that differ
    # by less than one replica (or by int-vs-float type) share an
    # entry.
    key = (lo, int(max_replicas), points)
    if _CONFIG.cache_enabled:
        cached = _GRID_CACHE.get(key)
        if cached is not _MISSING:
            return cached
    if max_replicas <= 1:
        grid = np.asarray([lo])
    else:
        replicas = np.unique(
            np.round(np.geomspace(1, max_replicas, num=points)).astype(int)
        )
        grid = replicas[replicas >= 1] * lo
    if _CONFIG.cache_enabled:
        grid.setflags(write=False)
        _GRID_CACHE.put(key, grid)
    return grid


def _estimate_key(estimate, max_arrays: int):
    """Canonical cache key for an allocation search; ``None`` if
    unkeyable.

    Keys are normalised so *equivalent* searches share one entry:

    * the estimate contributes its :meth:`curve_key` -- only the
      fields that shape the t(x, m) curve (a :class:`ProfileEstimate`
      drops the profile's ``fill_bytes`` / ``compute_energy_j`` /
      ``vector_width``, which used to fragment the cache);
    * the cap contributes its whole-replica count, since the search
      grid cannot distinguish caps within the same replica multiple
      (this also unifies int and float ``max_arrays``).

    Duck-typed estimates without ``curve_key`` fall back to hashing
    the estimate itself; unhashable ones are simply not cached.
    """
    curve_key = getattr(estimate, "curve_key", None)
    if curve_key is not None:
        return (curve_key(), int(max_arrays // estimate.unit_arrays))
    try:
        hash(estimate)
    except TypeError:
        return None
    return (estimate, max_arrays)


def min_time_allocation(estimate, max_arrays: int) -> int:
    """The allocation strictly minimising t(x, m) -- the naive choice
    the paper rejects for over-provisioning (kept for the ablation)."""
    key = _estimate_key(estimate, max_arrays) if _CONFIG.cache_enabled else None
    if key is not None:
        cached = _MIN_TIME_CACHE.get(key)
        if cached is not _MISSING:
            return cached
    grid = allocation_grid(estimate, max_arrays)
    times = _grid_times(estimate, grid)
    result = int(grid[int(np.argmin(times))])
    if key is not None:
        _MIN_TIME_CACHE.put(key, result)
    return result


def knee_allocation(estimate, max_arrays: int) -> int:
    """Allocation at the knee of t(x, m): max angular speed of the
    tangent (paper III-C3)."""
    key = _estimate_key(estimate, max_arrays) if _CONFIG.cache_enabled else None
    if key is not None:
        cached = _KNEE_CACHE.get(key)
        if cached is not _MISSING:
            return cached
    result = _knee_allocation_impl(estimate, max_arrays)
    if key is not None:
        _KNEE_CACHE.put(key, result)
    return result


def _gradient1d(f: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``np.gradient(f, x)`` for 1-D arrays, bit-identical but without
    the generic axis/shape machinery (the knee search calls this twice
    per cache miss on small grids, where that overhead dominates)."""
    out = np.empty_like(f)
    dx = np.diff(x)
    dx1 = dx[:-1]
    dx2 = dx[1:]
    a = -(dx2) / (dx1 * (dx1 + dx2))
    b = (dx2 - dx1) / (dx1 * dx2)
    c = dx1 / (dx2 * (dx1 + dx2))
    out[1:-1] = a * f[:-2] + b * f[1:-1] + c * f[2:]
    out[0] = (f[1] - f[0]) / dx[0]
    out[-1] = (f[-1] - f[-2]) / dx[-1]
    return out


def _knee_allocation_impl(estimate, max_arrays: int) -> int:
    grid = allocation_grid(estimate, max_arrays)
    if len(grid) == 1:
        return int(grid[0])
    times = _grid_times(estimate, grid)

    # Normalise both axes so the angle is scale-invariant; otherwise
    # the knee depends on the units of seconds vs arrays.
    x = (grid - grid[0]) / max(1, (grid[-1] - grid[0]))
    t_span = times.max() - times.min()
    if t_span <= 0.0:
        # Flat curve: no benefit from more than the unit allocation.
        return int(grid[0])
    y = (times - times.min()) / t_span

    slope = _gradient1d(y, x)
    theta = np.arctan(slope)
    dtheta = np.abs(_gradient1d(theta, x))
    knee_idx = int(np.argmax(dtheta))
    knee = int(grid[knee_idx])

    # Guard: never pick an allocation that is *worse* than the unit
    # allocation (possible when replication cost dominates).
    if estimate.total_time(knee) > estimate.total_time(int(grid[0])):
        return int(grid[0])
    return knee


def fit_beta(allocations, compute_times) -> tuple[float, float]:
    """Least-squares fit of the scale-free model (Eq. 3).

    Fits ``log t = log t0 - beta * log m`` and returns ``(beta, r2)``
    of the fit in log space.  Used to validate the scale-free property
    on the ground-truth (discrete) kernel scaling curves, reproducing
    the paper's median R^2 of 0.998.

    Raises :class:`ValueError` on degenerate inputs -- mismatched
    shapes, fewer than two *distinct* allocations (the log-log line is
    underdetermined), or non-positive/non-finite values -- instead of
    letting NumPy's linear algebra fail with an opaque error.
    """
    m = np.asarray(allocations, dtype=float)
    t = np.asarray(compute_times, dtype=float)
    if m.shape != t.shape or m.size < 2:
        raise ValueError(
            "need >= 2 matching (allocation, time) points, got shapes "
            f"{m.shape} and {t.shape}"
        )
    if not (np.all(np.isfinite(m)) and np.all(np.isfinite(t))):
        raise ValueError("allocations and times must be finite")
    if np.any(m <= 0) or np.any(t <= 0):
        raise ValueError("allocations and times must be positive")
    if np.unique(m).size < 2:
        raise ValueError(
            "need >= 2 distinct allocations to fit beta "
            f"(all {m.size} points are at allocation {m[0]:g})"
        )
    log_m, log_t = np.log(m), np.log(t)
    slope, intercept = np.polyfit(log_m, log_t, deg=1)
    pred = slope * log_m + intercept
    ss_res = float(np.sum((log_t - pred) ** 2))
    ss_tot = float(np.sum((log_t - log_t.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return -float(slope), r2
