"""The scheduler's analytical performance model (paper Eq. 1-3).

The scheduler never executes jobs to learn their timing; it plans with
a smooth *scale-free* approximation of the execution-time curve:

    t(x, m)      = n_iter(x) * (t_ld(x, m) + t_cmpt(x, m))          (1)
    t_ld(x, m)   = t_ld(x) + t_replica * (m / a_repunit)            (2)
    t_cmpt(x, m) = t_cmpt(x, a_repunit) * (a_repunit / m) ** beta   (3)

``t_cmpt(x, a_repunit)`` comes from the performance predictor (oracle
or MLP); ``beta`` is the shape parameter fitted offline per kernel
class (:func:`fit_beta` backs the paper's "median R^2 of 0.998"
scale-free-fit claim against the discrete ground-truth curves).

Allocation sizing (Section III-C3): minimising t(x, m) outright
over-provisions because the curve flattens; the scheduler instead
picks the *knee* -- the ``m`` maximising the angular speed
``d theta / d m`` of the tangent to the curve
(:func:`knee_allocation`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .job import JobPerfProfile

__all__ = [
    "ScaleFreeEstimate",
    "ProfileEstimate",
    "estimate_from_profile",
    "allocation_grid",
    "knee_allocation",
    "min_time_allocation",
    "fit_beta",
    "DEFAULT_BETA",
]

#: Shape parameter used when no per-kernel fit is available; less than
#: one models the parallelisation cost (paper III-C3).
DEFAULT_BETA = 0.92


@dataclass(frozen=True)
class ScaleFreeEstimate:
    """Smooth Eq. (1)-(3) estimate of one (job, memory) pair."""

    unit_arrays: int
    t_load: float
    t_replica_unit: float
    t_compute_unit: float
    beta: float = DEFAULT_BETA
    n_iter: int = 1
    max_useful_arrays: int | None = None

    def __post_init__(self) -> None:
        if self.unit_arrays < 1:
            raise ValueError("unit_arrays must be >= 1")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if self.n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        if min(self.t_load, self.t_replica_unit, self.t_compute_unit) < 0:
            raise ValueError("times must be non-negative")

    def load_time(self, arrays: int) -> float:
        self._check(arrays)
        replicas = self._effective(arrays) / self.unit_arrays
        return self.t_load + self.t_replica_unit * max(0.0, replicas - 1.0)

    def compute_time(self, arrays: int) -> float:
        self._check(arrays)
        ratio = self.unit_arrays / self._effective(arrays)
        return self.t_compute_unit * ratio**self.beta

    def total_time(self, arrays: int) -> float:
        return self.n_iter * (self.load_time(arrays) + self.compute_time(arrays))

    def _effective(self, arrays: int) -> int:
        if self.max_useful_arrays is not None:
            return min(arrays, self.max_useful_arrays)
        return arrays

    def _check(self, arrays: int) -> None:
        if arrays < self.unit_arrays:
            raise ValueError(
                f"allocation {arrays} below the unit allocation {self.unit_arrays}"
            )

    def snap_to_replica(self, arrays: int) -> int:
        """Round an allocation down to a whole replica multiple.

        The ground-truth compute model only speeds up at whole
        replicas of the unit allocation, so fractional-replica arrays
        are pure waste; every planner snaps its choices.
        """
        snapped = max(self.unit_arrays, (arrays // self.unit_arrays) * self.unit_arrays)
        if self.max_useful_arrays is not None:
            snapped = min(snapped, max(self.unit_arrays, self.max_useful_arrays))
        return snapped

    def invert_total_time(self, target_seconds: float, max_arrays: int) -> int:
        """Smallest allocation whose estimated *total* time meets the
        target (Algorithm 2's ``t^{-1}``), or the time-minimising
        allocation if the target is unreachable.  Grid search over
        replica multiples: the curve is *not* monotone once
        replication load cost dominates."""
        return _invert_total_time(self, target_seconds, max_arrays)

    def invert_compute_time(self, target_seconds: float) -> int:
        """Smallest allocation whose estimated *compute* time meets the
        target -- ``t_max^{-1}(mean_t)`` in Algorithm 2."""
        if target_seconds <= 0:
            raise ValueError("target must be positive")
        if target_seconds >= self.t_compute_unit:
            return self.unit_arrays
        ratio = (self.t_compute_unit / target_seconds) ** (1.0 / self.beta)
        arrays = math.ceil(self.unit_arrays * ratio)
        if self.max_useful_arrays is not None:
            arrays = min(arrays, self.max_useful_arrays)
        return max(self.unit_arrays, arrays)


@dataclass(frozen=True)
class ProfileEstimate:
    """Oracle-grade estimate: delegates to the true discrete profile.

    The paper's oracle predictor "returns the accurate cycle counts of
    a job in each memory" (V-B3) -- with it, the scheduler's planning
    curve *is* the ground truth.  ``compute_scale`` lets the noisy
    predictor perturb the compute component multiplicatively while
    keeping the discrete shape.
    """

    profile: JobPerfProfile
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_scale <= 0:
            raise ValueError("compute_scale must be positive")

    @property
    def unit_arrays(self) -> int:
        return self.profile.unit_arrays

    @property
    def n_iter(self) -> int:
        return self.profile.n_iter

    @property
    def max_useful_arrays(self) -> int:
        return self.profile.useful_max_arrays()

    @property
    def t_compute_unit(self) -> float:
        return self.profile.t_compute_unit * self.compute_scale

    @property
    def t_load(self) -> float:
        return self.profile.t_load

    @property
    def t_replica_unit(self) -> float:
        return self.profile.t_replica_unit

    def load_time(self, arrays: int) -> float:
        return self.profile.load_time(arrays)

    def compute_time(self, arrays: int) -> float:
        return self.profile.compute_time(arrays) * self.compute_scale

    def total_time(self, arrays: int) -> float:
        return self.profile.n_iter * (
            self.load_time(arrays) + self.compute_time(arrays)
        )

    def snap_to_replica(self, arrays: int) -> int:
        unit = self.profile.unit_arrays
        snapped = max(unit, (arrays // unit) * unit)
        return min(snapped, max(unit, self.max_useful_arrays))

    def invert_total_time(self, target_seconds: float, max_arrays: int) -> int:
        """Smallest replica-multiple allocation meeting the target, or
        the time-minimising allocation if unreachable (the curve is
        not monotone once replication load cost dominates)."""
        return _invert_total_time(self, target_seconds, max_arrays)


def estimate_from_profile(
    profile: JobPerfProfile,
    t_compute_unit: float | None = None,
    beta: float = DEFAULT_BETA,
) -> ScaleFreeEstimate:
    """Build the scheduler's estimate for one ground-truth profile.

    ``t_compute_unit`` is the predictor's output; omit it for an
    oracle estimate that reads the true unit compute time.
    """
    return ScaleFreeEstimate(
        unit_arrays=profile.unit_arrays,
        t_load=profile.t_load,
        t_replica_unit=profile.t_replica_unit,
        t_compute_unit=(
            profile.t_compute_unit if t_compute_unit is None else t_compute_unit
        ),
        beta=beta,
        n_iter=profile.n_iter,
        max_useful_arrays=profile.useful_max_arrays(),
    )


def _invert_total_time(estimate, target_seconds: float, max_arrays: int) -> int:
    """Shared t^{-1} implementation over the replica-multiple grid."""
    if target_seconds <= 0:
        raise ValueError("target must be positive")
    grid = allocation_grid(estimate, max(estimate.unit_arrays, max_arrays))
    best_arrays = int(grid[0])
    best_time = estimate.total_time(best_arrays)
    for arrays in grid:
        t = estimate.total_time(int(arrays))
        if t <= target_seconds:
            return int(arrays)
        if t < best_time:
            best_time, best_arrays = t, int(arrays)
    return best_arrays


def allocation_grid(estimate, max_arrays: int, points: int = 48) -> np.ndarray:
    """Feasible allocations from the unit allocation up to ``max_arrays``.

    Allocations are whole replica multiples of the unit allocation
    (anything in between is wasted -- see
    :meth:`ScaleFreeEstimate.snap_to_replica`), geometrically
    subsampled so the knee search stays cheap.
    """
    lo = estimate.unit_arrays
    if max_arrays < lo:
        raise ValueError("max_arrays below the unit allocation")
    max_replicas = max_arrays // lo
    if max_replicas <= 1:
        return np.asarray([lo])
    replicas = np.unique(
        np.round(np.geomspace(1, max_replicas, num=points)).astype(int)
    )
    return replicas[replicas >= 1] * lo


def min_time_allocation(estimate, max_arrays: int) -> int:
    """The allocation strictly minimising t(x, m) -- the naive choice
    the paper rejects for over-provisioning (kept for the ablation)."""
    grid = allocation_grid(estimate, max_arrays)
    times = np.asarray([estimate.total_time(int(m)) for m in grid])
    return int(grid[int(np.argmin(times))])


def knee_allocation(estimate, max_arrays: int) -> int:
    """Allocation at the knee of t(x, m): max angular speed of the
    tangent (paper III-C3)."""
    grid = allocation_grid(estimate, max_arrays)
    if len(grid) == 1:
        return int(grid[0])
    times = np.asarray([estimate.total_time(int(m)) for m in grid], dtype=float)

    # Normalise both axes so the angle is scale-invariant; otherwise
    # the knee depends on the units of seconds vs arrays.
    x = (grid - grid[0]) / max(1, (grid[-1] - grid[0]))
    t_span = times.max() - times.min()
    if t_span <= 0.0:
        # Flat curve: no benefit from more than the unit allocation.
        return int(grid[0])
    y = (times - times.min()) / t_span

    slope = np.gradient(y, x)
    theta = np.arctan(slope)
    dtheta = np.abs(np.gradient(theta, x))
    knee_idx = int(np.argmax(dtheta))
    knee = int(grid[knee_idx])

    # Guard: never pick an allocation that is *worse* than the unit
    # allocation (possible when replication cost dominates).
    if estimate.total_time(knee) > estimate.total_time(int(grid[0])):
        return int(grid[0])
    return knee


def fit_beta(allocations, compute_times) -> tuple[float, float]:
    """Least-squares fit of the scale-free model (Eq. 3).

    Fits ``log t = log t0 - beta * log m`` and returns ``(beta, r2)``
    of the fit in log space.  Used to validate the scale-free property
    on the ground-truth (discrete) kernel scaling curves, reproducing
    the paper's median R^2 of 0.998.
    """
    m = np.asarray(allocations, dtype=float)
    t = np.asarray(compute_times, dtype=float)
    if m.shape != t.shape or m.size < 2:
        raise ValueError("need >= 2 matching (allocation, time) points")
    if np.any(m <= 0) or np.any(t <= 0):
        raise ValueError("allocations and times must be positive")
    log_m, log_t = np.log(m), np.log(t)
    slope, intercept = np.polyfit(log_m, log_t, deg=1)
    pred = slope * log_m + intercept
    ss_res = float(np.sum((log_t - pred) ** 2))
    ss_tot = float(np.sum((log_t - log_t.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return -float(slope), r2
