"""MLIMP core: jobs, performance models, predictors, schedulers, runtime."""

from .dispatcher import DispatchError, Dispatcher, DispatchResult, JobRecord
from .job import Job, JobPerfProfile
from .perfmodel import (
    DEFAULT_BETA,
    ScaleFreeEstimate,
    allocation_grid,
    estimate_from_profile,
    fit_beta,
    knee_allocation,
    min_time_allocation,
)
from .predictor import (
    MLPPredictor,
    NaiveThresholdClassifier,
    NoisyPredictor,
    OnlinePredictor,
    OraclePredictor,
    PerformancePredictor,
    naive_metric,
)
from .runtime import MLIMPRuntime
from .scheduler import (
    AdaptiveScheduler,
    Dispatch,
    DispatchPolicy,
    GlobalScheduler,
    JohnsonScheduler,
    LJFScheduler,
    MLIMPSystem,
    ResourceView,
    Scheduler,
    WearAwareScheduler,
    oracle_makespan,
    single_memory_makespan,
)

__all__ = [
    "DispatchError",
    "Dispatcher",
    "DispatchResult",
    "JobRecord",
    "Job",
    "JobPerfProfile",
    "DEFAULT_BETA",
    "ScaleFreeEstimate",
    "allocation_grid",
    "estimate_from_profile",
    "fit_beta",
    "knee_allocation",
    "min_time_allocation",
    "MLPPredictor",
    "NaiveThresholdClassifier",
    "NoisyPredictor",
    "OnlinePredictor",
    "OraclePredictor",
    "PerformancePredictor",
    "naive_metric",
    "MLIMPRuntime",
    "AdaptiveScheduler",
    "Dispatch",
    "DispatchPolicy",
    "GlobalScheduler",
    "JohnsonScheduler",
    "WearAwareScheduler",
    "LJFScheduler",
    "MLIMPSystem",
    "ResourceView",
    "Scheduler",
    "oracle_makespan",
    "single_memory_makespan",
]
