"""Wear-aware memory filtering (endurance extension).

The paper's II-A endurance concern, acted on: before planning, jobs
whose fill traffic would push an NVM device past its endurance
reserve have that memory removed from their candidate set, so the
inner scheduler (adaptive/global/LJF -- anything) places them on
unconstrained layers instead.  Built on
:class:`repro.memories.endurance.WearTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...memories.base import MemoryKind
from ...memories.endurance import WearTracker
from ..job import Job
from .base import DispatchPolicy, MLIMPSystem, Scheduler

__all__ = ["WearAwareScheduler", "restrict_worn_memories"]


def restrict_worn_memories(
    jobs: list[Job],
    trackers: dict[MemoryKind, WearTracker],
    reserve_fraction: float = 0.1,
) -> list[Job]:
    """Return jobs with endurance-breaching memories filtered out.

    A job keeps a tracked memory only if the tracker admits its fill
    traffic; jobs are returned unchanged when nothing is filtered.  A
    job that fits *no* remaining memory keeps its least-worn tracked
    option (running somewhere beats not running; the tracker will
    report the overshoot).
    """
    filtered: list[Job] = []
    for job in jobs:
        allowed = {}
        for kind, profile in job.profiles.items():
            tracker = trackers.get(kind)
            if tracker is None or tracker.admit(
                profile.fill_bytes * profile.n_iter, reserve_fraction
            ):
                allowed[kind] = profile
        if not allowed:
            fallback = min(
                (k for k in job.profiles if k in trackers),
                key=lambda k: trackers[k].wear_fraction,
            )
            allowed = {fallback: job.profiles[fallback]}
        if len(allowed) == len(job.profiles):
            filtered.append(job)
        else:
            filtered.append(
                Job(
                    job_id=job.job_id,
                    kernel=job.kernel,
                    profiles=allowed,
                    metadata=job.metadata,
                    tags=dict(job.tags),
                )
            )
    return filtered


@dataclass
class WearAwareScheduler(Scheduler):
    """Wrap any scheduler with endurance-reserve admission."""

    inner: Scheduler
    trackers: dict[MemoryKind, WearTracker]
    reserve_fraction: float = 0.1
    name: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"wear-aware({self.inner.name})"

    def plan(self, jobs: list[Job], system: MLIMPSystem) -> DispatchPolicy:
        restricted = restrict_worn_memories(
            jobs, self.trackers, self.reserve_fraction
        )
        return self.inner.plan(restricted, system)
