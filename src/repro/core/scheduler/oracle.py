"""Oracle throughput bound (paper Figure 16).

The oracle assumes *perfect job balancing across the memories*: its
makespan is the fluid lower bound of the unrelated-machines scheduling
problem.  Jobs may be split fractionally across devices; device ``k``
with ``P`` outstanding-job slots completes ``P * T`` job-seconds of
work in a horizon ``T``.  Minimising ``T`` subject to every job being
fully served is a small linear program (solved with scipy's HiGHS):

    minimise  T
    s.t.      sum_k f_jk = 1                        for every job j
              sum_j f_jk * t_jk <= P_k * T          for every memory k
              sum_j f_jk * t_jk * a_jk <= A_k * T   for every memory k
              f_jk >= 0

where ``t_jk`` is job j's true execution time on memory k at its
allocation ``a_jk`` (the fair share, raised to the job's unit
allocation when needed), ``P_k`` the outstanding-job slots and ``A_k``
the device's arrays.  The second family of constraints is the
array-second capacity: a device cannot hand out more array-time than
it has.  For identical jobs this reduces to the paper's "sum of the
throughput of each in-memory processor".
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ...memories.base import MemoryKind
from ..job import Job
from .base import MLIMPSystem

__all__ = ["oracle_makespan", "single_memory_makespan"]


def _fair_allocation(job: Job, system: MLIMPSystem, kind: MemoryKind) -> int:
    profile = job.profile(kind)
    arrays = max(system.fair_share(kind), profile.unit_arrays)
    return max(min(arrays, system.arrays(kind)), profile.unit_arrays)


#: Per-job launch cost charged to the oracle too -- perfect balancing
#: does not waive the runtime's dispatch overhead.
ORACLE_DISPATCH_OVERHEAD_S = 2e-6


def _fair_time(job: Job, system: MLIMPSystem, kind: MemoryKind) -> float:
    profile = job.profile(kind)
    return (
        profile.total_time(_fair_allocation(job, system, kind))
        + ORACLE_DISPATCH_OVERHEAD_S
    )


def oracle_makespan(jobs: list[Job], system: MLIMPSystem) -> float:
    """Perfect-balance fluid makespan for a batch of jobs."""
    if not jobs:
        return 0.0
    kinds = system.kinds
    n_jobs, n_kinds = len(jobs), len(kinds)
    times = np.full((n_jobs, n_kinds), np.inf)
    for j, job in enumerate(jobs):
        for k, kind in enumerate(kinds):
            if kind in job.profiles:
                times[j, k] = _fair_time(job, system, kind)
    if np.isinf(times).all(axis=1).any():
        raise ValueError("some job fits no memory in the system")

    # Variables: f_jk (row-major) then T.
    n_vars = n_jobs * n_kinds + 1
    c = np.zeros(n_vars)
    c[-1] = 1.0

    a_eq = np.zeros((n_jobs, n_vars))
    for j in range(n_jobs):
        a_eq[j, j * n_kinds : (j + 1) * n_kinds] = 1.0
    b_eq = np.ones(n_jobs)

    a_ub = np.zeros((2 * n_kinds, n_vars))
    for k, kind in enumerate(kinds):
        for j, job in enumerate(jobs):
            if not np.isfinite(times[j, k]):
                continue
            arrays = _fair_allocation(job, system, kind)
            a_ub[k, j * n_kinds + k] = times[j, k]
            a_ub[n_kinds + k, j * n_kinds + k] = times[j, k] * arrays
        a_ub[k, -1] = -float(system.slots(kind))
        a_ub[n_kinds + k, -1] = -float(system.arrays(kind))
    b_ub = np.zeros(2 * n_kinds)

    bounds = []
    for j in range(n_jobs):
        for k in range(n_kinds):
            bounds.append((0.0, 0.0) if np.isinf(times[j, k]) else (0.0, 1.0))
    bounds.append((0.0, None))

    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"oracle LP failed: {result.message}")
    return float(result.x[-1])


def single_memory_makespan(jobs: list[Job], system: MLIMPSystem, kind: MemoryKind) -> float:
    """Fluid makespan if *all* jobs ran on one memory -- the paper's
    observation that naive scheduling degenerates to the best single
    processor's performance."""
    slot_seconds = sum(_fair_time(job, system, kind) for job in jobs)
    array_seconds = sum(
        _fair_time(job, system, kind) * _fair_allocation(job, system, kind)
        for job in jobs
    )
    return max(
        slot_seconds / system.slots(kind), array_seconds / system.arrays(kind)
    )
