"""Adaptive scheduling (paper III-C4).

Planning: each job is sized with the knee heuristic on every memory,
queued on the memory where it is estimated fastest, and the queues are
balanced with the inter-queue adjustment (Algorithm 1).

Dispatching is greedy and *local*: whenever resources free up, queued
jobs run if their requested allocation fits, larger jobs first; any
remainder resources are *backfilled* with a waiting job if it can
finish before the jobs already in flight.  Because dispatch decisions
re-evaluate at every completion event, the adaptive scheduler absorbs
prediction error -- at the price of scheduling bubbles from fragmented
remainders (III-C5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...memories.base import MemoryKind
from ..job import Job
from ..predictor import PerformancePredictor
from .adjustments import PlannedJob, inter_queue_adjust, job_fits, plan_job
from .base import Dispatch, DispatchPolicy, MLIMPSystem, ResourceView, Scheduler

__all__ = ["AdaptiveScheduler", "AdaptivePolicy"]


class AdaptivePolicy(DispatchPolicy):
    """Greedy largest-first dispatch with remainder backfill."""

    def __init__(
        self,
        queues: dict[MemoryKind, list[PlannedJob]],
        backfill: bool = True,
    ) -> None:
        # Largest estimated time first within each queue.
        self._queues = {
            kind: sorted(entries, key=lambda e: e.est_time, reverse=True)
            for kind, entries in queues.items()
        }
        self._backfill = backfill
        # Estimated completion times of in-flight jobs, per memory.
        self._inflight: dict[MemoryKind, dict[str, float]] = {
            kind: {} for kind in queues
        }

    def pending(self) -> int:
        return sum(len(entries) for entries in self._queues.values())

    def queue_depths(self) -> dict[str, int]:
        return {kind.value: len(entries) for kind, entries in self._queues.items()}

    def notify_completion(self, job: Job, kind: MemoryKind, now: float) -> None:
        self._inflight.get(kind, {}).pop(job.job_id, None)

    # ------------------------------------------------------------------
    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        dispatches: list[Dispatch] = []
        free_slots = dict(view.free_slots)
        free_run = dict(view.largest_free_run)

        # Pass 1: greedy, priority to larger jobs with their requested
        # allocation.
        for kind, queue in self._queues.items():
            remaining: list[PlannedJob] = []
            for entry in queue:
                if free_slots.get(kind, 0) > 0 and free_run.get(kind, 0) >= entry.arrays:
                    dispatches.append(
                        Dispatch(
                            job=entry.job,
                            kind=kind,
                            arrays=entry.arrays,
                            predicted_time=entry.est_time,
                        )
                    )
                    free_slots[kind] -= 1
                    free_run[kind] -= entry.arrays
                    self._inflight[kind][entry.job.job_id] = (
                        view.now + entry.est_time
                    )
                else:
                    remaining.append(entry)
            self._queues[kind] = remaining

        # Pass 2: backfill remainders with jobs that finish before the
        # current in-flight work.
        if self._backfill:
            for kind, queue in self._queues.items():
                run = free_run.get(kind, 0)
                if free_slots.get(kind, 0) <= 0 or run <= 0 or not queue:
                    continue
                inflight = self._inflight.get(kind, {})
                if not inflight:
                    continue  # nothing to hide behind; pass 1 covers idle devices
                horizon = min(inflight.values())
                for entry in list(queue):
                    if entry.estimate.unit_arrays > run:
                        continue
                    arrays = entry.estimate.snap_to_replica(run)
                    est_time = entry.estimate.total_time(arrays)
                    finish = view.now + est_time
                    if finish <= horizon:
                        dispatches.append(
                            Dispatch(
                                job=entry.job,
                                kind=kind,
                                arrays=arrays,
                                predicted_time=est_time,
                            )
                        )
                        queue.remove(entry)
                        free_slots[kind] -= 1
                        inflight[entry.job.job_id] = finish
                        break
        return dispatches


@dataclass
class AdaptiveScheduler(Scheduler):
    """Knee-sized multi-queue LJF with inter-queue adjustment."""

    predictor: PerformancePredictor
    backfill: bool = True
    inter_queue: bool = True
    allocation_cap_fraction: float = 0.5
    sizing: str = "knee"
    name: str = "adaptive"

    def build_queues(
        self, jobs: list[Job], system: MLIMPSystem
    ) -> dict[MemoryKind, list[PlannedJob]]:
        """Knee-size every job and queue it on its best memory, then
        apply Algorithm 1 (shared with the global scheduler)."""
        queues: dict[MemoryKind, list[PlannedJob]] = {k: [] for k in system.kinds}
        plans: dict[str, dict[MemoryKind, PlannedJob]] = {}
        for job in jobs:
            options = {
                kind: plan_job(
                    job,
                    kind,
                    self.predictor,
                    system,
                    self.allocation_cap_fraction,
                    sizing=self.sizing,
                )
                for kind in system.kinds
                if job_fits(job, kind, system)
            }
            if not options:
                raise ValueError(f"job {job.job_id} fits no memory in the system")
            plans[job.job_id] = options
            best = min(options.values(), key=lambda entry: entry.est_time)
            queues[best.kind].append(best)
        if self.inter_queue:
            queues = inter_queue_adjust(queues, plans, system)
        return queues

    def plan(self, jobs: list[Job], system: MLIMPSystem) -> AdaptivePolicy:
        return AdaptivePolicy(self.build_queues(jobs, system), backfill=self.backfill)
