"""Adaptive scheduling (paper III-C4).

Planning: each job is sized with the knee heuristic on every memory,
queued on the memory where it is estimated fastest, and the queues are
balanced with the inter-queue adjustment (Algorithm 1).

Dispatching is greedy and *local*: whenever resources free up, queued
jobs run if their requested allocation fits, larger jobs first; any
remainder resources are *backfilled* with a waiting job if it can
finish before the jobs already in flight.  Because dispatch decisions
re-evaluate at every completion event, the adaptive scheduler absorbs
prediction error -- at the price of scheduling bubbles from fragmented
remainders (III-C5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...memories.base import MemoryKind
from ..job import Job
from ..predictor import PerformancePredictor
from .adjustments import PlannedJob, inter_queue_adjust, job_fits, plan_job
from .base import Dispatch, DispatchPolicy, MLIMPSystem, ResourceView, Scheduler

__all__ = ["AdaptiveScheduler", "AdaptivePolicy"]


class AdaptivePolicy(DispatchPolicy):
    """Greedy largest-first dispatch with remainder backfill."""

    def __init__(
        self,
        queues: dict[MemoryKind, list[PlannedJob]],
        backfill: bool = True,
        plans: dict[str, dict[MemoryKind, PlannedJob]] | None = None,
        system: MLIMPSystem | None = None,
        planner: Callable[[Job], dict[MemoryKind, PlannedJob]] | None = None,
    ) -> None:
        # Largest estimated time first within each queue.
        self._queues = {
            kind: sorted(entries, key=lambda e: e.est_time, reverse=True)
            for kind, entries in queues.items()
        }
        self._backfill = backfill
        # Estimated completion times of in-flight jobs, per memory.
        self._inflight: dict[MemoryKind, dict[str, float]] = {
            kind: {} for kind in queues
        }
        # Per-job plans on every supported memory + the system: what
        # the graceful-degradation hooks re-plan with (optional -- the
        # hooks fall back to base-class behaviour without them).
        self._plans = plans
        self._system = system
        # Knee-sizes a newly arrived job on every memory it fits;
        # enables online admission (repro.serving).
        self._planner = planner
        self._derate: dict[MemoryKind, float] = {}

    def pending(self) -> int:
        return sum(len(entries) for entries in self._queues.values())

    def queue_depths(self) -> dict[str, int]:
        return {kind.value: len(entries) for kind, entries in self._queues.items()}

    def notify_completion(self, job: Job, kind: MemoryKind, now: float) -> None:
        self._inflight.get(kind, {}).pop(job.job_id, None)

    # -- graceful degradation (repro.faults) ---------------------------
    def _scaled_time(self, entry: PlannedJob, kind: MemoryKind) -> float:
        return entry.est_time / self._derate.get(kind, 1.0)

    def _best_placement(self, job_id: str) -> PlannedJob | None:
        """The job's fastest (derate-scaled) option on a live queue."""
        options = [
            (self._scaled_time(entry, kind), kind.value, entry)
            for kind, entry in self._plans.get(job_id, {}).items()
            if kind in self._queues
        ]
        if not options:
            return None
        return min(options)[2]

    def device_lost(
        self, kind: MemoryKind, jobs: list[Job], now: float
    ) -> list[Job]:
        if self._plans is None or kind not in self._queues:
            return list(jobs)
        orphans = self._queues.pop(kind)
        self._inflight.pop(kind, None)
        unplaced: list[Job] = []
        for entry in orphans:
            best = self._best_placement(entry.job.job_id)
            if best is None:
                unplaced.append(entry.job)
            else:
                self._queues[best.kind].append(best)
        for job in jobs:
            best = self._best_placement(job.job_id)
            if best is None:
                unplaced.append(job)
            else:
                self._queues[best.kind].append(best)
        # Re-run Algorithm 1 over the survivors so the degraded system
        # is balanced, not merely feasible.
        self._rebalance()
        return unplaced

    def _rebalance(self) -> None:
        """Algorithm 1 over the currently *queued* jobs (the live
        queues), then restore longest-first dispatch order."""
        if self._system is not None and self._queues and self._plans is not None:
            alive = [k for k in self._system.kinds if k in self._queues]
            plans = {
                job_id: {k: e for k, e in options.items() if k in self._queues}
                for job_id, options in self._plans.items()
            }
            self._queues = inter_queue_adjust(
                self._queues, plans, self._system.subset(alive)
            )
        self._queues = {
            k: sorted(entries, key=lambda e: e.est_time, reverse=True)
            for k, entries in self._queues.items()
        }

    # -- online admission (repro.serving) ------------------------------
    def admit(self, jobs: list[Job], now: float) -> list[Job]:
        """Arrival-awareness: knee-size each arrival on every live
        memory, queue it where it is estimated fastest (derate-aware),
        and re-run the inter-queue adjustment (Algorithm 1) so the
        open-system queues stay balanced as load shifts.

        Returns the jobs that fit no surviving memory (the serving
        layer counts them as shed).
        """
        if not jobs:
            return []  # admit contract: an empty batch is a pure no-op
        if self._planner is None:
            return list(jobs)
        unplaced: list[Job] = []
        admitted = False
        for job in jobs:
            options = {
                kind: entry
                for kind, entry in self._planner(job).items()
                if kind in self._queues
            }
            if not options:
                unplaced.append(job)
                continue
            if self._plans is not None:
                self._plans[job.job_id] = options
            best = min(
                options.items(),
                key=lambda kv: (self._scaled_time(kv[1], kv[0]), kv[0].value),
            )[1]
            self._queues[best.kind].append(best)
            admitted = True
        if admitted:
            self._rebalance()
        return unplaced

    def device_derated(self, kind: MemoryKind, factor: float, now: float) -> None:
        self._derate[kind] = factor
        if self._plans is None:
            return
        # Re-pick every queued job's best memory under the new scaling
        # (an inter-queue migration pass with derated estimates).
        queued = [e for entries in self._queues.values() for e in entries]
        self._queues = {k: [] for k in self._queues}
        for entry in queued:
            best = self._best_placement(entry.job.job_id) or entry
            self._queues[best.kind].append(best)
        self._queues = {
            k: sorted(
                entries, key=lambda e: self._scaled_time(e, k), reverse=True
            )
            for k, entries in self._queues.items()
        }

    # ------------------------------------------------------------------
    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        dispatches: list[Dispatch] = []
        free_slots = dict(view.free_slots)
        free_run = dict(view.largest_free_run)

        # Pass 1: greedy, priority to larger jobs with their requested
        # allocation.
        for kind, queue in self._queues.items():
            remaining: list[PlannedJob] = []
            for entry in queue:
                if free_slots.get(kind, 0) > 0 and free_run.get(kind, 0) >= entry.arrays:
                    est_time = self._scaled_time(entry, kind)
                    dispatches.append(
                        Dispatch(
                            job=entry.job,
                            kind=kind,
                            arrays=entry.arrays,
                            predicted_time=est_time,
                        )
                    )
                    free_slots[kind] -= 1
                    free_run[kind] -= entry.arrays
                    self._inflight[kind][entry.job.job_id] = (
                        view.now + est_time
                    )
                else:
                    remaining.append(entry)
            self._queues[kind] = remaining

        # Pass 2: backfill remainders with jobs that finish before the
        # current in-flight work.
        if self._backfill:
            for kind, queue in self._queues.items():
                run = free_run.get(kind, 0)
                if free_slots.get(kind, 0) <= 0 or run <= 0 or not queue:
                    continue
                inflight = self._inflight.get(kind, {})
                if not inflight:
                    continue  # nothing to hide behind; pass 1 covers idle devices
                horizon = min(inflight.values())
                for entry in list(queue):
                    if entry.estimate.unit_arrays > run:
                        continue
                    arrays = entry.estimate.snap_to_replica(run)
                    est_time = entry.estimate.total_time(arrays) / self._derate.get(
                        kind, 1.0
                    )
                    finish = view.now + est_time
                    if finish <= horizon:
                        dispatches.append(
                            Dispatch(
                                job=entry.job,
                                kind=kind,
                                arrays=arrays,
                                predicted_time=est_time,
                            )
                        )
                        queue.remove(entry)
                        free_slots[kind] -= 1
                        inflight[entry.job.job_id] = finish
                        break
        return dispatches


@dataclass
class AdaptiveScheduler(Scheduler):
    """Knee-sized multi-queue LJF with inter-queue adjustment."""

    predictor: PerformancePredictor
    backfill: bool = True
    inter_queue: bool = True
    allocation_cap_fraction: float = 0.5
    sizing: str = "knee"
    name: str = "adaptive"

    def plan_options(
        self, job: Job, system: MLIMPSystem
    ) -> dict[MemoryKind, PlannedJob]:
        """Knee-size one job on every memory it fits (the per-job plan
        table; also the online-admission planner of the serving layer)."""
        return {
            kind: plan_job(
                job,
                kind,
                self.predictor,
                system,
                self.allocation_cap_fraction,
                sizing=self.sizing,
            )
            for kind in system.kinds
            if job_fits(job, kind, system)
        }

    def build_plans(
        self, jobs: list[Job], system: MLIMPSystem
    ) -> tuple[
        dict[MemoryKind, list[PlannedJob]],
        dict[str, dict[MemoryKind, PlannedJob]],
    ]:
        """Knee-size every job and queue it on its best memory, then
        apply Algorithm 1 (shared with the global scheduler).

        Returns ``(queues, plans)``: the balanced per-memory queues
        plus every job's sized plan on every memory it fits -- the
        lookup table the graceful-degradation hooks re-place jobs from.
        """
        queues: dict[MemoryKind, list[PlannedJob]] = {k: [] for k in system.kinds}
        plans: dict[str, dict[MemoryKind, PlannedJob]] = {}
        for job in jobs:
            options = self.plan_options(job, system)
            if not options:
                raise ValueError(f"job {job.job_id} fits no memory in the system")
            plans[job.job_id] = options
            best = min(options.values(), key=lambda entry: entry.est_time)
            queues[best.kind].append(best)
        if self.inter_queue:
            queues = inter_queue_adjust(queues, plans, system)
        return queues, plans

    def build_queues(
        self, jobs: list[Job], system: MLIMPSystem
    ) -> dict[MemoryKind, list[PlannedJob]]:
        """The balanced queues alone (see :meth:`build_plans`)."""
        return self.build_plans(jobs, system)[0]

    def plan(self, jobs: list[Job], system: MLIMPSystem) -> AdaptivePolicy:
        queues, plans = self.build_plans(jobs, system)
        return AdaptivePolicy(
            queues,
            backfill=self.backfill,
            plans=plans,
            system=system,
            planner=lambda job: self.plan_options(job, system),
        )
