"""Exact branch-and-bound reference scheduler (the optimality oracle).

Every heuristic in this package is measured against fluid *bounds*
(:mod:`repro.core.scheduler.oracle`), which are unachievable in
general, so "how far from optimal is the adaptive scheduler?" had no
answer.  This module computes one: on small instances it enumerates
the full MLIMP scheduling decision -- for every job a device kind, a
replica-multiple allocation, and an execution order -- with branch and
bound, and returns a **provably optimal makespan** plus the realised
schedule in the same :class:`~repro.core.scheduler.globalsched.ScheduledEntry`
plan format the dispatcher consumes ("Multiprocessor Scheduling with
Memory Constraints" shows exact B&B with memory-feasibility pruning is
tractable at this scale).

Scope of the exactness claim
----------------------------
The solver models the dispatcher's event cascade *bit-exactly* for
compute-pure jobs (``fill_bytes == 0``): launch overhead, the
main-memory access latency non-DRAM fills pay even when empty, the
replication phase, and the discrete ground-truth compute curve, each
applied in the dispatcher's own floating-point addition order.  Zero
fill bytes keep the shared DDR4 pipe out of the picture, so device
kinds are independent machines; jobs with off-chip fills are rejected
with :class:`ExactSolverError` rather than silently mis-modelled.

Capacity is modelled per kind as job slots plus *total* arrays (the
relaxed, non-contiguous capacity model).  Relaxation matters for the
direction of the guarantee: any execution the real dispatcher can
produce -- under its contiguous first-fit allocator, any policy, any
backfill -- maps to a feasible schedule of this model with identical
completion times, and serial schedule generation over all orders
contains an optimum for regular measures, so the returned makespan is
a certified **lower bound on every heuristic run**.  It is also
*achieved* by replaying the returned schedule through
:class:`~repro.core.scheduler.globalsched.GlobalPolicy` whenever the
planned allocations never fragment the scratchpad (the optgap harness
sizes its instances with that margin, and the differential suite
asserts the replayed makespan equals the prediction exactly).

Pruning is floating-point-safe: a node is cut only when its lower
bound exceeds the incumbent by more than :data:`PRUNE_SLACK`
relative, so ulp-level bound noise can never change the returned
optimum -- ``brute_force=True`` (bound pruning disabled) returns the
bit-identical makespan, and so does any permutation of the input jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...memories.base import MemoryKind
from ...sim.mainmem import DDR4Config
from ..job import Job
from ..perfmodel import estimate_from_profile
from ..predictor import PerformancePredictor
from .adjustments import PlannedJob
from .base import MLIMPSystem, Scheduler
from .globalsched import GlobalPolicy, ScheduledEntry

__all__ = [
    "ExactSolverError",
    "ExactSolution",
    "solve_exact",
    "ExactScheduler",
    "MAX_EXACT_JOBS",
    "MAX_EXACT_KINDS",
]

#: Instance-size ceiling: the search is exponential by design, and the
#: oracle exists for small differential instances, not production runs.
MAX_EXACT_JOBS = 10
MAX_EXACT_KINDS = 3

#: Relative slack on bound pruning.  Bounds are true lower bounds
#: mathematically but are computed in floating point; cutting only
#: when ``bound > incumbent * (1 + PRUNE_SLACK)`` leaves orders of
#: magnitude more headroom than the few-ulp error a handful of float
#: operations can accumulate, so pruning can never drop the optimum.
PRUNE_SLACK = 1e-9

#: Search-node ceiling before the solver gives up with a clear error
#: instead of hanging (a backstop, not a tuning knob: in-scope
#: instances stay far below it).
DEFAULT_NODE_BUDGET = 2_000_000


class ExactSolverError(ValueError):
    """The instance is outside the solver's exact model (too large,
    memory-infeasible, or coupled through the shared fill pipe)."""


@dataclass(frozen=True)
class _Option:
    """One (device kind, replica count) choice for one job.

    The four duration components are kept separate because the
    dispatcher charges them as *separate* event-time additions; a
    pre-summed duration would drift from the simulated completion time
    by ulps and break bit-exact replay.
    """

    kind: MemoryKind
    arrays: int
    replicas: int
    overhead: float
    latency: float
    rep_time: float
    compute: float
    duration: float

    def end(self, start: float) -> float:
        """Completion time of a launch at ``start``, reproducing the
        dispatcher's addition order: overhead, then the (possibly
        zero-latency) fill, then replication, then compute."""
        t = start + self.overhead
        t = t + self.latency
        t = t + self.rep_time
        t = t + self.compute
        return t

    @property
    def key(self) -> tuple:
        """Interchangeability key: options equal under this key are
        indistinguishable to the per-kind scheduling subproblem."""
        return (
            self.duration,
            self.arrays,
            self.overhead,
            self.latency,
            self.rep_time,
            self.compute,
        )


@dataclass
class ExactSolution:
    """A certified-optimal plan for one small instance."""

    makespan: float
    schedule: list[ScheduledEntry]
    #: job_id -> {"kind", "arrays", "start", "end"} of the optimal plan.
    assignments: dict[str, dict]
    nodes: int = 0

    def policy(self) -> GlobalPolicy:
        """The schedule as a dispatchable policy (plan replay)."""
        return GlobalPolicy(list(self.schedule))


class _Budget:
    """Shared node counter with a hard ceiling."""

    __slots__ = ("used", "limit")

    def __init__(self, limit: int) -> None:
        self.used = 0
        self.limit = limit

    def spend(self, amount: int = 1) -> None:
        self.used += amount
        if self.used > self.limit:
            raise ExactSolverError(
                f"exact search exceeded the node budget ({self.limit}); "
                "the instance is too large for the oracle"
            )


def _job_options(
    job: Job,
    system: MLIMPSystem,
    overhead: float,
    latency_s: float,
) -> list[_Option]:
    """Pareto frontier of (kind, replicas) choices for one job.

    Per kind, replica counts sweep 1..min(waves, arrays // unit); an
    option is kept only while it strictly improves the duration, since
    a choice with more arrays and no better duration can never help
    under the relaxed capacity model (memory-feasibility pruning at
    the option level).
    """
    options: list[_Option] = []
    for kind in system.kinds:
        if kind not in job.profiles:
            continue
        profile = job.profile(kind)
        if profile.fill_bytes * profile.n_iter != 0.0:
            raise ExactSolverError(
                f"job {job.job_id}: exact model requires fill_bytes == 0 "
                f"(profile on {kind.value} streams off-chip bytes through "
                "the shared pipe, which couples the devices)"
            )
        capacity = system.arrays(kind)
        if profile.unit_arrays > capacity:
            continue  # one replica does not even fit this device
        r_max = min(profile.waves_unit, capacity // profile.unit_arrays)
        latency = 0.0 if kind is MemoryKind.DRAM else latency_s
        best = math.inf
        for replicas in range(1, r_max + 1):
            arrays = replicas * profile.unit_arrays
            # Same expressions (and evaluation order) as the
            # dispatcher's replicate/compute phases.
            rep_time = profile.n_iter * profile.t_replica_unit * (replicas - 1)
            compute = profile.n_iter * profile.compute_time(arrays)
            option = _Option(
                kind=kind,
                arrays=arrays,
                replicas=replicas,
                overhead=overhead,
                latency=latency,
                rep_time=rep_time,
                compute=compute,
                duration=0.0,
            )
            duration = option.end(0.0)
            if duration >= best:
                continue  # dominated: more arrays, no faster
            best = duration
            options.append(
                _Option(
                    kind=kind,
                    arrays=arrays,
                    replicas=replicas,
                    overhead=overhead,
                    latency=latency,
                    rep_time=rep_time,
                    compute=compute,
                    duration=duration,
                )
            )
    options.sort(key=lambda o: (o.duration, o.arrays, o.kind.value))
    return options


def _earliest_start(
    placed: list[tuple[float, float, int]],
    option: _Option,
    slots: int,
    arrays: int,
) -> tuple[float, float]:
    """Serial-SGS placement: the earliest resource-feasible start.

    Resource usage is piecewise constant and only *drops* at placed
    completion times, so the earliest feasible start is 0.0 or a
    placed end; feasibility of the candidate interval is checked at
    its own start and at every placed start inside it (intervals are
    half-open ``[start, end)``, matching the dispatcher, which frees a
    completing job's resources before pumping new launches at the same
    timestamp).
    """
    need = option.arrays
    candidates = sorted({0.0, *(p[1] for p in placed)})
    for t in candidates:
        e = option.end(t)
        conflicts = [p for p in placed if p[0] < e and p[1] > t]
        checks = [t] + [p[0] for p in conflicts if p[0] > t]
        feasible = True
        for u in checks:
            used_slots = 0
            used_arrays = 0
            for p in conflicts:
                if p[0] <= u < p[1]:
                    used_slots += 1
                    used_arrays += p[2]
            if used_slots + 1 > slots or used_arrays + need > arrays:
                feasible = False
                break
        if feasible:
            return t, e
    raise AssertionError("an empty device always admits the job")


def _solve_kind(
    items: list[_Option],
    slots: int,
    arrays: int,
    brute_force: bool,
    budget: _Budget,
) -> tuple[float, list[float]]:
    """Exact makespan of one kind's item multiset, plus start times
    aligned with ``items`` order.

    Two closed forms are exact and shared by both modes (they are not
    pruning): everything fits concurrently -> all start at 0; a single
    job slot -> a sequential chain in descending-duration order.  The
    general case is branch and bound over serial-SGS orders, which
    reaches every active schedule and therefore an optimum.
    """
    n = len(items)
    if n == 0:
        return 0.0, []
    if n <= slots and sum(o.arrays for o in items) <= arrays:
        return max(o.end(0.0) for o in items), [0.0] * n
    order = sorted(range(n), key=lambda i: (-items[i].duration, items[i].key))
    if slots == 1:
        starts = [0.0] * n
        t = 0.0
        for i in order:
            starts[i] = t
            t = items[i].end(t)
        return t, starts

    sum_d = sum(o.duration for o in items)
    sum_da = sum(o.duration * o.arrays for o in items)
    fluid = max(sum_d / slots, sum_da / arrays, max(o.duration for o in items))
    best = math.inf
    best_starts: list[float] | None = None
    placed: list[tuple[float, float, int]] = []
    starts = [0.0] * n

    def dfs(remaining: tuple[int, ...]) -> None:
        nonlocal best, best_starts
        budget.spend()
        if not remaining:
            makespan = max(p[1] for p in placed)
            if makespan < best:
                best = makespan
                best_starts = list(starts)
            return
        seen: set[tuple] = set()
        for pick in remaining:
            option = items[pick]
            if option.key in seen:
                continue  # identical items: one order suffices
            seen.add(option.key)
            t, e = _earliest_start(placed, option, slots, arrays)
            if not brute_force and e > best * (1.0 + PRUNE_SLACK):
                # Within this subtree the item only starts later, so
                # every completion ends at >= e: cannot improve.
                continue
            if not brute_force and fluid > best * (1.0 + PRUNE_SLACK):
                return
            placed.append((t, e, option.arrays))
            starts[pick] = t
            dfs(tuple(i for i in remaining if i != pick))
            placed.pop()
        return

    # Descending-duration first gives a strong initial incumbent fast.
    dfs(tuple(order))
    assert best_starts is not None
    return best, best_starts


def solve_exact(
    jobs: list[Job],
    system: MLIMPSystem,
    *,
    ddr4: DDR4Config | None = None,
    dispatch_overhead_s: float | None = None,
    brute_force: bool = False,
    node_budget: int = DEFAULT_NODE_BUDGET,
    max_jobs: int = MAX_EXACT_JOBS,
    max_kinds: int = MAX_EXACT_KINDS,
) -> ExactSolution:
    """Branch-and-bound over (job -> kind, allocation, order).

    Returns the provably optimal makespan of the relaxed capacity
    model (see the module docstring for what that certifies) and a
    realising schedule in dispatcher plan format.  Raises
    :class:`ExactSolverError` on oversize instances, jobs with
    off-chip fill bytes, and jobs that fit no device.

    ``brute_force=True`` disables bound pruning everywhere (the
    exhaustive reference the property suite compares against); it must
    return the bit-identical makespan.
    """
    from ..dispatcher import DEFAULT_DISPATCH_OVERHEAD_S

    if dispatch_overhead_s is None:
        dispatch_overhead_s = DEFAULT_DISPATCH_OVERHEAD_S
    if len(jobs) > max_jobs:
        raise ExactSolverError(
            f"{len(jobs)} jobs exceed the exact-instance limit ({max_jobs})"
        )
    if len(system.kinds) > max_kinds:
        raise ExactSolverError(
            f"{len(system.kinds)} device kinds exceed the exact-instance "
            f"limit ({max_kinds})"
        )
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ExactSolverError("duplicate job ids in the instance")
    if not jobs:
        return ExactSolution(makespan=0.0, schedule=[], assignments={}, nodes=0)

    config = ddr4 or DDR4Config()
    latency_s = config.access_latency_ns * 1e-9
    options_by_job: dict[str, list[_Option]] = {}
    for job in jobs:
        options = _job_options(job, system, dispatch_overhead_s, latency_s)
        if not options:
            raise ExactSolverError(
                f"job {job.job_id} fits no memory in the system: its unit "
                "allocation exceeds every device"
            )
        options_by_job[job.job_id] = options

    # Deterministic internal order: hardest job first, id tie-break.
    # The search (and hence the returned optimum, bit for bit) is a
    # function of the job *set*, never of the caller's ordering.
    ordered = sorted(
        jobs, key=lambda j: (-options_by_job[j.job_id][0].duration, j.job_id)
    )
    n = len(ordered)
    min_d = [options_by_job[j.job_id][0].duration for j in ordered]
    min_da = [
        min(o.duration * o.arrays for o in options_by_job[j.job_id])
        for j in ordered
    ]
    # Suffix aggregates for the unassigned-remainder bounds.
    suffix_d = [0.0] * (n + 1)
    suffix_da = [0.0] * (n + 1)
    suffix_max = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_d[i] = suffix_d[i + 1] + min_d[i]
        suffix_da[i] = suffix_da[i + 1] + min_da[i]
        suffix_max[i] = max(suffix_max[i + 1], min_d[i])

    kinds = list(system.kinds)
    caps = {k: (system.slots(k), system.arrays(k)) for k in kinds}
    total_slots = sum(system.slots(k) for k in kinds)
    total_arrays = sum(system.arrays(k) for k in kinds)

    budget = _Budget(node_budget)
    assigned: dict[MemoryKind, list[tuple[_Option, Job]]] = {k: [] for k in kinds}
    slot_s = {k: 0.0 for k in kinds}
    arr_s = {k: 0.0 for k in kinds}
    best = math.inf
    best_plan: dict[str, tuple[_Option, float]] | None = None
    kind_memo: dict[tuple, tuple[float, list[float]]] = {}

    def kind_makespan(kind: MemoryKind) -> tuple[float, list[float]]:
        """Exact makespan of ``kind``'s committed items (memoised on
        the item multiset; identical multisets recur across leaves)."""
        items = sorted((option for option, _ in assigned[kind]), key=lambda o: o.key)
        key = (kind, tuple(o.key for o in items))
        hit = kind_memo.get(key)
        if hit is None:
            slots, arrays = caps[kind]
            hit = _solve_kind(items, slots, arrays, brute_force, budget)
            kind_memo[key] = hit
        return hit

    def leaf() -> None:
        nonlocal best, best_plan
        # Most-loaded kind first so a hopeless leaf stops early (the
        # running max only grows; exact reasoning, not a bound guess).
        ranked = sorted(
            kinds,
            key=lambda k: -max(
                slot_s[k] / caps[k][0], arr_s[k] / caps[k][1]
            ),
        )
        makespan = 0.0
        for kind in ranked:
            if not assigned[kind]:
                continue
            kind_mk, _ = kind_makespan(kind)
            makespan = max(makespan, kind_mk)
            if not brute_force and makespan > best * (1.0 + PRUNE_SLACK):
                return
        if makespan >= best:
            return
        best = makespan
        plan: dict[str, tuple[_Option, float]] = {}
        for kind in kinds:
            if not assigned[kind]:
                continue
            _, starts = kind_makespan(kind)
            items = sorted(
                assigned[kind], key=lambda pair: (pair[0].key, pair[1].job_id)
            )
            for (option, job), start in zip(items, starts):
                plan[job.job_id] = (option, start)
        best_plan = plan

    def dfs(i: int) -> None:
        budget.spend()
        if i == n:
            leaf()
            return
        if not brute_force:
            committed = max(
                max(slot_s[k] / caps[k][0], arr_s[k] / caps[k][1])
                for k in kinds
            )
            critical = max(
                (o.duration for k in kinds for o, _ in assigned[k]),
                default=0.0,
            )
            agg_slots = (sum(slot_s.values()) + suffix_d[i]) / total_slots
            agg_arrays = (sum(arr_s.values()) + suffix_da[i]) / total_arrays
            bound = max(committed, critical, suffix_max[i], agg_slots, agg_arrays)
            if bound > best * (1.0 + PRUNE_SLACK):
                return
        job = ordered[i]
        for option in options_by_job[job.job_id]:
            kind = option.kind
            assigned[kind].append((option, job))
            slot_s[kind] += option.duration
            arr_s[kind] += option.duration * option.arrays
            dfs(i + 1)
            assigned[kind].pop()
            slot_s[kind] -= option.duration
            arr_s[kind] -= option.duration * option.arrays

    dfs(0)
    assert best_plan is not None

    schedule: list[ScheduledEntry] = []
    assignments: dict[str, dict] = {}
    for job in ordered:
        option, start = best_plan[job.job_id]
        entry = PlannedJob(
            job=job,
            kind=option.kind,
            arrays=option.arrays,
            estimate=estimate_from_profile(job.profile(option.kind)),
        )
        schedule.append(ScheduledEntry(planned_start=start, entry=entry))
        assignments[job.job_id] = {
            "kind": option.kind.value,
            "arrays": option.arrays,
            "start": start,
            "end": option.end(start),
        }
    schedule.sort(
        key=lambda s: (s.planned_start, s.entry.kind.value, s.entry.job.job_id)
    )
    return ExactSolution(
        makespan=best,
        schedule=schedule,
        assignments=assignments,
        nodes=budget.used,
    )


@dataclass
class ExactScheduler(Scheduler):
    """The oracle as a drop-in :class:`Scheduler`.

    Planning *is* the exact solve; the optimal schedule executes
    through :class:`GlobalPolicy` (launch each job at its planned
    start with its planned allocation), so the dispatcher realises the
    certified makespan whenever allocations never fragment.  The
    ``predictor`` field exists only for registry-signature
    compatibility -- the oracle plans on ground truth.
    """

    predictor: PerformancePredictor | None = None
    ddr4: DDR4Config | None = None
    brute_force: bool = False
    node_budget: int = DEFAULT_NODE_BUDGET
    name: str = "exact"

    def plan(self, jobs: list[Job], system: MLIMPSystem) -> GlobalPolicy:
        solution = solve_exact(
            list(jobs),
            system,
            ddr4=self.ddr4,
            brute_force=self.brute_force,
            node_budget=self.node_budget,
        )
        return solution.policy()
