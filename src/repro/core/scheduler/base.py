"""Scheduler framework: system description, dispatch policies.

Scheduling in MLIMP is a Resource-Constrained Project Scheduling
Problem (paper III-C1): for every job the scheduler picks a *memory
type*, an *allocation size*, and an *execution order*.  Each concrete
scheduler plans a batch of jobs and returns a
:class:`DispatchPolicy` -- a small object the event-driven dispatcher
consults at time zero and after every job completion to learn what to
launch next.  This uniform shape covers the naive single-queue LJF
baseline, the adaptive multi-queue scheduler, and the global scheduler
that fixes the complete plan in advance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ...memories.base import MemoryKind, MemorySpec
from ..job import Job

__all__ = ["MLIMPSystem", "Dispatch", "ResourceView", "DispatchPolicy", "Scheduler"]


@dataclass(frozen=True)
class MLIMPSystem:
    """The set of in-memory devices available to the scheduler."""

    specs: dict[MemoryKind, MemorySpec]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("system needs at least one memory device")
        for kind, spec in self.specs.items():
            if spec.kind is not kind:
                raise ValueError(f"spec for {kind} has kind {spec.kind}")

    @property
    def kinds(self) -> list[MemoryKind]:
        return list(self.specs)

    def arrays(self, kind: MemoryKind) -> int:
        return self.specs[kind].num_arrays

    def slots(self, kind: MemoryKind) -> int:
        return self.specs[kind].max_outstanding_jobs

    def fair_share(self, kind: MemoryKind) -> int:
        """``a_unit = max_size / P``: the fixed per-job allocation of
        the LJF baseline (paper III-C2)."""
        return max(1, self.arrays(kind) // self.slots(kind))

    def subset(self, kinds) -> "MLIMPSystem":
        """System restricted to some memory layers (Fig. 12's device
        mixtures)."""
        chosen = {kind: self.specs[kind] for kind in kinds}
        return MLIMPSystem(specs=chosen)


@dataclass(frozen=True)
class Dispatch:
    """One launch decision: run ``job`` on ``kind`` with ``arrays``.

    ``predicted_time`` is the total execution time the scheduler's
    estimate forecast for this allocation; the dispatcher logs it
    against the measured latency so predictor error (paper III-E) is
    observable on every run.  Policies that plan without an estimate
    may leave it ``None``.
    """

    job: Job
    kind: MemoryKind
    arrays: int
    predicted_time: float | None = None

    def __post_init__(self) -> None:
        if self.arrays < 1:
            raise ValueError("dispatch must allocate at least one array")
        if self.kind not in self.job.profiles:
            raise ValueError(f"{self.job.job_id} does not support {self.kind}")
        if self.predicted_time is not None and self.predicted_time < 0:
            raise ValueError("predicted_time must be non-negative")


@dataclass
class ResourceView:
    """What a policy can observe when asked for dispatches."""

    now: float
    free_slots: dict[MemoryKind, int]
    free_arrays: dict[MemoryKind, int]
    largest_free_run: dict[MemoryKind, int]

    def can_place(self, kind: MemoryKind, arrays: int) -> bool:
        return (
            self.free_slots.get(kind, 0) > 0
            and self.largest_free_run.get(kind, 0) >= arrays
        )


class DispatchPolicy(abc.ABC):
    """Callback object driving the event-driven dispatcher."""

    @abc.abstractmethod
    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        """Jobs to launch right now; called at t=0 and after every
        completion.  Must never return a dispatch that does not fit
        the view."""

    @abc.abstractmethod
    def pending(self) -> int:
        """Jobs not yet dispatched (the dispatcher uses this to detect
        starvation/livelock)."""

    def notify_completion(self, job: Job, kind: MemoryKind, now: float) -> None:
        """Hook: a dispatched job finished (adaptive policies use it)."""

    # -- online admission (repro.serving) ------------------------------
    def admit(self, jobs: list[Job], now: float) -> list[Job]:
        """Open-system hook: ``jobs`` arrived at ``now`` and want in.

        Closed-batch policies see their whole queue at plan time; under
        the serving layer (:mod:`repro.serving`) jobs arrive while the
        dispatcher runs and are offered here after admission control.
        An arrival-aware policy plans each job (sizing it with its own
        machinery), inserts it into its queue structure, and returns
        the jobs it could **not** place -- e.g. a job that only fits
        devices lost to faults.  Rejected jobs are counted as shed by
        the serving layer, never silently dropped.

        Contract, uniform across every policy (pinned by
        ``tests/test_core_scheduler.py``): an **empty** ``jobs`` list
        is a pure no-op -- ``[]`` comes back and no internal state
        (queue order, plans, schedules) changes, so callers may probe
        ``admit([], now)`` freely.  ``now`` values need not arrive in
        monotone order: each call is interpreted against the given
        timestamp only, never against the history of earlier calls.

        The default is not arrival-aware: everything is rejected.
        """
        return list(jobs)

    def queue_depths(self) -> dict[str, int] | None:
        """Pending jobs per internal queue, for the observability
        layer's queue-depth gauges.  ``None`` (the default) means the
        policy does not expose its queue structure."""
        return None

    def next_event_time(self, now: float) -> float | None:
        """Next *planned* time this policy wants to be consulted, for
        time-driven (statically scheduled) policies.  ``None`` means
        event-driven only (the default)."""
        return None

    # -- graceful degradation hooks (repro.faults) ---------------------
    def device_lost(
        self, kind: MemoryKind, jobs: list[Job], now: float
    ) -> list[Job]:
        """``kind`` failed permanently at ``now``; ``jobs`` were in
        flight or parked on it and need a new home.

        A fault-aware policy absorbs what it can -- re-pointing its own
        queued work off the dead device and re-queueing the returned
        jobs onto survivors -- and returns the jobs it could *not*
        place (the dispatcher then falls back to a profile-driven
        re-queue, or reports them failed).  The default cannot absorb
        anything.
        """
        return list(jobs)

    def device_derated(self, kind: MemoryKind, factor: float, now: float) -> None:
        """``kind`` now runs at ``factor`` of nominal throughput.

        Fault-aware policies rebalance their queues so estimates stay
        honest; the default ignores the signal (dispatch stays correct,
        only placement quality suffers)."""
        return None


class Scheduler(abc.ABC):
    """Plans a batch of jobs into a dispatch policy."""

    name: str = "scheduler"

    @abc.abstractmethod
    def plan(self, jobs: list[Job], system: MLIMPSystem) -> DispatchPolicy:
        """Build the policy for one batch."""
