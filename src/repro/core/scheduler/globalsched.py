"""Global scheduling (paper III-C5).

Starts from the adaptive scheduler's balanced queues, then applies the
*intra-queue adjustment* (Algorithm 2): allocation is traded from the
shortest jobs to the longest within each queue so every job finishes
near the queue's mean -- removing the fragmented-remainder bubbles the
adaptive scheduler suffers.  A **complete dispatch schedule is then
generated in advance** by list-scheduling the adjusted queues against
the device capacities with the *estimated* durations, including a
full-utilisation adjustment that grows the last placeable job over
remainder arrays no waiting job could use.

At runtime the plan is executed as planned: each job launches at its
planned start (once its planned resources are actually free), with no
reordering, re-sizing, or backfill.  This yields the best utilisation
when predictions are accurate -- and degrades under predictor noise,
when honouring a stale plan inflates tail latency, which is exactly
the sigma ~ 0.39 adaptive/global crossover of Section V-B3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...memories.base import MemoryKind
from ..job import Job
from ..predictor import PerformancePredictor
from .adaptive import AdaptiveScheduler
from .adjustments import PlannedJob, intra_queue_adjust
from .base import Dispatch, DispatchPolicy, MLIMPSystem, ResourceView, Scheduler

__all__ = ["GlobalScheduler", "GlobalPolicy", "ScheduledEntry", "build_static_schedule"]


@dataclass(frozen=True)
class ScheduledEntry:
    """One line of the precomputed dispatch schedule."""

    planned_start: float
    entry: PlannedJob


def build_static_schedule(
    queues: dict[MemoryKind, list[PlannedJob]],
    system: MLIMPSystem,
    dispatch_overhead_s: float = 2e-6,
    pipe_bandwidth_bps: float = 76.8e9,
) -> list[ScheduledEntry]:
    """List-schedule the queues offline with estimated durations.

    Jobs of every memory are placed jointly: per memory, longest-first
    order; at every (estimated) completion event, place every job
    whose allocation fits the free arrays and slots.  If the remainder
    after a placement cannot host any waiting job, the placed job's
    allocation is grown to soak it up (the III-C5 full-utilisation
    adjustment).  Planned durations model what the runtime charges:
    the dispatch overhead and the *shared* off-chip fill pipe
    (approximated FIFO at nominal bandwidth; in-DRAM fills bypass it).
    Returns planned (start, job, allocation) entries.
    """
    waiting = {
        kind: sorted(entries, key=lambda e: e.est_time, reverse=True)
        for kind, entries in queues.items()
    }
    free_arrays = {kind: system.arrays(kind) for kind in queues}
    free_slots = {kind: system.slots(kind) for kind in queues}
    running: list[tuple[float, MemoryKind, int]] = []  # (est end, kind, arrays)
    pipe_free_at = 0.0
    now = 0.0
    schedule: list[ScheduledEntry] = []

    def two_smallest(queue: list[PlannedJob]) -> tuple[int | None, int, int | None]:
        """(smallest arrays value, its multiplicity, second-smallest value).

        Lets the full-utilisation check below ask "smallest allocation
        among the *other* waiting jobs" in O(1) per candidate instead
        of rescanning the queue for every placement attempt."""
        m1: int | None = None
        m2: int | None = None
        count = 0
        for e in queue:
            a = e.arrays
            if m1 is None or a < m1:
                m2 = m1
                m1 = a
                count = 1
            elif a == m1:
                count += 1
            elif m2 is None or a < m2:
                m2 = a
        return m1, count, m2

    def place_all(only: MemoryKind | None = None) -> None:
        """Place every fitting job; ``only`` limits the sweep to one
        device.  Placements never free resources, so after a
        completion on one device no other device can newly fit a job
        -- sweeping just the freed device is exact, not a heuristic.
        """
        nonlocal pipe_free_at
        placed_any = True
        while placed_any:
            placed_any = False
            for kind, queue in waiting.items():
                if only is not None and kind is not only:
                    continue
                if not queue or free_slots[kind] <= 0:
                    continue
                m1, m1_count, m2 = two_smallest(queue)
                if m1 is not None and m1 > free_arrays[kind]:
                    continue  # even the smallest waiting job cannot fit
                for entry in list(queue):
                    if free_slots[kind] <= 0:
                        break  # slots only shrink within a sweep
                    if entry.arrays > free_arrays[kind]:
                        continue
                    arrays = entry.arrays
                    if m1_count > 1:
                        min_other = m1
                    elif entry.arrays == m1:
                        min_other = m2
                    else:
                        min_other = m1
                    if min_other is None or free_arrays[kind] - arrays < min_other:
                        ceiling = entry.estimate.max_useful_arrays or free_arrays[kind]
                        arrays = entry.estimate.snap_to_replica(
                            min(free_arrays[kind], max(arrays, ceiling))
                        )
                    queue.remove(entry)
                    m1, m1_count, m2 = two_smallest(queue)
                    profile = entry.job.profile(kind)
                    fill_bytes = profile.fill_bytes * profile.n_iter
                    start = now
                    end = start + dispatch_overhead_s + entry.estimate.total_time(arrays)
                    if kind is not MemoryKind.DRAM and fill_bytes > 0:
                        # FIFO approximation of the shared pipe: the
                        # fill waits behind earlier fills.
                        fill_time = fill_bytes / pipe_bandwidth_bps
                        fill_start = max(start + dispatch_overhead_s, pipe_free_at)
                        pipe_free_at = fill_start + fill_time
                        end += max(0.0, fill_start - (start + dispatch_overhead_s))
                    schedule.append(
                        ScheduledEntry(planned_start=start, entry=entry.with_arrays(arrays))
                    )
                    running.append((end, kind, arrays))
                    free_arrays[kind] -= arrays
                    free_slots[kind] -= 1
                    placed_any = True

    place_all()
    while any(waiting.values()):
        if not running:  # nothing fits an empty device: impossible
            stuck = {k.value: len(q) for k, q in waiting.items() if q}
            raise ValueError(f"static schedule stuck with jobs pending: {stuck}")
        running.sort()
        end, kind, arrays = running.pop(0)
        now = end
        free_arrays[kind] += arrays
        free_slots[kind] += 1
        place_all(only=kind)
    schedule.sort(key=lambda s: s.planned_start)
    return schedule


class GlobalPolicy(DispatchPolicy):
    """Executes the precomputed schedule, strictly as planned.

    A job launches no earlier than its planned start, in plan order
    per memory, with its planned allocation.  If the actual execution
    runs behind the plan (mispredicted durations), launches wait for
    the planned resources to free up -- the tail-latency failure mode
    the paper ascribes to global scheduling under predictor noise.
    """

    def __init__(
        self,
        schedule: list[ScheduledEntry],
        plans: dict[str, dict[MemoryKind, PlannedJob]] | None = None,
        system: MLIMPSystem | None = None,
        intra_queue: bool = True,
        planner: Callable[[Job], dict[MemoryKind, PlannedJob]] | None = None,
    ) -> None:
        self._schedule = list(schedule)
        # Re-planning context for the graceful-degradation hooks
        # (optional: without it the hooks fall back to the base class).
        self._plans = plans
        self._system = system
        self._intra_queue = intra_queue
        # Knee-sizes a newly arrived job on every memory it fits;
        # enables online admission (repro.serving).
        self._planner = planner
        self._lost: set[MemoryKind] = set()
        self._derate: dict[MemoryKind, float] = {}
        self._depths = self._count_depths()

    def _count_depths(self) -> dict[str, int]:
        depths: dict[str, int] = {}
        for scheduled in self._schedule:
            device = scheduled.entry.kind.value
            depths[device] = depths.get(device, 0) + 1
        return depths

    def pending(self) -> int:
        return len(self._schedule)

    def queue_depths(self) -> dict[str, int]:
        # Maintained incrementally (decremented as entries launch,
        # rebuilt on re-plan): the dispatcher polls this per pump.
        return dict(self._depths)

    def next_event_time(self, now: float) -> float | None:
        if not self._schedule:
            return None
        return self._schedule[0].planned_start

    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        dispatches: list[Dispatch] = []
        free_slots = dict(view.free_slots)
        free_run = dict(view.largest_free_run)
        blocked: set[MemoryKind] = set()
        taken: set[int] = set()
        for index, scheduled in enumerate(self._schedule):
            if scheduled.planned_start > view.now:
                break  # schedule is time-ordered
            entry = scheduled.entry
            kind = entry.kind
            if kind in blocked:
                continue  # strict per-memory plan order
            if free_slots.get(kind, 0) <= 0 or free_run.get(kind, 0) < entry.arrays:
                blocked.add(kind)
                continue
            taken.add(index)
            device = kind.value
            self._depths[device] -= 1
            if not self._depths[device]:
                del self._depths[device]
            dispatches.append(
                Dispatch(
                    job=entry.job,
                    kind=kind,
                    arrays=entry.arrays,
                    predicted_time=entry.est_time / self._derate.get(kind, 1.0),
                )
            )
            free_slots[kind] -= 1
            free_run[kind] -= entry.arrays
        if taken:
            self._schedule = [
                s for i, s in enumerate(self._schedule) if i not in taken
            ]
        return dispatches

    # -- re-planning core (shared by device_lost and admit) ------------
    def _replan(self, new_jobs: list[Job], now: float) -> list[Job]:
        """Rebuild the static schedule over the surviving devices.

        Every unlaunched entry plus ``new_jobs`` (in-flight victims of
        a device loss, or newly arrived open-system jobs) are re-queued
        on each job's best surviving plan, Algorithm 2 re-balances the
        queues, and a fresh schedule is list-scheduled from ``now``.
        Returns the jobs that fit no surviving device.
        """
        alive = [k for k in self._system.kinds if k not in self._lost]
        if not alive:
            self._schedule = []
            self._depths = {}
            return list(new_jobs)
        subset = self._system.subset(alive)
        queues: dict[MemoryKind, list[PlannedJob]] = {k: [] for k in alive}
        unplaced: list[Job] = []

        def place(job: Job, current: PlannedJob | None) -> None:
            if current is not None and current.kind in queues:
                queues[current.kind].append(current)
                return
            options = [
                (entry.est_time / self._derate.get(k, 1.0), k.value, entry)
                for k, entry in self._plans.get(job.job_id, {}).items()
                if k in queues
            ]
            if not options:
                unplaced.append(job)
                return
            best = min(options)[2]
            queues[best.kind].append(best)

        for scheduled in self._schedule:
            place(scheduled.entry.job, scheduled.entry)
        for job in new_jobs:
            place(job, None)
        if self._intra_queue:
            queues = intra_queue_adjust(queues, subset)
        capped = {
            k: [e.with_arrays(min(e.arrays, subset.arrays(k))) for e in entries]
            for k, entries in queues.items()
        }
        self._schedule = [
            ScheduledEntry(planned_start=now + s.planned_start, entry=s.entry)
            for s in build_static_schedule(capped, subset)
        ]
        self._depths = self._count_depths()
        return unplaced

    # -- online admission (repro.serving) ------------------------------
    def admit(self, jobs: list[Job], now: float) -> list[Job]:
        """Arrival-awareness: fold arrivals into a *fresh* static plan.

        The global scheduler's contract is a complete precomputed
        schedule, so an arrival triggers a full re-plan of the not-yet-
        launched remainder: new jobs are knee-sized, every waiting
        entry keeps its current placement, Algorithm 2 re-balances
        allocations, and the list schedule is rebuilt from ``now``
        (in-flight jobs keep running; launches still wait for their
        planned resources to actually free up).
        """
        if not jobs:
            return []  # admit contract: an empty batch is a pure no-op
        if self._planner is None or self._plans is None or self._system is None:
            return list(jobs)
        placeable: list[Job] = []
        unplaced: list[Job] = []
        for job in jobs:
            options = self._planner(job)
            if not options:
                unplaced.append(job)
                continue
            self._plans[job.job_id] = options
            placeable.append(job)
        if placeable:
            unplaced.extend(self._replan(placeable, now))
        return unplaced

    # -- graceful degradation (repro.faults) ---------------------------
    def device_lost(
        self, kind: MemoryKind, jobs: list[Job], now: float
    ) -> list[Job]:
        """Re-plan the remaining schedule over the surviving devices
        (see :meth:`_replan`)."""
        if self._plans is None or self._system is None:
            return list(jobs)
        self._lost.add(kind)
        return self._replan(jobs, now)

    def device_derated(self, kind: MemoryKind, factor: float, now: float) -> None:
        """Record the derate so predictions stay honest.

        The static plan itself is *not* re-timed: executing a stale
        plan under changed device speed is exactly the degradation
        mode the paper ascribes to global scheduling under predictor
        noise (V-B3), and the launch-no-earlier-than-planned policy
        stays correct -- launches simply wait for the planned
        resources to actually free up.
        """
        self._derate[kind] = factor


@dataclass
class GlobalScheduler(Scheduler):
    """Adaptive planning + Algorithm 2 + a static dispatch schedule."""

    predictor: PerformancePredictor
    intra_queue: bool = True
    allocation_cap_fraction: float = 0.5
    name: str = "global"

    def plan(self, jobs: list[Job], system: MLIMPSystem) -> GlobalPolicy:
        base = AdaptiveScheduler(
            predictor=self.predictor,
            allocation_cap_fraction=self.allocation_cap_fraction,
        )
        queues, plans = base.build_plans(jobs, system)
        if self.intra_queue:
            queues = intra_queue_adjust(queues, system)
        # The static plan must be feasible: cap every allocation at the
        # device size.
        capped: dict[MemoryKind, list[PlannedJob]] = {}
        for kind, entries in queues.items():
            cap = system.arrays(kind)
            capped[kind] = [
                entry.with_arrays(min(entry.arrays, cap)) for entry in entries
            ]
        return GlobalPolicy(
            build_static_schedule(capped, system),
            plans=plans,
            system=system,
            intra_queue=self.intra_queue,
            planner=lambda job: base.plan_options(job, system),
        )
