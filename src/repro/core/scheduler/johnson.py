"""Johnson's rule: the one RCPSP special case with a known optimum.

The paper (III-C1) notes that the MLIMP scheduling problem is NP-hard
RCPSP, with "no known golden solution ... (except for a special case
of Johnson's rule [36])".  That special case is the two-machine flow
shop -- and an MLIMP job on a single memory *is* one: every job first
occupies the shared off-chip pipe (fill) and then the device
(compute).  With one job slot, sequencing the queue by Johnson's rule
provably minimises the makespan.

:func:`johnson_order` implements the classic rule — jobs whose first
stage is shorter go first in ascending first-stage order; the rest go
last in descending second-stage order — and
:class:`JohnsonScheduler` applies it to a single-memory MLIMP system
(an optimal reference for the degenerate case, a heuristic beyond
it).  :func:`flow_shop_makespan` is the exact two-machine recurrence
used by the optimality tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...memories.base import MemoryKind
from ..job import Job
from ..predictor import PerformancePredictor
from .base import Dispatch, DispatchPolicy, MLIMPSystem, ResourceView, Scheduler

__all__ = ["johnson_order", "flow_shop_makespan", "JohnsonScheduler"]


def johnson_order(stage_times: list[tuple[float, float]]) -> list[int]:
    """Optimal two-machine flow-shop sequence (job indices).

    ``stage_times[i] = (a_i, b_i)``: time of job i on machine 1 then
    machine 2.  Johnson (1954): schedule jobs with ``a_i < b_i`` first,
    ascending in ``a_i``; the remainder last, descending in ``b_i``.
    """
    for a, b in stage_times:
        if a < 0 or b < 0:
            raise ValueError("stage times must be non-negative")
    first = sorted(
        (i for i, (a, b) in enumerate(stage_times) if a < b),
        key=lambda i: stage_times[i][0],
    )
    last = sorted(
        (i for i, (a, b) in enumerate(stage_times) if a >= b),
        key=lambda i: stage_times[i][1],
        reverse=True,
    )
    return first + last


def flow_shop_makespan(
    stage_times: list[tuple[float, float]], order: list[int]
) -> float:
    """Exact makespan of a two-machine flow shop under ``order``."""
    if sorted(order) != list(range(len(stage_times))):
        raise ValueError("order must be a permutation of the jobs")
    machine1 = 0.0
    machine2 = 0.0
    for index in order:
        a, b = stage_times[index]
        machine1 += a
        machine2 = max(machine2, machine1) + b
    return machine2


class _JohnsonPolicy(DispatchPolicy):
    """Dispatch the Johnson sequence in order onto one memory."""

    def __init__(
        self, sequence: list[tuple[Job, int, float]], kind: MemoryKind
    ) -> None:
        self._sequence = list(sequence)
        self._kind = kind

    def pending(self) -> int:
        return len(self._sequence)

    def queue_depths(self) -> dict[str, int]:
        return {self._kind.value: len(self._sequence)}

    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        dispatches: list[Dispatch] = []
        free_slots = view.free_slots.get(self._kind, 0)
        free_run = view.largest_free_run.get(self._kind, 0)
        while self._sequence:
            job, arrays, est_time = self._sequence[0]
            if free_slots <= 0 or free_run < arrays:
                break  # the sequence is the schedule; no reordering
            self._sequence.pop(0)
            dispatches.append(
                Dispatch(
                    job=job, kind=self._kind, arrays=arrays, predicted_time=est_time
                )
            )
            free_slots -= 1
            free_run -= arrays
        return dispatches


@dataclass
class JohnsonScheduler(Scheduler):
    """Johnson's-rule sequencing for a single-memory MLIMP system.

    Stage 1 is the job's estimated load time (the shared fill pipe),
    stage 2 its estimated compute time, both at the fair-share
    allocation.  Optimal for the one-slot flow-shop special case the
    paper cites; a sequencing heuristic when the device overlaps
    several jobs.
    """

    predictor: PerformancePredictor
    name: str = "johnson"

    def plan(self, jobs: list[Job], system: MLIMPSystem) -> _JohnsonPolicy:
        if len(system.kinds) != 1:
            raise ValueError(
                "Johnson's rule applies to a single-memory system; "
                f"got {len(system.kinds)} memories"
            )
        kind = system.kinds[0]
        allocations: list[int] = []
        est_times: list[float] = []
        stage_times: list[tuple[float, float]] = []
        for job in jobs:
            estimate = self.predictor.estimate(job, kind)
            if estimate.unit_arrays > system.arrays(kind):
                raise ValueError(f"job {job.job_id} does not fit {kind}")
            arrays = max(system.fair_share(kind), estimate.unit_arrays)
            arrays = min(arrays, system.arrays(kind))
            allocations.append(arrays)
            est_times.append(estimate.total_time(arrays))
            stage_times.append(
                (estimate.load_time(arrays), estimate.compute_time(arrays))
            )
        order = johnson_order(stage_times)
        sequence = [(jobs[i], allocations[i], est_times[i]) for i in order]
        return _JohnsonPolicy(sequence, kind)
