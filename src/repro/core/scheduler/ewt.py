"""Expected-wait-time priority scheduling (the EWT rule family).

The serving experiments showed the closed-batch ordering inverting
under open arrivals (EXPERIMENTS.md): plans laid down at admission go
stale while a job queues, and none of the existing policies feed the
accumulated wait back into the dispatch order.  EWT does.  Following
the priority-rule-based scheduler shape of accasim (PRB: score each
queued job, dispatch in score order, skip what does not fit), every
queued job carries its *admission time*; at each dispatch opportunity
jobs are ranked by

    score = (now - arrived) + est_time / derate(kind)

-- the expected wait this job will have suffered by the time it
completes if launched right now -- and dispatched greedily in
descending score with fit-skip: a job whose allocation does not fit
is skipped, not blocked on, so small jobs flow around a large head
while the large job's growing wait raises its score until it wins.
On a closed batch (all ``arrived == 0``) the rule degenerates to
longest-estimate-first, keeping EWT comparable with the other three
policies in the differential suites.

Placement picks the queue minimising the derate-scaled drain estimate
plus the job's own scaled runtime -- the same fluid drain metric
Algorithm 1 balances -- so EWT composes with the standard hooks:
``admit`` scores fresh arrivals, ``device_lost`` re-places orphans
*keeping their original admission times* (a migrated job keeps its
accumulated wait), and ``device_derated`` only rescales scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...memories.base import MemoryKind
from ..job import Job
from ..predictor import PerformancePredictor
from .adjustments import PlannedJob, job_fits, plan_job, queue_drain_estimate
from .base import Dispatch, DispatchPolicy, MLIMPSystem, ResourceView, Scheduler

__all__ = ["EWTScheduler", "EWTPolicy"]


@dataclass(frozen=True)
class _Waiting:
    """One queued job: its sized plan plus when it entered the system."""

    entry: PlannedJob
    arrived: float


class EWTPolicy(DispatchPolicy):
    """Fit-skip greedy dispatch in descending expected-wait order."""

    def __init__(
        self,
        queues: dict[MemoryKind, list[_Waiting]],
        plans: dict[str, dict[MemoryKind, PlannedJob]] | None = None,
        system: MLIMPSystem | None = None,
        planner: Callable[[Job], dict[MemoryKind, PlannedJob]] | None = None,
    ) -> None:
        self._queues: dict[MemoryKind, list[_Waiting]] = {
            kind: list(entries) for kind, entries in queues.items()
        }
        self._plans = plans
        self._system = system
        self._planner = planner
        self._derate: dict[MemoryKind, float] = {}

    # ------------------------------------------------------------------
    def _scaled_time(self, entry: PlannedJob, kind: MemoryKind) -> float:
        return entry.est_time / self._derate.get(kind, 1.0)

    def _score(self, waiting: _Waiting, kind: MemoryKind, now: float) -> float:
        return (now - waiting.arrived) + self._scaled_time(waiting.entry, kind)

    def _place(self, options: dict[MemoryKind, PlannedJob], arrived: float) -> None:
        """Queue a job where (drain + own runtime) is smallest, both
        derate-scaled; ties break on the kind name for determinism."""

        def drain(kind: MemoryKind) -> float:
            if self._system is None:
                return 0.0  # standalone policy: score on runtime alone
            return queue_drain_estimate(
                [w.entry for w in self._queues[kind]], kind, self._system
            )

        kind, entry = min(
            options.items(),
            key=lambda kv: (
                drain(kv[0]) / self._derate.get(kv[0], 1.0)
                + self._scaled_time(kv[1], kv[0]),
                kv[0].value,
            ),
        )
        self._queues[kind].append(_Waiting(entry=entry, arrived=arrived))

    # ------------------------------------------------------------------
    def pending(self) -> int:
        return sum(len(entries) for entries in self._queues.values())

    def queue_depths(self) -> dict[str, int]:
        return {kind.value: len(entries) for kind, entries in self._queues.items()}

    def next_dispatches(self, view: ResourceView) -> list[Dispatch]:
        dispatches: list[Dispatch] = []
        free_slots = dict(view.free_slots)
        free_run = dict(view.largest_free_run)
        for kind, queue in self._queues.items():
            ranked = sorted(
                queue,
                key=lambda w: (-self._score(w, kind, view.now), w.entry.job.job_id),
            )
            taken: list[_Waiting] = []
            for waiting in ranked:
                entry = waiting.entry
                if free_slots.get(kind, 0) <= 0:
                    break
                if free_run.get(kind, 0) < entry.arrays:
                    continue  # fit-skip: let smaller jobs flow around it
                dispatches.append(
                    Dispatch(
                        job=entry.job,
                        kind=kind,
                        arrays=entry.arrays,
                        predicted_time=self._scaled_time(entry, kind),
                    )
                )
                free_slots[kind] -= 1
                free_run[kind] -= entry.arrays
                taken.append(waiting)
            if taken:
                self._queues[kind] = [w for w in queue if w not in taken]
        return dispatches

    # -- online admission (repro.serving) ------------------------------
    def admit(self, jobs: list[Job], now: float) -> list[Job]:
        """Score-and-place each arrival (admission time = ``now``).

        An empty ``jobs`` list is a pure no-op (the admit contract);
        jobs fitting no surviving memory come back as shed.
        """
        if not jobs:
            return []
        if self._planner is None:
            return list(jobs)
        unplaced: list[Job] = []
        for job in jobs:
            options = {
                kind: entry
                for kind, entry in self._planner(job).items()
                if kind in self._queues
            }
            if not options:
                unplaced.append(job)
                continue
            if self._plans is not None:
                self._plans[job.job_id] = options
            self._place(options, arrived=now)
        return unplaced

    # -- graceful degradation (repro.faults) ---------------------------
    def device_lost(
        self, kind: MemoryKind, jobs: list[Job], now: float
    ) -> list[Job]:
        """Migrate the lost queue and the in-flight victims.

        Queued orphans keep their original admission time -- their
        accumulated wait moves with them -- while interrupted victims
        re-enter at ``now`` (their wait clock restarts with the retry).
        """
        if self._plans is None or kind not in self._queues:
            return list(jobs)
        orphans = self._queues.pop(kind)
        unplaced: list[Job] = []
        arrivals = [(w.entry.job, w.arrived) for w in orphans] + [
            (job, now) for job in jobs
        ]
        for job, arrived in arrivals:
            options = {
                k: e
                for k, e in self._plans.get(job.job_id, {}).items()
                if k in self._queues
            }
            if not options:
                unplaced.append(job)
            else:
                self._place(options, arrived=arrived)
        return unplaced

    def device_derated(self, kind: MemoryKind, factor: float, now: float) -> None:
        # Scores and placement read the derate lazily; nothing to
        # migrate eagerly (a derated device drains slower, so new
        # placements steer away from it on their own).
        self._derate[kind] = factor


@dataclass
class EWTScheduler(Scheduler):
    """Expected-wait-time priority rule over knee-sized plans."""

    predictor: PerformancePredictor
    allocation_cap_fraction: float = 0.5
    sizing: str = "knee"
    name: str = "ewt"

    def plan_options(
        self, job: Job, system: MLIMPSystem
    ) -> dict[MemoryKind, PlannedJob]:
        """Knee-size one job on every memory it fits (shared shape
        with the adaptive scheduler; also the serving-layer planner)."""
        return {
            kind: plan_job(
                job,
                kind,
                self.predictor,
                system,
                self.allocation_cap_fraction,
                sizing=self.sizing,
            )
            for kind in system.kinds
            if job_fits(job, kind, system)
        }

    def plan(self, jobs: list[Job], system: MLIMPSystem) -> EWTPolicy:
        policy = EWTPolicy(
            queues={kind: [] for kind in system.kinds},
            plans={},
            system=system,
            planner=lambda job: self.plan_options(job, system),
        )
        # Closed batch: everything "arrived" at time zero, so the EWT
        # score is pure estimated time and placement is incremental
        # drain-balancing in input order (deterministic).
        for job in jobs:
            options = self.plan_options(job, system)
            if not options:
                raise ValueError(f"job {job.job_id} fits no memory in the system")
            policy._plans[job.job_id] = options
            policy._place(options, arrived=0.0)
        return policy
