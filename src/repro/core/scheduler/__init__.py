"""MLIMP job schedulers: LJF baseline, adaptive, global, EWT, the
exact branch-and-bound reference, and the fluid oracle bound."""

from .adaptive import AdaptivePolicy, AdaptiveScheduler
from .adjustments import PlannedJob, inter_queue_adjust, intra_queue_adjust, plan_job
from .base import Dispatch, DispatchPolicy, MLIMPSystem, ResourceView, Scheduler
from .ewt import EWTPolicy, EWTScheduler
from .exact import ExactScheduler, ExactSolution, ExactSolverError, solve_exact
from .globalsched import GlobalPolicy, GlobalScheduler
from .johnson import JohnsonScheduler, flow_shop_makespan, johnson_order
from .ljf import LJFPolicy, LJFScheduler
from .oracle import oracle_makespan, single_memory_makespan
from .wear import WearAwareScheduler, restrict_worn_memories

__all__ = [
    "AdaptivePolicy",
    "AdaptiveScheduler",
    "PlannedJob",
    "inter_queue_adjust",
    "intra_queue_adjust",
    "plan_job",
    "Dispatch",
    "DispatchPolicy",
    "MLIMPSystem",
    "ResourceView",
    "Scheduler",
    "EWTPolicy",
    "EWTScheduler",
    "ExactScheduler",
    "ExactSolution",
    "ExactSolverError",
    "solve_exact",
    "GlobalPolicy",
    "GlobalScheduler",
    "JohnsonScheduler",
    "flow_shop_makespan",
    "johnson_order",
    "LJFPolicy",
    "LJFScheduler",
    "oracle_makespan",
    "single_memory_makespan",
    "WearAwareScheduler",
    "restrict_worn_memories",
]
