"""Queue-balancing heuristics: Algorithms 1 and 2 of the paper.

*Inter-queue adjustment* (Algorithm 1) balances the mean estimated
execution time across the per-memory queues by migrating the job that
is cheapest on the under-loaded memory out of the most loaded queue.

*Intra-queue adjustment* (Algorithm 2) balances job completion times
*within* each queue by trading allocation away from the smallest job
to the longest one until the longest meets the queue mean.

Both operate on :class:`PlannedJob` entries -- (job, memory,
allocation, estimate) tuples produced during planning -- and on the
smooth scale-free estimates, never on ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...memories.base import MemoryKind
from ..job import Job
from ..perfmodel import ScaleFreeEstimate, knee_allocation, perf_config
from ..predictor import PerformancePredictor
from .base import MLIMPSystem

__all__ = ["PlannedJob", "plan_job", "inter_queue_adjust", "intra_queue_adjust"]

#: Maximum balancing iterations (the paper's "up to N times").
MAX_ROUNDS = 64

#: Relative acceptable gap between queue means / job times.
EPSILON_FRACTION = 0.05


@dataclass(frozen=True, eq=False)
class PlannedJob:
    """One queue entry: where a job will run and with how much memory.

    Compared by identity (``eq=False``): queue entries are unique
    tokens, and the balancing loops' ``list.remove`` / ``list.index``
    calls would otherwise deep-compare jobs, profiles and estimates
    field by field on every probe."""

    job: Job
    kind: MemoryKind
    arrays: int
    estimate: ScaleFreeEstimate

    @property
    def est_time(self) -> float:
        # Memoised: the balancing loops (Algorithms 1-2) evaluate this
        # O(queue^2) times per round, and both fields it depends on are
        # frozen.  Writing through __dict__ bypasses the frozen-dataclass
        # __setattr__; dataclasses.replace() builds a fresh instance, so
        # with_arrays() never inherits a stale memo.
        cached = self.__dict__.get("_est_time")
        if cached is not None:
            return cached
        value = self.estimate.total_time(self.arrays)
        if perf_config().cache_enabled:
            self.__dict__["_est_time"] = value
        return value

    def with_arrays(self, arrays: int) -> "PlannedJob":
        return replace(self, arrays=arrays)


def job_fits(job: Job, kind: MemoryKind, system: MLIMPSystem) -> bool:
    """A job is eligible on a memory only if one replica fits it."""
    return (
        kind in job.profiles
        and job.profile(kind).unit_arrays <= system.arrays(kind)
    )


def plan_job(
    job: Job,
    kind: MemoryKind,
    predictor: PerformancePredictor,
    system: MLIMPSystem,
    allocation_cap_fraction: float = 0.5,
    sizing: str = "knee",
) -> PlannedJob:
    """Size one job on one memory.

    ``sizing`` selects the allocation heuristic: ``"knee"`` (the
    paper's III-C3 choice), ``"min"`` (strict t(x, m) minimiser --
    over-provisions), or ``"unit"`` (no replication; the ablation
    baseline for the replication study).
    """
    if not job_fits(job, kind, system):
        raise ValueError(f"job {job.job_id} does not fit on {kind}")
    estimate = predictor.estimate(job, kind)
    cap = max(
        estimate.unit_arrays, int(system.arrays(kind) * allocation_cap_fraction)
    )
    cap = min(max(cap, estimate.unit_arrays), system.arrays(kind))
    if sizing == "knee":
        arrays = knee_allocation(estimate, cap)
    elif sizing == "min":
        from ..perfmodel import min_time_allocation

        arrays = min_time_allocation(estimate, cap)
    elif sizing == "unit":
        arrays = estimate.unit_arrays
    else:
        raise ValueError(f"unknown sizing policy {sizing!r}")
    return PlannedJob(job=job, kind=kind, arrays=arrays, estimate=estimate)


def _queue_mean(queue: list[PlannedJob]) -> float:
    if not queue:
        return 0.0
    return sum(entry.est_time for entry in queue) / len(queue)


def pipe_drain_estimate(
    queues: dict[MemoryKind, list[PlannedJob]],
    pipe_bandwidth_bps: float,
) -> float:
    """Time for the shared off-chip pipe to stream every queued fill.

    All non-DRAM fills share the DDR4 channels (the dispatcher's
    processor-sharing pipe); in-DRAM jobs fill in situ and stay off
    the pipe.  Without this term the balancer happily migrates
    multi-GB database scans off DRAM and the pipe becomes the actual
    bottleneck.
    """
    total_bytes = 0.0
    for kind, entries in queues.items():
        if kind is MemoryKind.DRAM:
            continue
        for entry in entries:
            profile = entry.job.profile(kind)
            total_bytes += profile.fill_bytes * profile.n_iter
    return total_bytes / pipe_bandwidth_bps


def queue_drain_estimate(
    queue: list[PlannedJob], kind: MemoryKind, system: MLIMPSystem
) -> float:
    """Estimated time for ``kind`` to drain its queue.

    The device is limited both by job slots and by array-seconds, so
    the drain estimate is the larger of the two fluid bounds.  This is
    the balancing metric of our Algorithm 1 implementation: the
    paper's get_mean balances per-job means, which coincides with the
    drain time for same-length queues but under-weights a queue
    holding many more jobs; balancing drain times is what actually
    equalises "the execution time between queues" (Fig. 8 middle).
    """
    if not queue:
        return 0.0
    slot_seconds = sum(entry.est_time for entry in queue)
    array_seconds = sum(entry.est_time * entry.arrays for entry in queue)
    return max(
        slot_seconds / system.slots(kind),
        array_seconds / system.arrays(kind),
    )


#: Aggregate DDR4 bandwidth of the evaluated system (4 x DDR4-2400);
#: kept in sync with :class:`repro.sim.mainmem.DDR4Config` defaults.
DEFAULT_PIPE_BANDWIDTH_BPS = 76.8e9


def inter_queue_adjust(
    queues: dict[MemoryKind, list[PlannedJob]],
    plans: dict[str, dict[MemoryKind, PlannedJob]],
    system: MLIMPSystem,
    epsilon_fraction: float = EPSILON_FRACTION,
    max_rounds: int | None = None,
    pipe_bandwidth_bps: float = DEFAULT_PIPE_BANDWIDTH_BPS,
) -> dict[MemoryKind, list[PlannedJob]]:
    """Algorithm 1: balance estimated drain time across queues.

    ``plans`` holds every job's pre-computed plan on every supported
    memory (built once during planning), so candidate evaluation is a
    lookup.  Each round migrates the job out of the most-loaded queue
    that best reduces the drain-time spread; the loop stops when the
    queues are within epsilon or no migration improves (the paper's
    "if t-bar improves else break").
    """
    queues = {kind: list(entries) for kind, entries in queues.items()}
    if max_rounds is None:
        # Balancing may need to move a sizeable fraction of the batch.
        max_rounds = max(MAX_ROUNDS, sum(len(q) for q in queues.values()))

    # Candidate probes and commits are O(1) arithmetic over cached
    # per-queue aggregates (slot-seconds, array-seconds, pipe fill
    # bytes) rather than re-summing every queue per probe, and the
    # cheapest-on-target candidate comes from a per-target list sorted
    # once up front (plans are immutable for the whole loop, so each
    # job's estimated time on each target never changes).
    slot_caps = {kind: system.slots(kind) for kind in queues}
    array_caps = {kind: system.arrays(kind) for kind in queues}

    def entry_bytes(entry: PlannedJob) -> float:
        profile = entry.job.profile(entry.kind)
        return profile.fill_bytes * profile.n_iter

    slot_s: dict[MemoryKind, float] = {}
    arr_s: dict[MemoryKind, float] = {}
    pipe_bytes = 0.0
    for kind, entries in queues.items():
        slot_s[kind] = sum(e.est_time for e in entries)
        arr_s[kind] = sum(e.est_time * e.arrays for e in entries)
        if kind is not MemoryKind.DRAM:
            pipe_bytes += sum(entry_bytes(e) for e in entries)

    # Which queue each job currently sits in, its current entry, and
    # per-target job ids ordered by estimated time on that target.
    member: dict[str, MemoryKind] = {}
    entry_of: dict[str, PlannedJob] = {}
    for kind, entries in queues.items():
        for entry in entries:
            member[entry.job.job_id] = kind
            entry_of[entry.job.job_id] = entry
    by_target: dict[MemoryKind, list[str]] = {}
    for kind in queues:
        ranked = [
            (options[kind].est_time, job_id)
            for job_id, options in plans.items()
            if kind in options and job_id in member
        ]
        ranked.sort()
        by_target[kind] = [job_id for _, job_id in ranked]

    def drain_of(kind: MemoryKind, slot: float, arr: float) -> float:
        return max(slot / slot_caps[kind], arr / array_caps[kind])

    for _ in range(max_rounds):
        current = {
            kind: drain_of(kind, slot_s[kind], arr_s[kind]) for kind in queues
        }
        max_kind = max(current, key=current.get)  # type: ignore[arg-type]
        spread = current[max_kind] - min(current.values())
        overall = sum(current.values()) / max(1, len(current))
        if spread <= epsilon_fraction * max(overall, 1e-30):
            break
        current_max = max(
            current[max_kind], pipe_bytes / pipe_bandwidth_bps
        )
        # Consider every under-loaded target; take the move with the
        # smallest post-migration maximum drain (pipe included).
        best_move: tuple[float, PlannedJob, MemoryKind, PlannedJob] | None = None
        for target, target_drain in current.items():
            if target is max_kind or target_drain >= current[max_kind]:
                continue
            moved: PlannedJob | None = None
            for job_id in by_target[target]:
                if member.get(job_id) is max_kind:
                    moved = entry_of[job_id]
                    break
            if moved is None:
                continue
            replanned = plans[moved.job.job_id][target]
            new_src = drain_of(
                max_kind,
                slot_s[max_kind] - moved.est_time,
                arr_s[max_kind] - moved.est_time * moved.arrays,
            )
            new_dst = drain_of(
                target,
                slot_s[target] + replanned.est_time,
                arr_s[target] + replanned.est_time * replanned.arrays,
            )
            new_bytes = pipe_bytes
            if max_kind is not MemoryKind.DRAM:
                new_bytes -= entry_bytes(moved)
            if target is not MemoryKind.DRAM:
                new_bytes += entry_bytes(replanned)
            new_max = max(new_src, new_dst, new_bytes / pipe_bandwidth_bps)
            for kind, drain in current.items():
                if kind is not max_kind and kind is not target and drain > new_max:
                    new_max = drain
            if new_max < current_max and (
                best_move is None or new_max < best_move[0]
            ):
                best_move = (new_max, moved, target, replanned)
        if best_move is None:
            break
        _, moved, target, replanned = best_move
        queues[max_kind].remove(moved)
        queues[target].append(replanned)
        job_id = moved.job.job_id
        member[job_id] = target
        entry_of[job_id] = replanned
        slot_s[max_kind] -= moved.est_time
        arr_s[max_kind] -= moved.est_time * moved.arrays
        slot_s[target] += replanned.est_time
        arr_s[target] += replanned.est_time * replanned.arrays
        if max_kind is not MemoryKind.DRAM:
            pipe_bytes -= entry_bytes(moved)
        if target is not MemoryKind.DRAM:
            pipe_bytes += entry_bytes(replanned)
    return queues


def intra_queue_adjust(
    queues: dict[MemoryKind, list[PlannedJob]],
    system: MLIMPSystem,
    epsilon_fraction: float = EPSILON_FRACTION,
    max_rounds: int = MAX_ROUNDS,
) -> dict[MemoryKind, list[PlannedJob]]:
    """Algorithm 2: trade allocation from short jobs to the longest."""
    adjusted: dict[MemoryKind, list[PlannedJob]] = {}
    for kind, entries in queues.items():
        queue = list(entries)
        cap = system.arrays(kind)
        for _ in range(max_rounds):
            if len(queue) < 2:
                break
            queue.sort(key=lambda entry: entry.est_time, reverse=True)
            longest = queue[0]
            mean_t = _queue_mean(queue)
            if longest.est_time - mean_t <= epsilon_fraction * max(mean_t, 1e-30):
                break
            # Arrays the longest job needs to reach the mean (already a
            # whole replica multiple of its unit allocation).  If no
            # allocation improves the longest job, stop.
            needed = longest.estimate.invert_total_time(mean_t, cap)
            if longest.estimate.total_time(needed) >= longest.est_time:
                break
            swap_cnt = needed - longest.arrays
            # Donor: the shortest job with spare allocation above its
            # unit minimum.
            donors = [
                entry
                for entry in reversed(queue)
                if entry is not longest and entry.arrays > entry.estimate.unit_arrays
            ]
            if not donors or swap_cnt <= 0:
                break
            donor = donors[0]
            donor_new = donor.estimate.snap_to_replica(
                max(donor.estimate.unit_arrays, donor.arrays - swap_cnt)
            )
            released = donor.arrays - donor_new
            longest_new = longest.estimate.snap_to_replica(longest.arrays + released)
            if released <= 0 or longest_new <= longest.arrays:
                break
            queue[queue.index(donor)] = donor.with_arrays(donor_new)
            queue[queue.index(longest)] = longest.with_arrays(longest_new)
        adjusted[kind] = queue
    return adjusted
